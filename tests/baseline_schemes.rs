//! Integration tests for the comparison schemes (ASAP, ECH, POM_TLB,
//! CSALT): they must translate correctly and show the cost structure
//! the paper attributes to them.

use flatwalk::baselines::{AsapScheme, EchScheme, PomTlbScheme, SchemeSimulation};
use flatwalk::sim::{NativeSimulation, SimOptions, TranslationConfig};
use flatwalk::workloads::WorkloadSpec;

fn opts() -> SimOptions {
    let mut o = SimOptions::small_test();
    o.warmup_ops = 4_000;
    o.measure_ops = 15_000;
    o
}

#[test]
fn ech_issues_three_probes_per_walk() {
    let spec = WorkloadSpec::gups().scaled_mib(256);
    let o = opts();
    let scaled = spec.clone().scaled_down(o.footprint_divisor);
    let r = SchemeSimulation::build(spec, EchScheme::new(scaled.footprint, false), &o).run();
    assert_eq!(r.config, "ECH");
    assert!(
        (r.walk.accesses_per_walk() - 3.0).abs() < 1e-9,
        "d=3 parallel probes, got {}",
        r.walk.accesses_per_walk()
    );
    assert_eq!(r.tlb.walks, r.walk.walks);
}

#[test]
fn ech_burns_more_traffic_than_baseline_for_equal_answers() {
    let spec = WorkloadSpec::gups().scaled_mib(256);
    let o = opts();
    let base = NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &o).run();
    let scaled = spec.clone().scaled_down(o.footprint_divisor);
    let ech = SchemeSimulation::build(spec, EchScheme::new(scaled.footprint, false), &o).run();
    // Same workload stream → same number of walks…
    assert_eq!(ech.tlb.walks, base.tlb.walks);
    // …but more memory traffic for the translations (paper Fig. 13).
    assert!(
        ech.walk.accesses > base.walk.accesses,
        "ECH {} vs base {}",
        ech.walk.accesses,
        base.walk.accesses
    );
}

#[test]
fn asap_keeps_access_parity_with_double_traffic_but_lower_latency() {
    let spec = WorkloadSpec::random_access().scaled_mib(512);
    let o = opts();
    let base = NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &o).run();
    let asap = SchemeSimulation::build(spec, AsapScheme::new(o.pwc.clone()), &o).run();
    assert_eq!(asap.config, "ASAP");
    // Prefetch + re-access ≈ 2x the baseline's walk accesses.
    assert!(
        asap.walk.accesses_per_walk() > 1.5 * base.walk.accesses_per_walk(),
        "ASAP {} vs base {}",
        asap.walk.accesses_per_walk(),
        base.walk.accesses_per_walk()
    );
    // Parallelized fetches must not be slower per walk than the serial
    // baseline.
    assert!(
        asap.walk.latency_per_walk() <= base.walk.latency_per_walk() + 1.0,
        "ASAP latency {} vs base {}",
        asap.walk.latency_per_walk(),
        base.walk.latency_per_walk()
    );
}

#[test]
fn pom_tlb_converges_to_single_access_walks() {
    // A workload with heavy reuse of a bounded page set: after warm-up
    // every translation that misses the on-chip TLBs hits the DRAM TLB.
    let spec = WorkloadSpec::omnetpp().scaled_mib(16);
    let mut o = opts();
    o.warmup_ops = 30_000; // touch (nearly) every page before measuring
    let r = SchemeSimulation::build(spec, PomTlbScheme::new(16 << 20, o.pwc.clone()), &o).run();
    assert_eq!(r.config, "POM_TLB");
    assert!(
        r.walk.accesses_per_walk() < 1.3,
        "warm POM_TLB walks should be ~1 access, got {}",
        r.walk.accesses_per_walk()
    );
}

#[test]
fn csalt_priority_keeps_dram_tlb_lines_cached() {
    let spec = WorkloadSpec::gups().scaled_mib(256);
    let o = opts();
    let pom =
        SchemeSimulation::build(spec.clone(), PomTlbScheme::new(16 << 20, o.pwc.clone()), &o).run();
    let csalt =
        SchemeSimulation::build(spec, PomTlbScheme::new(16 << 20, o.pwc.clone()).csalt(), &o).run();
    assert_eq!(csalt.config, "CSALT");
    // CSALT's prioritization must cut the walk latency relative to the
    // unprioritized POM_TLB (its lines stop being evicted by data).
    assert!(
        csalt.walk.latency_per_walk() <= pom.walk.latency_per_walk(),
        "CSALT {} vs POM {}",
        csalt.walk.latency_per_walk(),
        pom.walk.latency_per_walk()
    );
}

#[test]
fn schemes_are_deterministic() {
    let spec = WorkloadSpec::xsbench().scaled_mib(128);
    let o = opts();
    let scaled = spec.clone().scaled_down(o.footprint_divisor);
    let a =
        SchemeSimulation::build(spec.clone(), EchScheme::new(scaled.footprint, false), &o).run();
    let b = SchemeSimulation::build(spec, EchScheme::new(scaled.footprint, false), &o).run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.walk.accesses, b.walk.accesses);
}
