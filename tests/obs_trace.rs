//! Observability must be a pure observer: installing a tracer cannot
//! change a single byte of any simulation report, and with tracing off
//! the reports stay byte-identical at every thread count. When tracing
//! *is* on, the per-walk records must agree exactly with the walker's
//! own statistics — same walk count, same access count, same per-level
//! step tally.
//!
//! The tracer sink and the setup-cache override are process-global, so
//! every test here holds [`override_guard`] for its whole body (shared
//! with the runner-determinism suite's convention).

use std::sync::{Arc, Mutex, MutexGuard};

use flatwalk_obs::trace::{self, Channels, PhaseRecord, SpanRecord, Tracer, WalkRecord};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::runner::{run_cells, Cell};
use flatwalk_sim::{NativeSimulation, SimOptions, SimReport, TranslationConfig};
use flatwalk_workloads::WorkloadSpec;

/// Serializes tests that install the process-global tracer.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn grid() -> Vec<Cell> {
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 3_000;
    let configs = [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ];
    let mut cells = Vec::new();
    for cfg in &configs {
        for w in [
            WorkloadSpec::gups().scaled_mib(16),
            WorkloadSpec::dc().scaled_mib(16),
        ] {
            cells.push(Cell::new(
                w,
                cfg.clone(),
                FragmentationScenario::NONE,
                opts.clone(),
            ));
        }
    }
    cells
}

fn fingerprints(reports: &[SimReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

/// Counts every event; never inspects payloads, so it is as close to a
/// pure observer as an installed tracer can be.
#[derive(Default)]
struct CountingTracer {
    walks: Mutex<u64>,
    phases: Mutex<u64>,
}

impl Tracer for CountingTracer {
    fn walk(&self, _cell: &str, _record: &WalkRecord<'_>) {
        *self.walks.lock().unwrap() += 1;
    }
    fn phase(&self, _cell: &str, _record: &PhaseRecord) {
        *self.phases.lock().unwrap() += 1;
    }
}

/// Collects per-walk aggregates for exact comparison with WalkerStats.
#[derive(Default)]
struct CollectingTracer {
    /// (walks, accesses, steps, [l1, l2, l3, dram]) under one lock.
    agg: Mutex<(u64, u64, u64, [u64; 4])>,
}

impl Tracer for CollectingTracer {
    fn walk(&self, _cell: &str, record: &WalkRecord<'_>) {
        let mut agg = self.agg.lock().unwrap();
        agg.0 += 1;
        agg.1 += record.accesses;
        agg.2 += record.steps.len() as u64;
        for step in record.steps {
            let i = match step.level {
                "L1" => 0,
                "L2" => 1,
                "L3" => 2,
                "DRAM" => 3,
                other => panic!("unknown level label {other:?}"),
            };
            agg.3[i] += 1;
        }
    }
}

/// Collects every span close as `(name, path, depth)`.
#[derive(Default)]
struct SpanCollector {
    spans: Mutex<Vec<(String, String, u64)>>,
}

impl Tracer for SpanCollector {
    fn span(&self, _cell: &str, record: &SpanRecord<'_>) {
        self.spans.lock().unwrap().push((
            record.name.to_string(),
            record.path.to_string(),
            record.depth,
        ));
    }
}

#[test]
fn tracing_off_is_byte_identical_across_thread_counts() {
    let _guard = override_guard();
    trace::uninstall();
    let serial = fingerprints(&run_cells("obs:t1", grid(), 1));
    let parallel = fingerprints(&run_cells("obs:t4", grid(), 4));
    assert_eq!(serial, parallel);
}

#[test]
fn installed_tracer_does_not_perturb_reports() {
    let _guard = override_guard();
    trace::uninstall();
    let golden = fingerprints(&run_cells("obs:off", grid(), 2));

    let tracer = Arc::new(CountingTracer::default());
    trace::install(tracer.clone(), Channels::all());
    let traced = fingerprints(&run_cells("obs:on", grid(), 2));
    trace::uninstall();

    assert_eq!(golden, traced, "tracing must be a pure observer");
    assert!(
        *tracer.walks.lock().unwrap() > 0,
        "the traced run must actually have emitted walk records"
    );
}

#[test]
fn spans_do_not_perturb_reports_and_nest_well_formed() {
    let _guard = override_guard();
    trace::uninstall();
    let golden = fingerprints(&run_cells("obs:spans-off", grid(), 1));

    let tracer = Arc::new(SpanCollector::default());
    let channels = Channels {
        spans: true,
        ..Channels::default()
    };
    trace::install(tracer.clone(), channels);
    let spanned_t1 = fingerprints(&run_cells("obs:spans-t1", grid(), 1));
    let spanned_t4 = fingerprints(&run_cells("obs:spans-t4", grid(), 4));
    trace::uninstall();

    assert_eq!(golden, spanned_t1, "spans must be pure observers");
    assert_eq!(golden, spanned_t4, "spans must not perturb parallel runs");

    let spans = tracer.spans.lock().unwrap();
    assert!(!spans.is_empty(), "the spanned runs must emit span records");
    for (name, path, depth) in spans.iter() {
        assert_eq!(
            *depth,
            path.split(';').count() as u64,
            "depth must count the path segments: {path:?}"
        );
        assert_eq!(
            Some(name.as_str()),
            path.split(';').next_back(),
            "name must be the last path segment: {path:?}"
        );
    }
    // The runner/engine taxonomy must actually nest: a measure-phase
    // span under an attempt under its cell.
    assert!(
        spans
            .iter()
            .any(|(_, path, _)| path == "cell;cell.attempt;engine.measure"),
        "expected the nested cell;cell.attempt;engine.measure path"
    );
}

#[test]
fn walk_trace_matches_walker_statistics_exactly() {
    let _guard = override_guard();
    trace::uninstall();

    // No warm-up: the report's stats then cover *every* walk, so the
    // trace must match them without any windowing slack.
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 0;
    opts.measure_ops = 4_000;

    let tracer = Arc::new(CollectingTracer::default());
    trace::install(
        tracer.clone(),
        Channels {
            walks: true,
            ..Channels::default()
        },
    );
    let report = NativeSimulation::build(
        WorkloadSpec::gups().scaled_mib(16),
        TranslationConfig::flattened_prioritized(),
        &opts,
    )
    .run();
    trace::uninstall();

    let (walks, accesses, steps, levels) = *tracer.agg.lock().unwrap();
    assert_eq!(walks, report.walk.walks, "one record per page walk");
    assert_eq!(accesses, report.walk.accesses, "accesses must agree");
    assert_eq!(steps, accesses, "each access appears as one traced step");
    assert_eq!(
        levels,
        [
            report.walk.step_hits.l1,
            report.walk.step_hits.l2,
            report.walk.step_hits.l3,
            report.walk.step_hits.dram,
        ],
        "per-level step tally must agree with StepHits"
    );
}
