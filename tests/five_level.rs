//! Five-level paging (paper §3.6): conventional 5-level tables behave
//! like 4-level ones with one more top level, and the L5+L4 / L3+L2
//! flattening variant cuts the walk from five steps to three.

use flatwalk::mem::{HierarchyConfig, MemoryHierarchy};
use flatwalk::mmu::PageWalker;
use flatwalk::pt::{resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
use flatwalk::tlb::PwcConfig;
use flatwalk::types::{OwnerId, PageSize, PhysAddr, VirtAddr};

fn build(layout: Layout, vas: &[u64]) -> (FrameStore, Mapper) {
    let mut store = FrameStore::new();
    let mut alloc = BumpAllocator::new(0x100_0000_0000);
    let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
    for (i, &va) in vas.iter().enumerate() {
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(va),
                PhysAddr::new(0x200_0000_0000 + i as u64 * 4096),
                PageSize::Size4K,
            )
            .unwrap();
    }
    (store, mapper)
}

/// VAs that actually exercise the 57-bit space (distinct L5 indices).
fn wide_vas() -> Vec<u64> {
    (0..6u64)
        .map(|i| (i << 48) | (i << 39) | ((i * 7) << 30) | ((i * 3) << 21) | (i << 12))
        .collect()
}

#[test]
fn five_level_walk_is_five_steps_and_correct() {
    let vas = wide_vas();
    let (store, mapper) = build(Layout::conventional5(), &vas);
    for (i, &va) in vas.iter().enumerate() {
        let w = resolve(&store, mapper.table(), VirtAddr::new(va)).unwrap();
        assert_eq!(w.steps.len(), 5);
        assert_eq!(w.pa.raw(), 0x200_0000_0000 + i as u64 * 4096);
    }
}

#[test]
fn five_level_flattening_cuts_walk_to_three_steps() {
    let vas = wide_vas();
    let (store, mapper) = build(Layout::flat5_l5l4_l3l2(), &vas);
    for (i, &va) in vas.iter().enumerate() {
        let w = resolve(&store, mapper.table(), VirtAddr::new(va)).unwrap();
        assert_eq!(w.steps.len(), 3, "L5+L4, L3+L2, L1");
        assert_eq!(w.pa.raw(), 0x200_0000_0000 + i as u64 * 4096);
    }
}

#[test]
fn five_level_timed_walker_uses_wider_psc_prefixes() {
    let mut vas = wide_vas();
    // A second page under the same L3+L2 node as vas[0].
    vas.push(vas[0] ^ (1 << 12));
    let layout = Layout::flat5_l5l4_l3l2();
    let (store, mapper) = build(layout.clone(), &vas);
    let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
    // Redistribute the Table 1 PSC budget over the 5-level boundaries
    // (18 and 36 bits below a 57-bit top).
    let pwc = PwcConfig::server().for_layout(&layout);
    let mut walker = PageWalker::new(pwc);

    let va = VirtAddr::new(vas[0]);
    let cold = walker
        .walk(&store, mapper.table(), va, &mut hier, OwnerId::SINGLE)
        .unwrap();
    assert_eq!(cold.accesses, 3);

    // A second page under the same L3+L2 node (same top 36 bits).
    let near = VirtAddr::new(vas[0] ^ (1 << 12));
    let warm = walker
        .walk(&store, mapper.table(), near, &mut hier, OwnerId::SINGLE)
        .unwrap();
    assert_eq!(warm.accesses, 1, "36-bit PSC hit → single access");
}

#[test]
fn four_and_five_level_tables_translate_identically_in_low_space() {
    // For VAs below 2^47 the two organizations must agree exactly.
    let vas: Vec<u64> = (0..8u64).map(|i| 0x7000_0000 + i * 4096).collect();
    let (store4, mapper4) = build(Layout::conventional4(), &vas);
    let (store5, mapper5) = build(Layout::conventional5(), &vas);
    for &va in &vas {
        let a = resolve(&store4, mapper4.table(), VirtAddr::new(va)).unwrap();
        let b = resolve(&store5, mapper5.table(), VirtAddr::new(va)).unwrap();
        assert_eq!(a.pa, b.pa);
        assert_eq!(b.steps.len(), a.steps.len() + 1);
    }
}
