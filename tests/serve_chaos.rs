//! Chaos harness for the serve stack: inject worker panics, slow
//! cells, and deadline pressure into a real in-process server and
//! assert graceful degradation — every job ends `done` (ok or cleanly
//! failed), the service never hangs, and the recovery counters are
//! visible over the wire.
//!
//! Complements `crates/serve/tests/restart_recovery.rs` (whole-process
//! SIGKILL + store recovery) and the store's own corruption unit
//! tests; here the process stays up and the faults are internal.

use flatwalk_bench::Mode;
use flatwalk_obs::{json, Json};
use flatwalk_serve::client::Connection;
use flatwalk_serve::proto::JobSpec;
use flatwalk_serve::server::{self, ServerConfig};

fn chaos_server(workers: usize) -> server::ServerHandle {
    let config = ServerConfig {
        tcp: true,
        port: 0,
        uds: None,
        workers,
        job_threads: 0,
        queue_depth: 8,
        cache_bytes: 64 << 20,
        store_dir: None,
        slo_ms: 0,
        job_retries: 1,
        stall_secs: 0,
        chaos: true,
    };
    server::spawn(config).expect("bind an ephemeral loopback port")
}

fn connect(handle: &server::ServerHandle) -> Connection {
    let addr = handle.addr().expect("tcp listener");
    Connection::connect_tcp(&addr.to_string()).expect("connect to test server")
}

fn small_spec() -> JobSpec {
    let mut spec = JobSpec::new("sec71_pwc", Mode::Quick);
    spec.warmup_ops = Some(500);
    spec.measure_ops = Some(2500);
    spec.footprint_divisor = Some(512);
    spec
}

/// Drains a streamed submit to its `done` event; returns
/// `(accepted, records, done)`.
fn stream_to_done(conn: &mut Connection, spec: &JobSpec) -> (Json, Vec<Json>, Json) {
    conn.send(&spec.to_request_line(true)).expect("send submit");
    let accepted = conn.recv_line().expect("read").expect("accepted line");
    let accepted = json::parse(&accepted).expect("accepted parses");
    assert_eq!(
        accepted.get("event"),
        Some(&Json::Str("accepted".into())),
        "expected accepted, got {accepted}"
    );
    let mut records = Vec::new();
    loop {
        let line = conn.recv_line().expect("read").expect("stream open");
        let v = json::parse(&line).expect("event parses");
        match v.get("event") {
            Some(Json::Str(e)) if e == "cell" => {
                records.push(v.get("record").expect("cell record").clone());
            }
            Some(Json::Str(e)) if e == "done" => return (accepted, records, v),
            other => panic!("unexpected event {other:?} in {line}"),
        }
    }
}

/// The `server` object from a `metrics` reply.
fn server_metrics(conn: &mut Connection) -> Json {
    let reply = conn.request(r#"{"op":"metrics"}"#).expect("metrics");
    let v = json::parse(&reply).expect("metrics parses");
    v.get("server").expect("server object").clone()
}

fn counter(server: &Json, name: &str) -> u64 {
    server.get(name).and_then(Json::as_u64).unwrap_or(0)
}

#[test]
fn killed_worker_is_respawned_and_the_job_requeued_to_completion() {
    let handle = chaos_server(2);
    let mut conn = connect(&handle);

    // The chaos hook panics the worker on the job's first attempt
    // only; the supervisor must requeue the job and respawn the
    // worker, and the second attempt completes every cell.
    let mut spec = small_spec();
    spec.measure_ops = Some(2900); // distinct cache keys for this test
    spec.chaos = Some("panic_worker".to_string());
    let (_, records, done) = stream_to_done(&mut conn, &spec);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)), "done: {done}");
    assert_eq!(
        done.get("requeues").and_then(Json::as_u64),
        Some(1),
        "exactly one worker loss: {done}"
    );
    assert_eq!(records.len(), spec.resolve().expect("grid").len());
    for record in &records {
        let status = record.get("status").cloned();
        assert!(
            status == Some(Json::Str("ok".into())) || status == Some(Json::Str("retried".into())),
            "record after recovery: {record}"
        );
    }

    // Recovery is visible over the wire.
    let server = server_metrics(&mut conn);
    assert!(counter(&server, "worker_panics") >= 1, "{server}");
    assert!(counter(&server, "workers_respawned") >= 1, "{server}");
    assert!(counter(&server, "jobs_requeued") >= 1, "{server}");
    assert_eq!(counter(&server, "jobs_lost"), 0, "{server}");

    // The pool still works: a clean job on the respawned worker.
    let mut clean = small_spec();
    clean.measure_ops = Some(2950);
    let (_, _, done) = stream_to_done(&mut conn, &clean);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)));

    handle.begin_drain();
    handle.wait();
}

#[test]
fn exhausted_requeue_budget_fails_the_job_cleanly() {
    // Budget 0: the first worker loss finalizes the job as failed —
    // every cell gets a `worker lost` record, the stream still ends
    // with `done`, and nothing hangs.
    let config = ServerConfig {
        tcp: true,
        port: 0,
        uds: None,
        workers: 1,
        job_threads: 0,
        queue_depth: 8,
        cache_bytes: 64 << 20,
        store_dir: None,
        slo_ms: 0,
        job_retries: 0,
        stall_secs: 0,
        chaos: true,
    };
    let handle = server::spawn(config).expect("bind");
    let mut conn = connect(&handle);
    let mut spec = small_spec();
    spec.measure_ops = Some(3300);
    spec.chaos = Some("panic_worker".to_string());
    let (_, records, done) = stream_to_done(&mut conn, &spec);
    let total = spec.resolve().expect("grid").len() as u64;
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(total));
    assert_eq!(records.len(), total as usize, "every cell got a record");
    for record in &records {
        assert_eq!(record.get("status"), Some(&Json::Str("failed".into())));
        let error = match record.get("error") {
            Some(Json::Str(e)) => e.clone(),
            other => panic!("failed record without error: {other:?}"),
        };
        assert!(error.contains("worker lost"), "{error}");
    }
    let server = server_metrics(&mut conn);
    assert!(counter(&server, "jobs_lost") >= 1, "{server}");

    handle.begin_drain();
    handle.wait();
}

#[test]
fn slow_cells_against_a_deadline_cancel_at_batch_boundaries_not_hang() {
    let handle = chaos_server(2);
    let mut conn = connect(&handle);

    // The slow fault profile drags exactly one cell by a deterministic
    // wall delay per engine span; a tight job deadline means the
    // supervisor cancels mid-run. The stream must still end with a
    // `done` event — cancelled cells fail cleanly, nothing hangs.
    let mut spec = small_spec();
    spec.measure_ops = Some(3400);
    spec.faults = Some(flatwalk_faults::FaultPlan::parse("3:slow").expect("plan"));
    spec.deadline_ms = Some(250);
    let (_, records, done) = stream_to_done(&mut conn, &spec);
    let total = spec.resolve().expect("grid").len();
    assert_eq!(records.len(), total, "every cell reports, pass or fail");
    let failed = done.get("failed").and_then(Json::as_u64).expect("failed");
    assert!(
        failed >= 1,
        "the slow cell cannot beat the deadline: {done}"
    );
    for record in &records {
        if record.get("status") == Some(&Json::Str("failed".into())) {
            let error = match record.get("error") {
                Some(Json::Str(e)) => e.clone(),
                other => panic!("failed record without error: {other:?}"),
            };
            assert!(
                error.contains("cancelled"),
                "deadline failures are cancellations: {error}"
            );
        }
    }
    let server = server_metrics(&mut conn);
    assert!(counter(&server, "shed_late") >= 1, "{server}");

    // The server shrugged it off: next job is clean.
    let mut clean = small_spec();
    clean.measure_ops = Some(3450);
    let (_, _, done) = stream_to_done(&mut conn, &clean);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)));

    handle.begin_drain();
    handle.wait();
}

#[test]
fn resubmit_by_key_attaches_and_replays_identical_records() {
    let handle = chaos_server(2);
    let mut conn = connect(&handle);
    let mut spec = small_spec();
    spec.measure_ops = Some(3500);
    spec.submit_key = Some(spec.content_key());

    let (accepted, records, _) = stream_to_done(&mut conn, &spec);
    assert_eq!(accepted.get("resumed"), None, "first submit is fresh");
    let job = accepted.get("job").and_then(Json::as_u64).expect("job id");

    // Same key from a brand-new connection (the "client lost its
    // stream and retried" path): attaches to the finished job and
    // replays every record byte-identically — no re-execution.
    let executed_before = handle.inner().cells_executed();
    let mut retry = connect(&handle);
    let (accepted2, replayed, done2) = stream_to_done(&mut retry, &spec);
    assert_eq!(accepted2.get("resumed"), Some(&Json::Bool(true)));
    assert_eq!(accepted2.get("job").and_then(Json::as_u64), Some(job));
    assert_eq!(done2.get("event"), Some(&Json::Str("done".into())));
    assert_eq!(
        replayed
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
        records
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
        "replayed records match the originals"
    );
    assert_eq!(
        handle.inner().cells_executed(),
        executed_before,
        "resubmit executes nothing"
    );
    let server = server_metrics(&mut retry);
    assert!(counter(&server, "jobs_deduped") >= 1, "{server}");

    handle.begin_drain();
    handle.wait();
}
