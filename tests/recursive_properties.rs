//! Property tests for recursive (self-referencing) page tables: for
//! random mappings and every supported layout, the synthesized
//! recursive VAs must land exactly on the right table nodes, and
//! reading PTEs through them must agree with the table contents.

use proptest::prelude::*;

use flatwalk::pt::{
    resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper, RecursiveScheme,
};
use flatwalk::types::{Level, PageSize, PhysAddr, VirtAddr};

const SLOT: usize = 509;

fn build(layout: Layout, slots: &[u64]) -> (FrameStore, Mapper, Vec<(VirtAddr, PhysAddr)>) {
    let mut store = FrameStore::new();
    let mut alloc = BumpAllocator::new(0x10_0000_0000);
    let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut mappings = Vec::new();
    for &s in slots {
        if !seen.insert(s) {
            continue;
        }
        // Keep away from the recursion slot's 512 GB region (L4 index
        // 509): spread slots over L4 indices 0..64.
        let va = VirtAddr::new(
            (s % 64) << 39 | (s * 0x1003 % 512) << 30 | (s % 512) << 21 | (s % 512) << 12,
        );
        if !seen.insert(va.raw()) {
            continue;
        }
        let pa = PhysAddr::new(0x100_0000_0000 + s * 4096);
        if mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                va,
                pa,
                PageSize::Size4K,
            )
            .is_ok()
        {
            mappings.push((va, pa));
        }
    }
    (store, mapper, mappings)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For conventional and mixed-flat layouts: the recursive VA of the
    /// leaf node resolves to the node that the ordinary walk uses, and
    /// the PTE read through it translates to the right frame.
    #[test]
    fn recursive_leaf_access_matches_walk(slots in prop::collection::vec(0u64..100_000, 1..12)) {
        for layout in [Layout::conventional4(), Layout::flat_l3l2(), Layout::flat_l4l3()] {
            let (mut store, mapper, mappings) = build(layout.clone(), &slots);
            prop_assert!(!mappings.is_empty());
            let rec = RecursiveScheme::install(&mut store, mapper.table(), SLOT).unwrap();
            for (va, pa) in &mappings {
                let data_walk = resolve(&store, mapper.table(), *va).unwrap();
                let leaf_node = data_walk.steps.last().unwrap().node_base;

                let path = [
                    va.index(Level::L4),
                    va.index(Level::L3),
                    va.index(Level::L2),
                ];
                let rva = rec.node_va(&path);
                let nwalk = resolve(&store, mapper.table(), rva)
                    .unwrap_or_else(|e| panic!("{layout:?}: recursive walk failed: {e}"));
                prop_assert_eq!(
                    nwalk.frame_base(), leaf_node,
                    "layout {:?}: wrong node for {:?}", layout, va
                );
                let pte = store.read_pte(nwalk.frame_base().add(va.index(Level::L1) as u64 * 8));
                prop_assert_eq!(pte.addr(), *pa);
            }
        }
    }

    /// Glue-table recursion on a flattened L4+L3 root reaches every
    /// L3* sub-table, and the entries read through it match the real
    /// walk's next nodes.
    #[test]
    fn glue_table_reaches_all_subtables(slots in prop::collection::vec(0u64..100_000, 1..10)) {
        let (mut store, mapper, mappings) = build(Layout::flat_l4l3(), &slots);
        prop_assert!(!mappings.is_empty());
        let rec = RecursiveScheme::install(&mut store, mapper.table(), SLOT).unwrap();
        for (va, _) in &mappings {
            let l4 = va.index(Level::L4);
            let l3 = va.index(Level::L3);
            // Fig. 6 top-right: three recursions reach the l4-th L3*
            // sub-table of the flat root.
            let sub_va = rec.node_va(&[l4]);
            let w = resolve(&store, mapper.table(), sub_va).unwrap();
            prop_assert_eq!(w.frame_base(), mapper.table().root.add(l4 as u64 * 4096));
            // The L3 entry read through the glue equals the data walk's
            // second node.
            let data_walk = resolve(&store, mapper.table(), *va).unwrap();
            let l2_node = data_walk.steps[1].node_base;
            let pte = store.read_pte(w.frame_base().add(l3 as u64 * 8));
            prop_assert_eq!(pte.addr(), l2_node);
        }
    }
}
