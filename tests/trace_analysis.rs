//! The `flatwalk-trace` analysis pipeline end to end: run a fixed-seed
//! simulation with a [`JsonlTracer`] capturing walks and spans to a
//! file, feed that file through [`flatwalk_obs::analyze`], and require
//! the rebuilt walk-depth × serving-level matrix to agree with the
//! walker's own [`WalkerStats`] counters *exactly* — the trace is a
//! complete record, not a sample.
//!
//! The tracer sink is process-global, so the test serializes with the
//! same convention as `tests/obs_trace.rs`.

use std::sync::{Arc, Mutex, MutexGuard};

use flatwalk_obs::trace::{self, Channels, JsonlTracer};
use flatwalk_obs::{analyze, json};
use flatwalk_sim::{NativeSimulation, SimOptions, TranslationConfig};
use flatwalk_workloads::WorkloadSpec;

/// Serializes tests that install the process-global tracer.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn trace_file_analysis_matches_walker_statistics_exactly() {
    let _guard = override_guard();
    trace::uninstall();

    let path = std::env::temp_dir().join(format!(
        "flatwalk-trace-analysis-{}.jsonl",
        std::process::id()
    ));
    let path = path.to_str().expect("utf-8 temp path");
    let tracer = JsonlTracer::create(path).expect("create trace sink");
    trace::install(
        Arc::new(tracer),
        Channels {
            walks: true,
            spans: true,
            ..Channels::default()
        },
    );

    // No warm-up, so the report's walker stats cover every traced walk.
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 0;
    opts.measure_ops = 4_000;
    let report = NativeSimulation::build(
        WorkloadSpec::gups().scaled_mib(16),
        TranslationConfig::flattened_prioritized(),
        &opts,
    )
    .run();
    // Uninstall flushes the BufWriter; the file is complete after this.
    trace::uninstall();

    let text = std::fs::read_to_string(path).expect("read trace back");
    let _ = std::fs::remove_file(path);
    let summary = analyze::analyze(text.lines());

    assert_eq!(summary.parse_errors, 0, "every emitted line must parse");
    assert_eq!(summary.walks, report.walk.walks, "one record per walk");
    assert_eq!(summary.accesses, report.walk.accesses);
    assert_eq!(summary.step_total(), report.walk.accesses);
    let hits = &report.walk.step_hits;
    for (level, expect) in [
        ("L1", hits.l1),
        ("L2", hits.l2),
        ("L3", hits.l3),
        ("DRAM", hits.dram),
    ] {
        assert_eq!(
            summary.level_total(level),
            expect,
            "matrix column total for {level} must equal WalkerStats::step_hits"
        );
    }

    // Spans rode along in the same file and aggregated by path.
    let span_records = summary.events.get("span").copied().unwrap_or(0);
    assert!(span_records > 0, "span channel was on: records expected");
    assert!(
        summary.spans.keys().any(|p| p.contains("engine.measure")),
        "the measure phase must appear in span attribution: {:?}",
        summary.spans.keys().collect::<Vec<_>>()
    );

    // Both render paths must produce well-formed output for this trace.
    let rendered = summary.render_text();
    assert!(rendered.contains("walk depth x serving level"));
    assert!(rendered.contains("span time attribution"));
    let round = json::parse(&summary.to_json().to_string()).expect("round-trip");
    assert_eq!(
        round.get("walks").and_then(json::Json::as_u64),
        Some(report.walk.walks)
    );
}
