//! The central soundness property of the timing model: the *timed*
//! walker (PSC skipping, cache traffic) must return exactly the same
//! translation as the *functional* reference walker, for any table
//! organization, any mapping mix, and any warm/cold PSC state. Timing
//! must never change semantics.

use proptest::prelude::*;

use flatwalk::mem::{HierarchyConfig, MemoryHierarchy};
use flatwalk::mmu::PageWalker;
use flatwalk::pt::{resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
use flatwalk::tlb::PwcConfig;
use flatwalk::types::{OwnerId, PageSize, PhysAddr, VirtAddr};

fn layouts() -> Vec<Layout> {
    vec![
        Layout::conventional4(),
        Layout::flat_l4l3_l2l1(),
        Layout::flat_l4l3(),
        Layout::flat_l3l2(),
        Layout::flat_l2l1(),
        Layout::flat_l4l3l2(),
    ]
}

fn build(layout: Layout, slots: &[(u64, u8)]) -> (FrameStore, Mapper, Vec<VirtAddr>) {
    let mut store = FrameStore::new();
    let mut alloc = BumpAllocator::new(0x100_0000_0000);
    let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut vas = Vec::new();
    for &(slot, sz) in slots {
        let size = match sz % 3 {
            0 => PageSize::Size4K,
            1 => PageSize::Size2M,
            _ => PageSize::Size1G,
        };
        let (va_base, pa_base) = match size {
            PageSize::Size4K => (0x0100_0000_0000u64, 0x10_0000_0000u64),
            PageSize::Size2M => (0x0200_0000_0000, 0x20_0000_0000),
            PageSize::Size1G => (0x0400_0000_0000, 0x40_0000_0000),
        };
        if !seen.insert((slot % 512, size)) {
            continue;
        }
        let va = VirtAddr::new(va_base + (slot % 512) * size.bytes());
        let pa = PhysAddr::new(pa_base + (slot % 512) * size.bytes());
        if mapper
            .map(&mut store, &mut alloc, &FlattenEverywhere, va, pa, size)
            .is_ok()
        {
            vas.push(va);
        }
    }
    (store, mapper, vas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every layout, the timed walker's PA and size equal the
    /// functional walker's, on cold and warm PSCs, at random offsets.
    #[test]
    fn timed_walker_matches_functional_walker(
        slots in proptest::collection::vec((0u64..512, 0u8..8), 1..16),
        offsets in proptest::collection::vec(0u64..(1 << 30), 4..12),
    ) {
        for layout in layouts() {
            let (store, mapper, vas) = build(layout.clone(), &slots);
            prop_assume!(!vas.is_empty());
            let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
            let mut walker = PageWalker::new(PwcConfig::server().for_layout(&layout));

            // Two passes: cold PSCs, then warm (state must not change
            // the translation, only the access count).
            for pass in 0..2 {
                for (i, va) in vas.iter().enumerate() {
                    let reference = resolve(&store, mapper.table(), *va).unwrap();
                    let probe = VirtAddr::new(
                        va.raw() + offsets[i % offsets.len()] % reference.size.bytes(),
                    );
                    let expected = resolve(&store, mapper.table(), probe).unwrap();
                    let timed = walker
                        .walk(&store, mapper.table(), probe, &mut hier, OwnerId::SINGLE)
                        .unwrap();
                    prop_assert_eq!(
                        timed.pa, expected.pa,
                        "layout {:?} pass {} va {}", layout, pass, probe
                    );
                    prop_assert_eq!(timed.size, expected.size);
                    prop_assert!(timed.accesses >= 1);
                    prop_assert!(
                        timed.accesses <= expected.steps.len() as u64,
                        "timed walker may only skip steps, never add them"
                    );
                }
            }
        }
    }

    /// Warm PSCs monotonically reduce (never increase) walk accesses
    /// for repeated walks of the same address.
    #[test]
    fn psc_warming_is_monotone(slots in proptest::collection::vec((0u64..512, 0u8..8), 1..10)) {
        for layout in [Layout::conventional4(), Layout::flat_l4l3_l2l1()] {
            let (store, mapper, vas) = build(layout.clone(), &slots);
            prop_assume!(!vas.is_empty());
            let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
            let mut walker = PageWalker::new(PwcConfig::server().for_layout(&layout));
            for va in &vas {
                let first = walker
                    .walk(&store, mapper.table(), *va, &mut hier, OwnerId::SINGLE)
                    .unwrap();
                let second = walker
                    .walk(&store, mapper.table(), *va, &mut hier, OwnerId::SINGLE)
                    .unwrap();
                prop_assert!(second.accesses <= first.accesses);
                prop_assert!(second.latency <= first.latency);
            }
        }
    }
}
