//! Property tests on the memory substrates: the cache model and the
//! buddy allocator.

use proptest::prelude::*;

use flatwalk::faults::FaultyAllocator;
use flatwalk::mem::{Cache, CacheConfig};
use flatwalk::os::BuddyAllocator;
use flatwalk::pt::PhysAllocator;
use flatwalk::types::{AccessKind, OwnerId, PageSize, PhysAddr};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never over-fills, never loses the line it just filled,
    /// and probe/contains agree.
    #[test]
    fn cache_fill_and_probe_agree(lines in prop::collection::vec(0u64..4096, 1..400),
                                  ways in 1usize..8) {
        let sets = 16usize;
        let cfg = CacheConfig::new("t", (sets * ways) as u64 * 64, ways, 1);
        let mut cache = Cache::new(cfg);
        for &line in &lines {
            cache.fill(line, AccessKind::Data, OwnerId::SINGLE, false);
            prop_assert!(cache.contains(line), "line {line} lost right after fill");
            prop_assert!(cache.probe(line, AccessKind::Data));
        }
        let resident = cache.resident_lines(AccessKind::Data)
            + cache.resident_lines(AccessKind::PageTable);
        prop_assert!(resident <= sets * ways, "cache over-filled: {resident}");
    }

    /// Under the priority phase, filling data lines never evicts a
    /// page-table line while data candidates exist in the set.
    #[test]
    fn priority_never_picks_pt_over_available_data(seed in 0u64..1000) {
        let cfg = CacheConfig::new("t", 8 * 64, 8, 1).with_pt_priority(true);
        let mut cache = Cache::new(cfg);
        // One set (8 ways): 4 PT lines + 4 data lines, all set 0.
        for i in 0..4u64 {
            cache.fill(i, AccessKind::PageTable, OwnerId::SINGLE, true);
        }
        // All lines map to set 0 in a 1-set cache.
        for i in 4..8u64 {
            cache.fill(i, AccessKind::Data, OwnerId::SINGLE, true);
        }
        // Fill more data; evictions in the 99% path must pick data.
        let mut pt_evicted = 0;
        for i in 0..64u64 {
            if let Some(ev) = cache.fill(100 + seed + i, AccessKind::Data, OwnerId::SINGLE, true) {
                if ev.kind == AccessKind::PageTable {
                    pt_evicted += 1;
                }
            }
        }
        // Only the 1% LRU escape may ever touch PT lines, and once the
        // four PT lines are gone nothing more can be evicted from them.
        prop_assert!(pt_evicted <= 4, "PT evictions {pt_evicted} exceed the escape budget");
    }

    /// Buddy allocations never overlap and never exceed the region.
    #[test]
    fn buddy_blocks_are_disjoint(ops in prop::collection::vec((0u8..3, 0u8..2), 1..200)) {
        let total: u64 = 64 << 20;
        let mut buddy = BuddyAllocator::new(0, total);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (addr, bytes)
        for (kind, action) in ops {
            let size = match kind {
                0 => PageSize::Size4K,
                1 => PageSize::Size2M,
                _ => PageSize::Size1G,
            };
            if action == 0 || live.is_empty() {
                if let Some(pa) = buddy.alloc(size) {
                    let bytes = size.bytes();
                    prop_assert_eq!(pa.raw() % bytes, 0, "natural alignment violated");
                    prop_assert!(pa.raw() + bytes <= total, "block exceeds region");
                    for &(a, b) in &live {
                        prop_assert!(
                            pa.raw() + bytes <= a || a + b <= pa.raw(),
                            "overlap: new [{:#x},+{:#x}) with [{:#x},+{:#x})",
                            pa.raw(), bytes, a, b
                        );
                    }
                    live.push((pa.raw(), bytes));
                }
            } else {
                let (a, _) = live.swap_remove(0);
                buddy.free(PhysAddr::new(a));
            }
        }
        // Free everything: the allocator must coalesce back to one block.
        for (a, _) in live {
            buddy.free(PhysAddr::new(a));
        }
        prop_assert_eq!(buddy.free_bytes(), total);
        prop_assert!(buddy.alloc(PageSize::Size1G).is_none() || total >= 1 << 30);
        let mut b2 = BuddyAllocator::new(0, total);
        prop_assert_eq!(buddy.largest_free_order(), b2.largest_free_order());
        let _ = b2.alloc(PageSize::Size4K);
    }

    /// Accounting: free_bytes always equals total minus live bytes.
    #[test]
    fn buddy_accounting_is_exact(ops in prop::collection::vec(0u8..4, 1..150)) {
        let total: u64 = 16 << 20;
        let mut buddy = BuddyAllocator::new(0, total);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                0 | 1 => {
                    if let Some(pa) = buddy.alloc(PageSize::Size4K) {
                        live.push((pa.raw(), 4096));
                    }
                }
                2 => {
                    if let Some(pa) = buddy.alloc(PageSize::Size2M) {
                        live.push((pa.raw(), 2 << 20));
                    }
                }
                _ => {
                    if let Some((a, _)) = live.pop() {
                        buddy.free(PhysAddr::new(a));
                    }
                }
            }
            let live_bytes: u64 = live.iter().map(|(_, b)| b).sum();
            prop_assert_eq!(buddy.free_bytes(), total - live_bytes);
        }
    }

    /// The fault-injecting decorator may refuse large requests but must
    /// never corrupt the buddy underneath: surviving allocations stay
    /// disjoint and aligned, a full free coalesces back to the single
    /// max-order block, and the stats never count more failures than
    /// attempts.
    #[test]
    fn faulty_allocator_preserves_buddy_invariants(
        seed in 0u64..5000,
        refusal_pct in 0u32..101,
        ops in prop::collection::vec(0u8..4, 1..150),
    ) {
        let refusal = refusal_pct as f64 / 100.0;
        let total: u64 = 64 << 20;
        let mut buddy = BuddyAllocator::new(0, total);
        let mut live: Vec<(u64, PageSize)> = Vec::new();
        let injected;
        {
            let mut faulty = FaultyAllocator::new(&mut buddy, seed, refusal);
            for op in ops {
                let size = match op {
                    0 => PageSize::Size4K,
                    1 => PageSize::Size2M,
                    2 => PageSize::Size1G,
                    _ => {
                        if let Some((a, s)) = live.pop() {
                            faulty.release(PhysAddr::new(a), s);
                        }
                        continue;
                    }
                };
                if let Some(pa) = faulty.alloc(size) {
                    let bytes = size.bytes();
                    prop_assert_eq!(pa.raw() % bytes, 0, "natural alignment violated");
                    prop_assert!(pa.raw() + bytes <= total, "block exceeds region");
                    for &(a, s) in &live {
                        let b = s.bytes();
                        prop_assert!(
                            pa.raw() + bytes <= a || a + b <= pa.raw(),
                            "overlap: new [{:#x},+{:#x}) with [{:#x},+{:#x})",
                            pa.raw(), bytes, a, b
                        );
                    }
                    live.push((pa.raw(), size));
                }
            }
            injected = faulty.injected();
        }
        if refusal_pct == 0 {
            prop_assert_eq!(injected, 0, "no refusals allowed at zero probability");
        }
        for (a, _) in live {
            buddy.free(PhysAddr::new(a));
        }
        prop_assert_eq!(buddy.free_bytes(), total);
        prop_assert_eq!(
            buddy.largest_free_order(),
            Some((total / 4096).trailing_zeros()),
            "full free must restore the single max-order block"
        );
        let s = buddy.stats();
        prop_assert!(s.small.0 >= s.small.1, "4K attempts < failures");
        prop_assert!(s.huge.0 >= s.huge.1, "2M attempts < failures");
        prop_assert!(s.giant.0 >= s.giant.1, "1G attempts < failures");
    }
}
