//! The parallel experiment runner must be a pure reordering of the
//! serial run: the same grid, fanned across any number of worker
//! threads, has to reassemble into the *identical* report vector —
//! that is what makes `--threads N` safe for every figure binary.

use flatwalk_os::FragmentationScenario;
use flatwalk_sim::runner::{run_cells, Cell};
use flatwalk_sim::{NativeSimulation, SimOptions, SimReport, TranslationConfig};
use flatwalk_workloads::WorkloadSpec;

/// A small Fig. 9-style grid: two workloads × three translation
/// configs × two fragmentation scenarios.
fn grid() -> Vec<Cell> {
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 3_000;
    let workloads = [
        WorkloadSpec::gups().scaled_mib(16),
        WorkloadSpec::dc().scaled_mib(16),
    ];
    let configs = [
        TranslationConfig::baseline(),
        TranslationConfig::flattened(),
        TranslationConfig::flattened_prioritized(),
    ];
    let scenarios = [FragmentationScenario::NONE, FragmentationScenario::HALF];
    let mut cells = Vec::new();
    for scenario in scenarios {
        for cfg in &configs {
            for w in &workloads {
                cells.push(Cell::new(w.clone(), cfg.clone(), scenario, opts.clone()));
            }
        }
    }
    cells
}

/// `SimReport` intentionally does not implement `PartialEq`; its Debug
/// form covers every field, so equal strings mean equal reports.
fn fingerprints(reports: &[SimReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn parallel_grid_matches_serial_golden() {
    // Golden: the plain serial loop, no runner involved.
    let golden: Vec<String> = grid()
        .iter()
        .map(|cell| {
            let opts = cell.opts.clone().with_scenario(cell.scenario);
            let r =
                NativeSimulation::build(cell.workload.clone(), cell.config.clone(), &opts).run();
            format!("{r:?}")
        })
        .collect();

    let one = fingerprints(&run_cells("determinism-t1", grid(), 1));
    let four = fingerprints(&run_cells("determinism-t4", grid(), 4));

    assert_eq!(
        one, golden,
        "single-thread runner must equal the serial loop"
    );
    assert_eq!(
        four, golden,
        "four-thread runner must equal the serial loop"
    );
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let a = fingerprints(&run_cells("determinism-a", grid(), 3));
    let b = fingerprints(&run_cells("determinism-b", grid(), 3));
    assert_eq!(a, b);
}
