//! The parallel experiment runner must be a pure reordering of the
//! serial run: the same grid, fanned across any number of worker
//! threads, has to reassemble into the *identical* report vector —
//! that is what makes `--threads N` safe for every figure binary.
//!
//! The setup cache adds a second axis to that contract: sharing frozen
//! address-space snapshots across cells must not change a single byte
//! of any report, at any thread count. The tests here pin both axes
//! against one cache-off serial golden.
//!
//! The cache override is process-global, so every test that flips it
//! holds [`override_guard`] for its whole body.

use std::sync::{Arc, Mutex, MutexGuard};

use flatwalk_os::{AddressSpaceSpec, FragmentationScenario};
use flatwalk_sim::runner::{run_cells, Cell};
use flatwalk_sim::{setup, NativeSimulation, SimOptions, SimReport, TranslationConfig};
use flatwalk_workloads::WorkloadSpec;

/// Serializes tests that flip the process-global cache override.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small Fig. 9-style grid: two workloads × three translation
/// configs × two fragmentation scenarios. Several cells share a
/// (layout, footprint, scenario) key, so the setup cache is exercised
/// for both hits and misses.
fn grid() -> Vec<Cell> {
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 3_000;
    let workloads = [
        WorkloadSpec::gups().scaled_mib(16),
        WorkloadSpec::dc().scaled_mib(16),
    ];
    let configs = [
        TranslationConfig::baseline(),
        TranslationConfig::flattened(),
        TranslationConfig::flattened_prioritized(),
    ];
    let scenarios = [FragmentationScenario::NONE, FragmentationScenario::HALF];
    let mut cells = Vec::new();
    for scenario in scenarios {
        for cfg in &configs {
            for w in &workloads {
                cells.push(Cell::new(w.clone(), cfg.clone(), scenario, opts.clone()));
            }
        }
    }
    cells
}

/// `SimReport` intentionally does not implement `PartialEq`; its Debug
/// form covers every field, so equal strings mean equal reports.
fn fingerprints(reports: &[SimReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

/// The cache-off serial golden: a plain loop, no runner, every cell
/// building its space privately.
fn serial_golden() -> Vec<String> {
    setup::set_cache_override(Some(false));
    let golden = grid()
        .iter()
        .map(|cell| {
            let r = NativeSimulation::build_shared(
                cell.workload.clone(),
                cell.config.clone(),
                Arc::clone(&cell.opts),
            )
            .run();
            format!("{r:?}")
        })
        .collect();
    setup::set_cache_override(None);
    golden
}

#[test]
fn parallel_grid_matches_serial_golden() {
    let _guard = override_guard();
    let golden = serial_golden();

    setup::set_cache_override(Some(true));
    let one = fingerprints(&run_cells("determinism-t1", grid(), 1));
    let four = fingerprints(&run_cells("determinism-t4", grid(), 4));
    setup::set_cache_override(None);

    assert_eq!(
        one, golden,
        "single-thread cached runner must equal the cache-off serial loop"
    );
    assert_eq!(
        four, golden,
        "four-thread cached runner must equal the cache-off serial loop"
    );
}

#[test]
fn cache_off_runner_matches_cache_on() {
    let _guard = override_guard();
    setup::set_cache_override(Some(false));
    let off_one = fingerprints(&run_cells("det-off-t1", grid(), 1));
    let off_four = fingerprints(&run_cells("det-off-t4", grid(), 4));
    setup::set_cache_override(Some(true));
    let on_four = fingerprints(&run_cells("det-on-t4", grid(), 4));
    setup::set_cache_override(None);

    assert_eq!(off_one, off_four, "cache-off must be thread-invariant");
    assert_eq!(
        off_four, on_four,
        "sharing frozen spaces must not change any report byte"
    );
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let _guard = override_guard();
    let a = fingerprints(&run_cells("determinism-a", grid(), 3));
    let b = fingerprints(&run_cells("determinism-b", grid(), 3));
    assert_eq!(a, b);
}

#[test]
fn shared_frozen_space_matches_fresh_builds() {
    let _guard = override_guard();
    // Two cells that differ only in PTP share one frozen snapshot...
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 3_000;
    let opts = Arc::new(opts);
    let spec = WorkloadSpec::gups().scaled_mib(16);
    let scaled = spec.clone().scaled_down(opts.footprint_divisor);
    let configs = [
        TranslationConfig::flattened(),
        TranslationConfig::flattened_prioritized(),
    ];

    setup::set_cache_override(Some(false));
    let space_spec = AddressSpaceSpec::new(configs[0].layout.clone(), scaled.footprint)
        .with_scenario(opts.scenario)
        .with_nf_threshold(configs[0].nf_threshold);
    let shared = setup::frozen_native_space(
        &space_spec,
        opts.phys_mem_bytes,
        opts.hierarchy.numa.signature(),
    );
    let via_shared: Vec<String> = configs
        .iter()
        .map(|cfg| {
            let r = NativeSimulation::build_with_space(
                spec.clone(),
                cfg.clone(),
                Arc::clone(&opts),
                Arc::clone(&shared),
            )
            .run();
            format!("{r:?}")
        })
        .collect();

    // ...and must report exactly what two private builds report.
    let fresh: Vec<String> = configs
        .iter()
        .map(|cfg| {
            let r =
                NativeSimulation::build_shared(spec.clone(), cfg.clone(), Arc::clone(&opts)).run();
            format!("{r:?}")
        })
        .collect();
    setup::set_cache_override(None);

    assert_eq!(via_shared, fresh);
}
