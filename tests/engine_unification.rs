//! Differential test for the generic walk engine: every scheme × engine
//! combination must produce a `SimReport` JSON byte-identical to the
//! golden capture taken from the pre-unification per-engine loops
//! (`tests/golden/engine_unification/`).
//!
//! The goldens were generated from the legacy native/virtualized/
//! multicore `try_run` loops before they were re-expressed over the
//! shared engine core, so a pass here proves the refactor preserved
//! every modelled byte — instructions, cycles, walk/TLB/cache/PWC
//! statistics, energy, and fault counters — including a fault-seeded
//! cell whose mid-run shootdowns must land on the same stream
//! positions.
//!
//! Regenerate (only when intentionally changing modelled behaviour):
//!
//! ```text
//! FLATWALK_REGEN_GOLDEN=1 cargo test --release --test engine_unification
//! ```

use std::path::PathBuf;

use flatwalk::baselines::{AsapScheme, EchScheme, PomTlbScheme, SchemeSimulation};
use flatwalk::faults::{self, FaultPlan};
use flatwalk::sim::{
    table2_mixes, MulticoreSimulation, NativeSimulation, SimOptions, TranslationConfig, VirtConfig,
    VirtualizedSimulation,
};
use flatwalk::workloads::WorkloadSpec;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("engine_unification")
}

fn regen() -> bool {
    std::env::var("FLATWALK_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Compares (or regenerates) one golden capture.
fn check(name: &str, json: String) -> Result<(), String> {
    let path = golden_dir().join(format!("{name}.json"));
    if regen() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &json).expect("write golden");
        return Ok(());
    }
    let want = std::fs::read_to_string(&path)
        .map_err(|e| format!("{name}: missing golden {}: {e}", path.display()))?;
    if want == json {
        Ok(())
    } else {
        Err(format!(
            "{name}: report diverged from the pre-unification golden ({} bytes vs {})",
            json.len(),
            want.len()
        ))
    }
}

fn native_opts() -> SimOptions {
    SimOptions::small_test()
}

/// Options that exercise the context-switch boundary logic of the span
/// scheduler (spans must clamp to the switch interval).
fn switching_opts() -> SimOptions {
    let mut o = SimOptions::small_test();
    o.context_switch_interval = Some(900);
    o
}

fn multicore_opts() -> SimOptions {
    let mut o = SimOptions::small_test();
    o.footprint_divisor = 64;
    o.phys_mem_bytes = 2 << 30;
    o
}

/// One test body so the process-global fault plan can be installed for
/// the fault-seeded cells without racing sibling tests.
#[test]
fn engine_reports_match_pre_unification_goldens() {
    let mut failures: Vec<String> = Vec::new();
    let mut run = |name: String, json: String| {
        if let Err(e) = check(&name, json) {
            failures.push(e);
        }
    };

    // Native engine: the full Fig. 9 configuration set.
    let spec = WorkloadSpec::gups().scaled_mib(32);
    let mut native_set = TranslationConfig::fig9_set();
    native_set.push(TranslationConfig::flattened_no_nf());
    native_set.push(TranslationConfig::flattened_l3l2());
    for cfg in native_set {
        let r = NativeSimulation::build(spec.clone(), cfg.clone(), &native_opts()).run();
        run(
            format!("native_{}", slug(cfg.label)),
            r.to_json().to_string(),
        );
    }
    // Native with context switches (span boundaries).
    let r = NativeSimulation::build(
        spec.clone(),
        TranslationConfig::flattened_prioritized(),
        &switching_opts(),
    )
    .run();
    run("native_cs_FPT_PTP".into(), r.to_json().to_string());

    // Virtualized engine: the full Fig. 12 configuration set.
    for cfg in VirtConfig::fig12_set() {
        let r = VirtualizedSimulation::build(spec.clone(), cfg, &native_opts()).run();
        run(format!("virt_{}", slug(cfg.label)), r.to_json().to_string());
    }

    // Multicore engine: a heterogeneous Table 2 mix under Base and
    // FPT+PTP; per-core reports are captured as a JSON array.
    let mix = &table2_mixes()[7];
    for cfg in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ] {
        let label = cfg.label;
        let r = MulticoreSimulation::build(mix, cfg, &multicore_opts()).run();
        let cores: Vec<String> = r.cores.iter().map(|c| c.to_json().to_string()).collect();
        run(
            format!("multicore_mix8_{}", slug(label)),
            format!("[{}]", cores.join(",")),
        );
    }

    // Comparison schemes share the engine's timing proxy.
    let o = native_opts();
    let scaled = spec.clone().scaled_down(o.footprint_divisor);
    let r = SchemeSimulation::build(spec.clone(), AsapScheme::new(o.pwc.clone()), &o).run();
    run("scheme_ASAP".into(), r.to_json().to_string());
    let r =
        SchemeSimulation::build(spec.clone(), EchScheme::new(scaled.footprint, false), &o).run();
    run("scheme_ECH".into(), r.to_json().to_string());
    let r =
        SchemeSimulation::build(spec.clone(), PomTlbScheme::new(16 << 20, o.pwc.clone()), &o).run();
    run("scheme_POM_TLB".into(), r.to_json().to_string());

    // Fault-seeded cells: mid-run shootdowns must land on identical
    // stream positions in every engine.
    faults::install(FaultPlan::parse("11:mutate").expect("valid plan"));
    let r = NativeSimulation::build(
        spec.clone(),
        TranslationConfig::flattened_prioritized(),
        &native_opts(),
    )
    .run();
    run("fault_native_FPT_PTP".into(), r.to_json().to_string());
    let r = VirtualizedSimulation::build(spec.clone(), VirtConfig::fig12_set()[3], &native_opts())
        .run();
    run("fault_virt_GF_HF".into(), r.to_json().to_string());
    let r = MulticoreSimulation::build(mix, TranslationConfig::baseline(), &multicore_opts()).run();
    let cores: Vec<String> = r.cores.iter().map(|c| c.to_json().to_string()).collect();
    run(
        "fault_multicore_mix8_Base".into(),
        format!("[{}]", cores.join(",")),
    );
    faults::clear();

    assert!(
        failures.is_empty(),
        "engine unification diverged from pre-refactor goldens:\n{}",
        failures.join("\n")
    );
}
