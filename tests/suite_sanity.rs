//! Suite-wide sanity checks: every benchmark spec, every layout, every
//! configuration preset obeys the structural invariants the experiments
//! rely on.

use flatwalk::pt::{Layout, NodeShape, Pte};
use flatwalk::sim::{SimOptions, TranslationConfig, VirtConfig};
use flatwalk::tlb::PwcConfig;
use flatwalk::types::PhysAddr;
use flatwalk::workloads::{AccessStream, WorkloadSpec};

#[test]
fn every_benchmark_stream_stays_in_its_footprint() {
    for spec in WorkloadSpec::suite() {
        let scaled = spec.scaled_down(64);
        let footprint = scaled.footprint;
        let name = scaled.name;
        let mut s = AccessStream::new(scaled, 0x1000_0000_0000);
        for _ in 0..5_000 {
            let va = s.next_va().raw();
            assert!(
                (0x1000_0000_0000..0x1000_0000_0000 + footprint).contains(&va),
                "{name}: {va:#x} outside footprint"
            );
            assert_eq!(va % 8, 0, "{name}: unaligned access");
        }
    }
}

#[test]
fn every_benchmark_has_sane_parameters() {
    for spec in WorkloadSpec::suite() {
        assert!(
            spec.footprint >= 1 << 29,
            "{}: footprint too small",
            spec.name
        );
        assert!(
            spec.footprint <= 16 << 30,
            "{}: footprint too large",
            spec.name
        );
        assert!(
            spec.work_per_access >= 1 && spec.work_per_access <= 32,
            "{}",
            spec.name
        );
        assert!(
            (0.1..=1.0).contains(&spec.data_exposure),
            "{}: exposure {}",
            spec.name,
            spec.data_exposure
        );
    }
}

#[test]
fn high_miss_panel_is_actually_higher_miss() {
    // The high-miss panel's specs must touch more distinct pages per
    // access than the main panel's median — this is the property the
    // paper's figure split encodes.
    let distinct_pages = |spec: WorkloadSpec| {
        let mut s = AccessStream::new(spec.scaled_down(32), 0);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..20_000 {
            pages.insert(s.next_va().raw() >> 12);
        }
        pages.len()
    };
    let mut main: Vec<usize> = WorkloadSpec::main_suite()
        .into_iter()
        .map(distinct_pages)
        .collect();
    main.sort_unstable();
    let main_median = main[main.len() / 2];
    let high_min = WorkloadSpec::high_miss_suite()
        .into_iter()
        .map(distinct_pages)
        .min()
        .unwrap();
    // tiger is the mildest member of the high panel; it should still be
    // in the same league as the main panel's median.
    assert!(
        high_min * 2 > main_median,
        "high-miss panel member below main median ({high_min} vs {main_median})"
    );
}

#[test]
fn pte_encoding_is_stable_golden_values() {
    // The simulated architectural encoding (documented in flatwalk-pt)
    // must not drift: bit0 present, bit1 large, bits2-3 shape.
    assert_eq!(Pte::leaf(PhysAddr::new(0xABC000)).raw(), 0xABC000 | 0b1);
    assert_eq!(
        Pte::large(PhysAddr::new(0x4000_0000)).raw(),
        0x4000_0000 | 0b11
    );
    assert_eq!(
        Pte::pointer(PhysAddr::new(0x20_0000), NodeShape::Flat2).raw(),
        0x20_0000 | (1 << 2) | 0b1
    );
    assert_eq!(
        Pte::pointer(PhysAddr::new(0x4000_0000), NodeShape::Flat3).raw(),
        0x4000_0000 | (2 << 2) | 0b1
    );
    assert_eq!(Pte::NOT_PRESENT.raw(), 0);
}

#[test]
fn layouts_tile_the_address_bits_exactly() {
    for layout in [
        Layout::conventional4(),
        Layout::conventional5(),
        Layout::flat_l4l3_l2l1(),
        Layout::flat_l4l3(),
        Layout::flat_l3l2(),
        Layout::flat_l2l1(),
        Layout::flat_l4l3l2(),
        Layout::flat5_l5l4_l3l2(),
    ] {
        let total_bits: u32 = layout.groups().iter().map(|g| g.depth as u32 * 9).sum();
        assert_eq!(
            total_bits,
            layout.root_level().rank() as u32 * 9,
            "{layout:?} does not cover the index bits exactly"
        );
    }
}

#[test]
fn pwc_budget_is_conserved_for_every_layout() {
    let base = PwcConfig::server();
    let budget: usize = base.depths.iter().map(|d| d.entries).sum();
    for layout in [
        Layout::conventional4(),
        Layout::conventional5(),
        Layout::flat_l4l3_l2l1(),
        Layout::flat_l4l3(),
        Layout::flat_l3l2(),
        Layout::flat_l2l1(),
        Layout::flat_l4l3l2(),
        Layout::flat5_l5l4_l3l2(),
    ] {
        let cfg = base.for_layout(&layout);
        let total: usize = cfg.depths.iter().map(|d| d.entries).sum();
        assert_eq!(total, budget, "budget changed for {layout:?}");
        // All depths must sit at walk boundaries (multiples of 9 bits).
        assert!(cfg.depths.iter().all(|d| d.prefix_bits % 9 == 0));
    }
}

#[test]
fn fig12_configs_cover_all_combinations() {
    let set = VirtConfig::fig12_set();
    for ptp in [false, true] {
        for gf in [false, true] {
            for hf in [false, true] {
                assert!(
                    set.iter()
                        .any(|c| c.ptp == ptp && c.guest_flat == gf && c.host_flat == hf),
                    "missing combination ptp={ptp} gf={gf} hf={hf}"
                );
            }
        }
    }
}

#[test]
fn options_presets_have_paper_table_values() {
    let s = SimOptions::server();
    assert_eq!(s.hierarchy.l1.size_bytes, 32 << 10);
    assert_eq!(s.hierarchy.l2.size_bytes, 256 << 10);
    assert_eq!(s.hierarchy.l3.size_bytes, 16 << 20);
    assert_eq!(s.tlb.l2_entries, 1536);
    assert_eq!(s.tlb.l2_ways, 12);
    assert_eq!(s.nested_tlb_entries, 16);
    assert!((s.ptp_bias - 0.99).abs() < 1e-12);

    let m = SimOptions::mobile();
    assert_eq!(m.hierarchy.l3.size_bytes, 2 << 20);
    assert_eq!(m.hierarchy.dram_latency, 270);
    assert_eq!(m.tlb.l2_ways, 6);
}

#[test]
fn translation_configs_relabel_without_behaviour_change() {
    let a = TranslationConfig::flattened();
    let b = TranslationConfig::flattened().with_label("X");
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.ptp, b.ptp);
    assert_eq!(a.nf_threshold, b.nf_threshold);
    assert_eq!(b.label, "X");
}
