//! End-to-end tests for the `flatwalk-serve` service: a real server on
//! an ephemeral loopback port, driven through the wire protocol by the
//! real client library.
//!
//! The core claims under test:
//!
//! - served reports are **byte-identical** to running the same cells
//!   directly through the batch runner;
//! - a repeated identical submission is answered entirely from the
//!   result cache — zero cells re-simulated, verified via server
//!   counters — and its report bytes still match;
//! - concurrent duplicate submissions coalesce onto one execution per
//!   distinct cell;
//! - shutdown drains: in-flight work finishes, new submissions are
//!   rejected with `draining`.
//!
//! Grids are shrunk via `JobSpec` overrides so the whole file runs in
//! seconds; the direct-runner reference resolves its cells through the
//! *same* `JobSpec` so both sides simulate identical work.

use flatwalk_bench::Mode;
use flatwalk_obs::{json, Json};
use flatwalk_serve::client::Connection;
use flatwalk_serve::proto::JobSpec;
use flatwalk_serve::server::{self, ServerConfig};
use flatwalk_sim::runner;

fn test_server(workers: usize, queue_depth: usize) -> server::ServerHandle {
    let config = ServerConfig {
        tcp: true,
        port: 0,
        uds: None,
        workers,
        job_threads: 0,
        queue_depth,
        cache_bytes: 64 << 20,
        store_dir: None,
        slo_ms: 0,
        job_retries: 1,
        stall_secs: 0,
        chaos: true,
    };
    server::spawn(config).expect("bind an ephemeral loopback port")
}

fn connect(handle: &server::ServerHandle) -> Connection {
    let addr = handle.addr().expect("tcp listener");
    Connection::connect_tcp(&addr.to_string()).expect("connect to test server")
}

/// The shrunken §7.1 PWC grid used throughout: 9 cells, a few seconds
/// of simulation total.
fn small_spec() -> JobSpec {
    let mut spec = JobSpec::new("sec71_pwc", Mode::Quick);
    spec.warmup_ops = Some(500);
    spec.measure_ops = Some(2500);
    spec.footprint_divisor = Some(512);
    spec
}

/// Submits with streaming and collects `(record, done)` from the event
/// stream.
fn submit_streaming(conn: &mut Connection, spec: &JobSpec) -> (Vec<Json>, Json) {
    conn.send(&spec.to_request_line(true)).expect("send submit");
    let accepted = conn.recv_line().expect("read").expect("accepted line");
    let accepted = json::parse(&accepted).expect("accepted parses");
    assert_eq!(
        accepted.get("event"),
        Some(&Json::Str("accepted".into())),
        "expected accepted, got {accepted}"
    );
    let mut records = Vec::new();
    loop {
        let line = conn.recv_line().expect("read").expect("stream open");
        let v = json::parse(&line).expect("event parses");
        match v.get("event") {
            Some(Json::Str(e)) if e == "cell" => {
                records.push(v.get("record").expect("cell has record").clone());
            }
            Some(Json::Str(e)) if e == "done" => return (records, v),
            other => panic!("unexpected event {other:?} in {line}"),
        }
    }
}

/// Renders the report a record carries, for byte comparison.
fn record_report(record: &Json) -> String {
    record
        .get("report")
        .expect("ok record has report")
        .to_string()
}

#[test]
fn served_reports_match_direct_runner_and_repeat_is_all_cache_hits() {
    let handle = test_server(2, 8);
    let spec = small_spec();

    // Reference: the same cells through the batch runner, directly.
    let grid = spec.resolve().expect("known grid");
    let total = grid.cells.len();
    let direct: Vec<String> = grid
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| match runner::run_cell_outcome(i, total, cell) {
            runner::CellOutcome::Ok { report, .. } => report.to_json().to_string(),
            runner::CellOutcome::Failed { error, .. } => panic!("direct cell {i} failed: {error}"),
        })
        .collect();

    // Cold submission: everything executes.
    let mut conn = connect(&handle);
    let (cold, done) = submit_streaming(&mut conn, &spec);
    assert_eq!(cold.len(), total);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)), "done: {done}");
    let executed_after_cold = handle.inner().cells_executed();
    assert_eq!(executed_after_cold, total as u64, "cold run simulates all");
    for (i, record) in cold.iter().enumerate() {
        assert_eq!(
            record_report(record),
            direct[i],
            "cell {i} report differs from direct runner"
        );
        assert_eq!(record.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            record.get("index").and_then(Json::as_u64),
            Some(i as u64),
            "records arrive in index order"
        );
    }

    // Identical resubmission: served entirely from the result cache.
    let (warm, _) = submit_streaming(&mut conn, &spec);
    assert_eq!(
        handle.inner().cells_executed(),
        executed_after_cold,
        "0 cells re-simulated on the repeat"
    );
    assert!(handle.inner().cache_hits() >= total as u64);
    for (i, record) in warm.iter().enumerate() {
        assert_eq!(record.get("cached"), Some(&Json::Bool(true)), "cell {i}");
        assert_eq!(
            record_report(record),
            direct[i],
            "cached cell {i} bytes differ"
        );
    }

    // status/result agree with the stream.
    let status = conn.request(r#"{"op":"status","job":2}"#).expect("status");
    let status = json::parse(&status).expect("status parses");
    assert_eq!(status.get("state"), Some(&Json::Str("done".into())));
    assert_eq!(
        status.get("cached").and_then(Json::as_u64),
        Some(total as u64)
    );
    let result = conn.request(r#"{"op":"result","job":1}"#).expect("result");
    let result = json::parse(&result).expect("result parses");
    let cells = result.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), total);
    for (i, record) in cells.iter().enumerate() {
        assert_eq!(record_report(record), direct[i], "result cell {i}");
    }

    handle.begin_drain();
    handle.wait();
}

#[test]
fn concurrent_duplicate_submissions_coalesce() {
    let handle = test_server(4, 8);
    let spec = {
        // Distinct overrides so this test's cells never share cache
        // entries with the other tests in this process.
        let mut s = small_spec();
        s.measure_ops = Some(2600);
        s
    };
    let total = spec.resolve().expect("known grid").len() as u64;

    let duplicates = 3;
    let results: Vec<(Vec<Json>, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..duplicates)
            .map(|_| {
                let spec = spec.clone();
                let mut conn = connect(&handle);
                scope.spawn(move || submit_streaming(&mut conn, &spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // One execution per distinct cell; every other request was a cache
    // hit or coalesced onto the in-flight execution.
    assert_eq!(
        handle.inner().cells_executed(),
        total,
        "duplicate cells must not re-execute"
    );
    let reference: Vec<String> = results[0].0.iter().map(record_report).collect();
    for (records, done) in &results {
        assert_eq!(done.get("failed"), Some(&Json::UInt(0)));
        let reports: Vec<String> = records.iter().map(record_report).collect();
        assert_eq!(reports, reference, "all duplicates see identical bytes");
    }

    handle.begin_drain();
    handle.wait();
}

#[test]
fn zero_depth_queue_rejects_with_overloaded() {
    let handle = test_server(1, 0);
    let mut conn = connect(&handle);
    let reply = conn
        .request(&small_spec().to_request_line(false))
        .expect("reply");
    let v = json::parse(&reply).expect("parses");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(v.get("error"), Some(&Json::Str("overloaded".into())));
    handle.begin_drain();
    handle.wait();
}

#[test]
fn shutdown_drains_in_flight_work_and_rejects_new_jobs() {
    let handle = test_server(1, 8);
    let mut submitter = connect(&handle);
    let spec = {
        let mut s = small_spec();
        s.measure_ops = Some(2700);
        s
    };
    submitter.send(&spec.to_request_line(true)).expect("submit");
    let accepted = submitter.recv_line().expect("read").expect("line");
    assert!(accepted.contains("accepted"), "got {accepted}");

    // Shutdown while the job runs: it must still finish cleanly.
    let mut controller = connect(&handle);
    let reply = controller
        .request(r#"{"op":"shutdown"}"#)
        .expect("shutdown");
    assert!(reply.contains("draining"), "got {reply}");
    let rejected = controller
        .request(&small_spec().to_request_line(false))
        .expect("reply");
    let v = json::parse(&rejected).expect("parses");
    assert_eq!(v.get("error"), Some(&Json::Str("draining".into())));

    let total = spec.resolve().expect("known grid").len();
    let mut cells = 0;
    let mut done = None;
    while let Some(line) = submitter.recv_line().expect("read") {
        let v = json::parse(&line).expect("parses");
        match v.get("event") {
            Some(Json::Str(e)) if e == "cell" => cells += 1,
            Some(Json::Str(e)) if e == "done" => {
                done = Some(v);
                break;
            }
            _ => {}
        }
    }
    let done = done.expect("in-flight job completed despite drain");
    assert_eq!(cells, total);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)));
    handle.wait();
}

#[test]
fn metrics_exposition_reports_request_latency_percentiles() {
    let handle = test_server(2, 8);
    let mut conn = connect(&handle);

    // Generate traffic first so the per-op latency histograms have
    // observations: one streamed submit plus a ping.
    let mut spec = small_spec();
    spec.measure_ops = Some(3100);
    let (records, _) = submit_streaming(&mut conn, &spec);
    assert!(!records.is_empty());
    conn.request(r#"{"op":"ping"}"#).expect("ping");

    // JSON form: the submit was timed end to end, so its percentiles
    // are non-zero and ordered; queue_wait is tracked alongside.
    let reply = conn.request(r#"{"op":"metrics"}"#).expect("metrics");
    let v = json::parse(&reply).expect("metrics parses");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let latency = v.get("latency").expect("latency object");
    let submit = latency.get("submit").expect("submit op timed");
    let p50 = submit.get("p50").and_then(Json::as_u64).expect("p50");
    let p999 = submit.get("p999").and_then(Json::as_u64).expect("p999");
    assert!(submit.get("count").and_then(Json::as_u64) >= Some(1));
    assert!(p50 > 0, "a streamed submit takes real wall time");
    assert!(p999 >= p50, "percentiles must be ordered");
    assert!(latency.get("queue_wait").is_some(), "queue wait is timed");
    let registry = v.get("metrics").expect("registry snapshot");
    assert!(
        registry.get("serve.queue_len").is_some(),
        "queue gauge refreshed at scrape: {registry}"
    );

    // Prometheus form: every sample line is `name{labels} value` with
    // a finite value, and the summary family carries the submit op.
    let reply = conn
        .request(r#"{"op":"metrics","format":"prometheus"}"#)
        .expect("prometheus metrics");
    let v = json::parse(&reply).expect("prometheus reply parses");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    let text = match v.get("text") {
        Some(Json::Str(t)) => t.clone(),
        other => panic!("expected text exposition, got {other:?}"),
    };
    assert!(text.contains("# TYPE flatwalk_serve_request_latency_nanos summary"));
    let mut submit_p50 = None;
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("`name value` sample");
        assert!(!name.is_empty(), "unnamed sample in {line:?}");
        let value: f64 = value.parse().expect("numeric sample value");
        assert!(value.is_finite(), "non-finite sample in {line:?}");
        if name == "flatwalk_serve_request_latency_nanos{op=\"submit\",quantile=\"0.5\"}" {
            submit_p50 = Some(value);
        }
    }
    assert!(
        submit_p50.expect("submit p50 exposed") > 0.0,
        "request-latency percentiles must be non-zero"
    );

    handle.begin_drain();
    handle.wait();
}

#[test]
fn watch_streams_count_limited_metrics_events() {
    let handle = test_server(1, 8);
    let mut conn = connect(&handle);
    conn.send(r#"{"op":"watch","interval_ms":1,"count":3}"#)
        .expect("send watch");
    for seq in 0..3u64 {
        let line = conn.recv_line().expect("read").expect("watch event");
        let v = json::parse(&line).expect("event parses");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "event: {line}");
        assert_eq!(v.get("event"), Some(&Json::Str("metrics".into())));
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(seq));
        assert!(v.get("server").is_some(), "payload matches metrics reply");
        assert!(v.get("latency").is_some());
    }
    let done = conn.recv_line().expect("read").expect("done event");
    let v = json::parse(&done).expect("done parses");
    assert_eq!(v.get("event"), Some(&Json::Str("done".into())));
    assert_eq!(v.get("watched").and_then(Json::as_u64), Some(3));

    // The connection stays usable after a finite watch.
    let pong = conn.request(r#"{"op":"ping"}"#).expect("ping after watch");
    assert!(pong.contains(r#""ok":true"#), "got {pong}");

    handle.begin_drain();
    handle.wait();
}

#[test]
fn per_job_fault_plans_stay_scoped_to_their_job() {
    let handle = test_server(2, 8);
    let mut conn = connect(&handle);

    // A chaos-profile job: faults are injected, but retries absorb
    // them, and the *next* (fault-free) job is untouched.
    let mut faulty = small_spec();
    faulty.measure_ops = Some(2800);
    faulty.faults = Some(flatwalk_faults::FaultPlan::parse("7:alloc").expect("plan"));
    let (faulty_records, _) = submit_streaming(&mut conn, &faulty);
    assert!(!faulty_records.is_empty());

    let mut clean = faulty.clone();
    clean.faults = None;
    let (clean_records, done) = submit_streaming(&mut conn, &clean);
    assert_eq!(done.get("failed"), Some(&Json::UInt(0)));
    for record in &clean_records {
        // The fault-free job must never be served a fault-plan result:
        // its cache key has signature 0.
        let status = record.get("status").cloned();
        assert!(
            status == Some(Json::Str("ok".into())) || status == Some(Json::Str("retried".into())),
            "clean job record: {record}"
        );
    }

    handle.begin_drain();
    handle.wait();
}
