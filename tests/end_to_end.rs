//! End-to-end integration tests across the whole stack: workloads →
//! TLBs → walkers → page tables → caches → reports.

use flatwalk::os::FragmentationScenario;
use flatwalk::sim::{
    NativeSimulation, SimOptions, SimReport, TranslationConfig, VirtConfig, VirtualizedSimulation,
};
use flatwalk::workloads::WorkloadSpec;

fn opts() -> SimOptions {
    let mut o = SimOptions::small_test();
    o.warmup_ops = 4_000;
    o.measure_ops = 20_000;
    o
}

fn run(spec: WorkloadSpec, cfg: TranslationConfig) -> SimReport {
    NativeSimulation::build(spec, cfg, &opts()).run()
}

#[test]
fn paper_ordering_holds_for_tlb_hostile_workloads() {
    // FPT+PTP ≥ PTP ≥ base and FPT+PTP ≥ FPT ≥ base for gups (paper
    // Fig. 9 ordering at 0% LP).
    let spec = WorkloadSpec::gups().scaled_mib(512);
    let base = run(spec.clone(), TranslationConfig::baseline());
    let fpt = run(spec.clone(), TranslationConfig::flattened());
    let ptp = run(spec.clone(), TranslationConfig::prioritized());
    let both = run(spec, TranslationConfig::flattened_prioritized());

    assert!(
        fpt.speedup_vs(&base) >= 1.0,
        "FPT {}",
        fpt.speedup_vs(&base)
    );
    assert!(
        ptp.speedup_vs(&base) >= 1.0,
        "PTP {}",
        ptp.speedup_vs(&base)
    );
    assert!(
        both.speedup_vs(&base) >= fpt.speedup_vs(&base) * 0.995,
        "combo {} vs FPT {}",
        both.speedup_vs(&base),
        fpt.speedup_vs(&base)
    );
    assert!(
        both.speedup_vs(&base) >= ptp.speedup_vs(&base) * 0.995,
        "combo {} vs PTP {}",
        both.speedup_vs(&base),
        ptp.speedup_vs(&base)
    );
}

#[test]
fn walk_counts_are_consistent_across_subsystems() {
    let r = run(
        WorkloadSpec::mcf().scaled_mib(128),
        TranslationConfig::baseline(),
    );
    // Every TLB full miss is exactly one walker invocation.
    assert_eq!(r.tlb.walks, r.walk.walks);
    // Walk memory accesses appear in the hierarchy's page-table stats.
    let pt_probes = r.hier.l1.page_table.total();
    assert_eq!(pt_probes, r.walk.accesses, "L1 sees every walk access");
    // Translations = one per measured op.
    assert_eq!(r.tlb.translations, 20_000);
}

#[test]
fn flattening_beats_baseline_on_walk_accesses_everywhere() {
    for spec in [
        WorkloadSpec::gups().scaled_mib(256),
        WorkloadSpec::bfs().scaled_mib(256),
        WorkloadSpec::xsbench().scaled_mib(256),
    ] {
        let base = run(spec.clone(), TranslationConfig::baseline());
        let flat = run(spec, TranslationConfig::flattened());
        assert!(
            flat.walk.accesses_per_walk() <= base.walk.accesses_per_walk() + 1e-9,
            "{}: flat {} > base {}",
            base.workload,
            flat.walk.accesses_per_walk(),
            base.walk.accesses_per_walk()
        );
        assert!(flat.walk.accesses_per_walk() <= 1.0 + 1e-9);
    }
}

#[test]
fn scenarios_monotonically_reduce_walks() {
    let spec = WorkloadSpec::gups().scaled_mib(256);
    let mut walks = Vec::new();
    for scenario in [
        FragmentationScenario::NONE,
        FragmentationScenario::HALF,
        FragmentationScenario::FULL,
    ] {
        let o = opts().with_scenario(scenario);
        let r = NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &o).run();
        walks.push(r.tlb.walks);
    }
    assert!(walks[0] > walks[1], "50% LP must cut walks: {walks:?}");
    assert!(
        walks[1] > walks[2],
        "100% LP must cut walks further: {walks:?}"
    );
}

#[test]
fn virtualized_baseline_walks_cost_more_and_flattening_recovers() {
    let spec = WorkloadSpec::gups().scaled_mib(256);
    let native = run(spec.clone(), TranslationConfig::baseline());
    let virt_base =
        VirtualizedSimulation::build(spec.clone(), VirtConfig::fig12_set()[0], &opts()).run();
    let virt_flat = VirtualizedSimulation::build(spec, VirtConfig::fig12_set()[3], &opts()).run();

    assert!(
        virt_base.walk.accesses_per_walk() > native.walk.accesses_per_walk(),
        "2-D walks must cost more ({} vs {})",
        virt_base.walk.accesses_per_walk(),
        native.walk.accesses_per_walk()
    );
    assert!(
        virt_flat.walk.accesses_per_walk() < virt_base.walk.accesses_per_walk(),
        "GF+HF must reduce accesses"
    );
    assert!(virt_flat.speedup_vs(&virt_base) >= 1.0);
}

#[test]
fn reports_are_bitwise_deterministic() {
    let spec = WorkloadSpec::xsbench().scaled_mib(128);
    let a = run(spec.clone(), TranslationConfig::flattened_prioritized());
    let b = run(spec, TranslationConfig::flattened_prioritized());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.tlb.walks, b.tlb.walks);
    assert_eq!(a.walk.accesses, b.walk.accesses);
    assert_eq!(a.hier.dram.total(), b.hier.dram.total());
}

#[test]
fn energy_tracks_memory_traffic() {
    let spec = WorkloadSpec::gups().scaled_mib(512);
    let base = run(spec.clone(), TranslationConfig::baseline());
    let both = run(spec, TranslationConfig::flattened_prioritized());
    // Fewer walk accesses + more cache hits must not increase dynamic
    // energy.
    assert!(
        both.cache_energy_vs(&base) <= 1.005,
        "cache energy went up: {}",
        both.cache_energy_vs(&base)
    );
    assert!(
        both.dram_energy_vs(&base) <= 1.005,
        "DRAM accesses went up: {}",
        both.dram_energy_vs(&base)
    );
}

#[test]
fn context_switches_force_retranslation_but_not_cache_cold() {
    let spec = WorkloadSpec::omnetpp().scaled_mib(64);
    let base = NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &opts()).run();
    let mut o = opts();
    o.context_switch_interval = Some(1_000);
    let switched = NativeSimulation::build(spec, TranslationConfig::baseline(), &o).run();
    assert!(
        switched.tlb.walks > base.tlb.walks,
        "flushing TLBs must add walks ({} vs {})",
        switched.tlb.walks,
        base.tlb.walks
    );
    assert!(switched.ipc() <= base.ipc());
    // The refill walks hit warm caches: per-walk latency must not blow
    // up to DRAM levels.
    assert!(
        switched.walk.latency_per_walk() < 150.0,
        "refill walks should be cache-served ({})",
        switched.walk.latency_per_walk()
    );
}

#[test]
fn replayed_trace_reproduces_the_synthetic_run() {
    use flatwalk::workloads::{trace, AccessStream};
    let dir = std::env::temp_dir().join("flatwalk-e2e-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xsbench.fwtrace");

    let spec = WorkloadSpec::xsbench().scaled_mib(64);
    let mut o = opts();
    o.footprint_divisor = 1; // traces run at recorded scale

    // Record exactly the accesses the synthetic run will perform.
    let total = (o.warmup_ops + o.measure_ops) as usize;
    trace::record(AccessStream::new(spec.clone(), 0), total, &path).unwrap();

    let synthetic = NativeSimulation::build(spec, TranslationConfig::flattened(), &o).run();
    let replayed = NativeSimulation::build_with_stream(
        trace::load(&path, "xsbench", 7, 0.75).unwrap(),
        TranslationConfig::flattened(),
        &o,
    )
    .run();

    // Same addresses → identical translation behaviour (PAs differ only
    // by the normalization base, which cancels page-granularity stats).
    assert_eq!(replayed.tlb.walks, synthetic.tlb.walks);
    assert_eq!(replayed.walk.accesses, synthetic.walk.accesses);
    assert_eq!(replayed.tlb.translations, synthetic.tlb.translations);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn median_walk_under_fpt_ptp_is_a_cache_hit() {
    // The paper's title claim, read off the latency distribution: with
    // flattening + prioritization the *median* walk is one access that
    // hits on-chip (well under the 200-cycle DRAM round trip).
    let spec = WorkloadSpec::gups().scaled_mib(512);
    let base = run(spec.clone(), TranslationConfig::baseline());
    let both = run(spec, TranslationConfig::flattened_prioritized());
    assert!(
        both.walk.latency_p50() < 64,
        "median FPT+PTP walk should be an on-chip hit (p50 {})",
        both.walk.latency_p50()
    );
    assert!(
        both.walk.latency_p50() <= base.walk.latency_p50(),
        "combo median {} vs base median {}",
        both.walk.latency_p50(),
        base.walk.latency_p50()
    );
    assert!(both.walk.latency_p99() >= both.walk.latency_p50());
}
