//! Property tests: every page-table organization translates exactly the
//! same way — flattening, fallback, NF regions and large pages are
//! purely structural choices that must never change *what* an address
//! maps to.

use proptest::prelude::*;

use flatwalk::pt::{
    resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper, NfRegions,
    No2MbAllocator,
};
use flatwalk::types::{PageSize, PhysAddr, VirtAddr};

/// A randomized mapping request.
#[derive(Debug, Clone)]
struct Req {
    slot: u64,
    size: PageSize,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u64..4096, 0u8..8).prop_map(|(slot, sz)| Req {
        slot,
        // 4 KB dominates; sprinkle 2 MB and the occasional 1 GB.
        size: match sz {
            0..=5 => PageSize::Size4K,
            6 => PageSize::Size2M,
            _ => PageSize::Size1G,
        },
    })
}

/// Converts slot-based requests into non-overlapping, aligned mappings.
///
/// Each size class gets its own VA window so randomly drawn requests
/// cannot overlap across classes; duplicate slots are deduplicated.
fn materialize(reqs: &[Req]) -> Vec<(VirtAddr, PhysAddr, PageSize)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in reqs {
        if !seen.insert((r.slot, r.size)) {
            continue;
        }
        let (va_base, pa_base) = match r.size {
            PageSize::Size4K => (0x0100_0000_0000u64, 0x10_0000_0000u64),
            PageSize::Size2M => (0x0200_0000_0000, 0x20_0000_0000),
            PageSize::Size1G => (0x0400_0000_0000, 0x40_0000_0000),
        };
        let va = va_base + r.slot * r.size.bytes();
        let pa = pa_base + r.slot * r.size.bytes();
        out.push((VirtAddr::new(va), PhysAddr::new(pa), r.size));
    }
    out
}

fn layouts() -> Vec<Layout> {
    vec![
        Layout::conventional4(),
        Layout::flat_l4l3_l2l1(),
        Layout::flat_l4l3(),
        Layout::flat_l3l2(),
        Layout::flat_l2l1(),
        Layout::flat_l4l3l2(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every layout resolves every mapped address to the same PA the
    /// conventional table produces, at every offset within the page.
    #[test]
    fn all_layouts_translate_identically(reqs in prop::collection::vec(req_strategy(), 1..24),
                                         probe_off in 0u64..4096) {
        let mappings = materialize(&reqs);
        let mut reference: Option<Vec<PhysAddr>> = None;
        for layout in layouts() {
            let mut store = FrameStore::new();
            let mut alloc = BumpAllocator::new(0x100_0000_0000);
            let mut mapper =
                Mapper::new(&mut store, &mut alloc, layout.clone(), &FlattenEverywhere).unwrap();
            for (va, pa, size) in &mappings {
                mapper
                    .map(&mut store, &mut alloc, &FlattenEverywhere, *va, *pa, *size)
                    .unwrap_or_else(|e| panic!("{layout:?}: map failed: {e}"));
            }
            let pas: Vec<PhysAddr> = mappings
                .iter()
                .map(|(va, _, size)| {
                    let probe = VirtAddr::new((va.raw() + probe_off % size.bytes()) & !7);
                    resolve(&store, mapper.table(), probe)
                        .unwrap_or_else(|e| panic!("{layout:?}: resolve failed: {e}"))
                        .pa
                })
                .collect();
            match &reference {
                None => reference = Some(pas),
                Some(r) => prop_assert_eq!(r, &pas, "layout {:?} disagrees", layout),
            }
        }
    }

    /// Graceful fallback (no 2 MB allocations available) never changes
    /// translations, only the node shapes.
    #[test]
    fn fallback_preserves_translations(reqs in prop::collection::vec(req_strategy(), 1..16)) {
        // 1 GB mappings need 1 GB-aligned data, which is fine, but the
        // *table* fallback is what we are testing, so data allocations
        // are independent of the node allocator here.
        let mappings = materialize(&reqs);
        let layout = Layout::flat_l4l3_l2l1();

        let mut store_a = FrameStore::new();
        let mut alloc_a = BumpAllocator::new(0x100_0000_0000);
        let mut mapper_a =
            Mapper::new(&mut store_a, &mut alloc_a, layout.clone(), &FlattenEverywhere).unwrap();

        let mut store_b = FrameStore::new();
        let mut alloc_b = No2MbAllocator(BumpAllocator::new(0x100_0000_0000));
        let mut mapper_b =
            Mapper::new(&mut store_b, &mut alloc_b, layout, &FlattenEverywhere).unwrap();

        for (va, pa, size) in &mappings {
            mapper_a
                .map(&mut store_a, &mut alloc_a, &FlattenEverywhere, *va, *pa, *size)
                .unwrap();
            mapper_b
                .map(&mut store_b, &mut alloc_b, &FlattenEverywhere, *va, *pa, *size)
                .unwrap();
        }
        prop_assert_eq!(mapper_b.census().flat2_nodes, 0);
        prop_assert!(mapper_b.census().fallback_nodes > 0);
        for (va, _, _) in &mappings {
            let a = resolve(&store_a, mapper_a.table(), *va).unwrap();
            let b = resolve(&store_b, mapper_b.table(), *va).unwrap();
            prop_assert_eq!(a.pa, b.pa);
            prop_assert!(b.steps.len() >= a.steps.len());
        }
    }

    /// NF regions change walk shape for 2 MB pages but never the PA.
    #[test]
    fn nf_regions_preserve_translations(slots in prop::collection::vec(0u64..256, 1..16)) {
        let layout = Layout::flat_l4l3_l2l1();
        let mut seen = std::collections::HashSet::new();
        let mappings: Vec<(VirtAddr, PhysAddr)> = slots
            .iter()
            .filter(|s| seen.insert(**s))
            .map(|s| {
                (
                    VirtAddr::new(0x0200_0000_0000 + s * (2 << 20)),
                    PhysAddr::new(0x20_0000_0000 + s * (2 << 20)),
                )
            })
            .collect();

        let build = |nf: bool| {
            let mut store = FrameStore::new();
            let mut alloc = BumpAllocator::new(0x100_0000_0000);
            let mut regions = NfRegions::new();
            if nf {
                for (va, _) in &mappings {
                    regions.mark(*va);
                }
            }
            let mut mapper = Mapper::new(&mut store, &mut alloc, layout.clone(), &regions).unwrap();
            for (va, pa) in &mappings {
                mapper
                    .map(&mut store, &mut alloc, &regions, *va, *pa, PageSize::Size2M)
                    .unwrap();
            }
            (store, *mapper.table(), *mapper.census())
        };

        let (store_nf, table_nf, census_nf) = build(true);
        let (store_rep, table_rep, census_rep) = build(false);
        prop_assert_eq!(census_nf.replicated_entries, 0);
        prop_assert_eq!(census_rep.replicated_entries, 512 * mappings.len() as u64);
        for (va, pa) in &mappings {
            let probe = VirtAddr::new(va.raw() + 0x12_3000);
            let a = resolve(&store_nf, &table_nf, probe).unwrap();
            let b = resolve(&store_rep, &table_rep, probe).unwrap();
            prop_assert_eq!(a.pa, b.pa);
            prop_assert_eq!(a.pa.raw(), pa.raw() + 0x12_3000);
            prop_assert_eq!(a.size, PageSize::Size2M);
            prop_assert_eq!(b.size, PageSize::Size4K, "replicas are 4 KB leaves");
        }
    }
}
