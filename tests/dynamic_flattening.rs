//! Dynamic flattening (the §6.2 extension): promoting an existing pair
//! of conventional levels into a 2 MB flattened node at runtime must
//! preserve every translation, shorten walks, and release the replaced
//! nodes.

use flatwalk::os::BuddyAllocator;
use flatwalk::pt::{
    resolve, FlattenEverywhere, FrameStore, Layout, Mapper, No2MbAllocator, PromoteError,
};
use flatwalk::types::{Level, PageSize, PhysAddr, VirtAddr};

fn build_conventional(
    pages: u64,
) -> (
    FrameStore,
    BuddyAllocator,
    Mapper,
    Vec<(VirtAddr, PhysAddr)>,
) {
    let mut store = FrameStore::new();
    let mut alloc = BuddyAllocator::new(0, 1 << 30);
    let mut mapper = Mapper::new(
        &mut store,
        &mut alloc,
        Layout::conventional4(),
        &FlattenEverywhere,
    )
    .unwrap();
    let mut mappings = Vec::new();
    for p in 0..pages {
        // Spread across several L2 nodes (one page per 2 MB region).
        let va = VirtAddr::new(0x40_0000_0000 + p * (2 << 20));
        let pa = PhysAddr::new(0x1000_0000 + p * 4096);
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                va,
                pa,
                PageSize::Size4K,
            )
            .unwrap();
        mappings.push((va, pa));
    }
    (store, alloc, mapper, mappings)
}

#[test]
fn promote_l3_l2_shortens_walks_and_preserves_translations() {
    let (mut store, mut alloc, mut mapper, mappings) = build_conventional(64);
    let free_before = alloc.free_bytes();
    let before: Vec<_> = mappings
        .iter()
        .map(|(va, _)| resolve(&store, mapper.table(), *va).unwrap())
        .collect();
    assert!(before.iter().all(|w| w.steps.len() == 4));

    mapper
        .promote(&mut store, &mut alloc, mappings[0].0, Level::L3)
        .unwrap();

    for ((va, pa), old) in mappings.iter().zip(&before) {
        let w = resolve(&store, mapper.table(), *va).unwrap();
        assert_eq!(w.pa, old.pa, "translation changed for {va}");
        assert_eq!(w.pa.align_down(PageSize::Size4K), *pa);
        assert_eq!(w.steps.len(), 3, "L4 → flat L3+L2 → L1");
    }
    // The 64 mappings share one L3 node and one L2 node; both are
    // replaced by the 2 MB flat node: net usage grows by 2 MB − 2×4 KB.
    let expected = free_before + 2 * 4096 - (2 << 20);
    assert_eq!(alloc.free_bytes(), expected);
    assert_eq!(mapper.census().flat2_nodes, 1);
}

#[test]
fn promote_root_pair() {
    let (mut store, mut alloc, mut mapper, mappings) = build_conventional(8);
    mapper
        .promote(&mut store, &mut alloc, mappings[0].0, Level::L4)
        .unwrap();
    for (va, pa) in &mappings {
        let w = resolve(&store, mapper.table(), *va).unwrap();
        assert_eq!(w.pa.align_down(PageSize::Size4K), *pa);
        assert_eq!(w.steps.len(), 3, "flat L4+L3 → L2 → L1");
    }
    // Promoting again is a no-op error.
    assert_eq!(
        mapper.promote(&mut store, &mut alloc, mappings[0].0, Level::L4),
        Err(PromoteError::AlreadyFlat)
    );
}

#[test]
fn promote_both_pairs_reaches_fully_flattened_walks() {
    // Map pages densely within one 2 MB region so L2+L1 promotion has a
    // well-populated L1 child.
    let mut store = FrameStore::new();
    let mut alloc = BuddyAllocator::new(0, 1 << 30);
    let mut mapper = Mapper::new(
        &mut store,
        &mut alloc,
        Layout::conventional4(),
        &FlattenEverywhere,
    )
    .unwrap();
    let mut mappings = Vec::new();
    for p in 0..256u64 {
        let va = VirtAddr::new(0x40_0000_0000 + p * 4096);
        let pa = PhysAddr::new(0x1000_0000 + p * 4096);
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                va,
                pa,
                PageSize::Size4K,
            )
            .unwrap();
        mappings.push((va, pa));
    }
    let va0 = mappings[0].0;
    mapper
        .promote(&mut store, &mut alloc, va0, Level::L4)
        .unwrap();
    mapper
        .promote(&mut store, &mut alloc, va0, Level::L2)
        .unwrap();
    for (va, pa) in &mappings {
        let w = resolve(&store, mapper.table(), *va).unwrap();
        assert_eq!(w.pa.align_down(PageSize::Size4K), *pa);
        assert_eq!(w.steps.len(), 2, "flat L4+L3 → flat L2+L1");
    }
}

#[test]
fn promote_replicates_large_mappings() {
    let mut store = FrameStore::new();
    let mut alloc = BuddyAllocator::new(0, 1 << 30);
    let mut mapper = Mapper::new(
        &mut store,
        &mut alloc,
        Layout::conventional4(),
        &FlattenEverywhere,
    )
    .unwrap();
    let va = VirtAddr::new(0x40_0000_0000);
    let pa = PhysAddr::new(0x2000_0000);
    mapper
        .map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size2M,
        )
        .unwrap();
    // Merge L2+L1: the 2 MB terminal entry becomes 512 replicated 4 KB
    // leaves (§3.4), preserving every offset.
    mapper
        .promote(&mut store, &mut alloc, va, Level::L2)
        .unwrap();
    assert_eq!(mapper.census().replicated_entries, 512);
    let probe = VirtAddr::new(va.raw() + 0x12_3000 + 0x40);
    let w = resolve(&store, mapper.table(), probe).unwrap();
    assert_eq!(w.pa.raw(), pa.raw() + 0x12_3000 + 0x40);
    assert_eq!(w.size, PageSize::Size4K);
}

#[test]
fn promote_fails_cleanly_without_2mb_blocks() {
    let mut store = FrameStore::new();
    let mut alloc = No2MbAllocator(flatwalk::pt::BumpAllocator::new(0x1000_0000));
    let mut mapper = Mapper::new(
        &mut store,
        &mut alloc,
        Layout::conventional4(),
        &FlattenEverywhere,
    )
    .unwrap();
    let va = VirtAddr::new(0x40_0000_0000);
    mapper
        .map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            PhysAddr::new(0x9000_0000),
            PageSize::Size4K,
        )
        .unwrap();
    let before = resolve(&store, mapper.table(), va).unwrap();
    assert_eq!(
        mapper.promote(&mut store, &mut alloc, va, Level::L3),
        Err(PromoteError::AllocFailed)
    );
    // Table untouched.
    let after = resolve(&store, mapper.table(), va).unwrap();
    assert_eq!(before, after);
}

#[test]
fn promote_rejects_bad_targets() {
    let (mut store, mut alloc, mut mapper, mappings) = build_conventional(2);
    let va = mappings[0].0;
    assert_eq!(
        mapper.promote(&mut store, &mut alloc, va, Level::L1),
        Err(PromoteError::BadLevel)
    );
    assert_eq!(
        mapper.promote(&mut store, &mut alloc, va, Level::L5),
        Err(PromoteError::BadLevel)
    );
    assert_eq!(
        mapper.promote(
            &mut store,
            &mut alloc,
            VirtAddr::new(0x7777_0000_0000),
            Level::L2
        ),
        Err(PromoteError::NotPresent)
    );
}

mod promotion_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any sequence of promotions at random levels preserves every
        /// translation (failed promotions are ignored).
        #[test]
        fn random_promotions_preserve_translations(
            slots in proptest::collection::vec(0u64..2048, 4..32),
            promos in proptest::collection::vec((0u8..3, 0usize..32), 1..6),
        ) {
            let mut store = FrameStore::new();
            let mut alloc = BuddyAllocator::new(0, 1 << 30);
            let mut mapper = Mapper::new(
                &mut store,
                &mut alloc,
                Layout::conventional4(),
                &FlattenEverywhere,
            )
            .unwrap();
            let mut seen = std::collections::HashSet::new();
            let mut mappings = Vec::new();
            for &s in &slots {
                if !seen.insert(s) {
                    continue;
                }
                let va = VirtAddr::new(0x40_0000_0000 + s * 4096 * 7919);
                let pa = PhysAddr::new(0x1000_0000 + s * 4096);
                mapper
                    .map(&mut store, &mut alloc, &FlattenEverywhere, va, pa, PageSize::Size4K)
                    .unwrap();
                mappings.push((va, pa));
            }
            for (lvl, which) in promos {
                let level = match lvl {
                    0 => Level::L2,
                    1 => Level::L3,
                    _ => Level::L4,
                };
                let va = mappings[which % mappings.len()].0;
                // May fail (AlreadyFlat etc.) — that must be harmless.
                let _ = mapper.promote(&mut store, &mut alloc, va, level);
            }
            for (va, pa) in &mappings {
                let w = resolve(&store, mapper.table(), *va).unwrap();
                prop_assert_eq!(w.pa.align_down(PageSize::Size4K), *pa);
            }
        }
    }
}
