//! Deterministic fault injection end-to-end: a fault plan is part of
//! the experiment's identity, so the same seed must produce the same
//! faults — and therefore byte-identical reports — at any thread
//! count; injected allocation failures must actually exercise the
//! §3.2 fallback path; and a poisoned cell must fail structurally
//! without taking the rest of the grid with it.
//!
//! The installed fault plan is process-global, so every test holds
//! [`plan_guard`] for its whole body and clears the plan on drop.

use std::sync::{Mutex, MutexGuard};

use flatwalk::faults::{self, FaultPlan};
use flatwalk::os::FragmentationScenario;
use flatwalk::sim::runner::{run_cells_timed, Cell, CellOutcome};
use flatwalk::sim::{SimOptions, TranslationConfig};
use flatwalk::workloads::WorkloadSpec;

/// Serializes tests that install the process-global fault plan.
fn plan_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears the installed plan even if the test body panics.
struct PlanScope;

impl PlanScope {
    fn install(spec: &str) -> PlanScope {
        faults::install(FaultPlan::parse(spec).expect("valid plan spec"));
        PlanScope
    }
}

impl Drop for PlanScope {
    fn drop(&mut self) {
        faults::clear();
    }
}

/// A small grid with flattened configs (so table growth wants 2 MB
/// allocations) across two scenarios.
fn grid() -> Vec<Cell> {
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 3_000;
    let workloads = [
        WorkloadSpec::gups().scaled_mib(16),
        WorkloadSpec::dc().scaled_mib(16),
        WorkloadSpec::gups().scaled_mib(32),
    ];
    let configs = [
        TranslationConfig::flattened(),
        TranslationConfig::flattened_prioritized(),
    ];
    let scenarios = [FragmentationScenario::NONE, FragmentationScenario::HALF];
    let mut cells = Vec::new();
    for scenario in scenarios {
        for cfg in &configs {
            for w in &workloads {
                cells.push(Cell::new(w.clone(), cfg.clone(), scenario, opts.clone()));
            }
        }
    }
    cells
}

/// Per-cell report JSON strings (the manifest-free part of the
/// `--json` output, which is what must be thread-invariant).
fn report_jsons(outcomes: &[CellOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            CellOutcome::Ok { report, .. } => report.to_json().to_string(),
            CellOutcome::Failed { error, .. } => panic!("unexpected failed cell: {error}"),
        })
        .collect()
}

#[test]
fn same_plan_is_byte_identical_across_thread_counts() {
    let _guard = plan_guard();
    let _plan = PlanScope::install("11:chaos");
    let one = report_jsons(&run_cells_timed("faults-det-t1", grid(), 1));
    let four = report_jsons(&run_cells_timed("faults-det-t4", grid(), 4));
    assert_eq!(
        one, four,
        "a seeded fault plan must replay identically at 1 and 4 threads"
    );
    // The chaos plan must actually have injected something, or this
    // test is vacuous.
    let injected = one.iter().any(|j| !j.contains("\"faults_injected\":0"));
    assert!(injected, "chaos plan injected no faults into any cell");
}

#[test]
fn alloc_faults_force_fallback_nodes() {
    let _guard = plan_guard();
    faults::clear();
    let clean: u64 = run_cells_timed("faults-clean", grid(), 2)
        .iter()
        .map(|o| {
            o.report()
                .expect("clean run cannot fail")
                .census
                .fallback_nodes
        })
        .sum();

    let _plan = PlanScope::install("7:alloc");
    let faulted: u64 = run_cells_timed("faults-alloc", grid(), 2)
        .iter()
        .map(|o| {
            o.report()
                .expect("alloc faults are transient, not fatal")
                .census
                .fallback_nodes
        })
        .sum();
    assert!(
        faulted > clean,
        "injected 2 MB allocation failures must strictly increase fallback \
         nodes (clean {clean}, faulted {faulted})"
    );
}

#[test]
fn poison_fails_exactly_one_cell_and_completes_the_rest() {
    let _guard = plan_guard();
    let _plan = PlanScope::install("3:poison");
    let outcomes = run_cells_timed("faults-poison", grid(), 2);
    let total = outcomes.len();
    let failed: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_failed())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        failed.len(),
        1,
        "a poison plan must fail exactly one cell of {total}, got {failed:?}"
    );
    for (i, o) in outcomes.iter().enumerate() {
        match o {
            CellOutcome::Ok { report, .. } => {
                assert!(report.instructions > 0, "cell {i} produced an empty report");
            }
            CellOutcome::Failed { error, retries } => {
                assert!(
                    error.contains("poison"),
                    "cell {i} failed for the wrong reason: {error}"
                );
                assert!(*retries >= 1, "poison failure must have been retried");
            }
        }
    }
}
