#!/usr/bin/env sh
# Crash-safety smoke: the whole robustness story, end to end, with real
# processes and real SIGKILL.
#
#  1. serve --chaos --store: a client-injected worker panic is detected
#     by the supervisor, the worker respawned, the job requeued, and
#     the job still completes with zero failed cells.
#  2. kill -9 the server; restart on the same store directory; the same
#     submit is answered byte-identically from disk with zero cells
#     re-executed.
#  3. a submit against the dead server's address fails fast with the
#     client's connection exit code (3) after its retry budget.
#
# Builds on `cargo build --release -p flatwalk-serve` artifacts.
# Run from the repository root: sh scripts/chaos_smoke.sh

set -eu

SERVE=./target/release/flatwalk-serve
CLIENT=./target/release/flatwalk-client
STORE=$(mktemp -d "${TMPDIR:-/tmp}/flatwalk-chaos-store.XXXXXX")
OUT=$(mktemp -d "${TMPDIR:-/tmp}/flatwalk-chaos-out.XXXXXX")
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$STORE" "$OUT"
}
trap cleanup EXIT INT TERM

# Starts the server against $STORE and sets SERVE_PID/ADDR.
start_server() {
    : > "$OUT/serve.txt"
    FLATWALK_PROGRESS=0 "$SERVE" --port 0 --workers 2 --chaos \
        --store "$STORE" >> "$OUT/serve.txt" 2>&1 &
    SERVE_PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/^listening on //p' "$OUT/serve.txt" | head -n1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    test -n "$ADDR" || { echo "server never announced its port" >&2; exit 1; }
}

metric() {
    python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['server'].get(sys.argv[2], 0))" "$@"
}

echo "== chaos 1: injected worker panic -> supervisor recovery =="
start_server
"$CLIENT" --connect "$ADDR" submit sec71_pwc --mode quick \
    --chaos panic_worker --retries 2 --json "$OUT/panic.json" > /dev/null
"$CLIENT" --connect "$ADDR" metrics > "$OUT/metrics1.json"
for counter in worker_panics workers_respawned jobs_requeued; do
    n=$(metric "$OUT/metrics1.json" "$counter")
    test "$n" -ge 1 || { echo "$counter = $n, expected >= 1" >&2; exit 1; }
done
test "$(metric "$OUT/metrics1.json" jobs_lost)" -eq 0 || {
    echo "recovered job must not be counted lost" >&2; exit 1; }
python3 - "$OUT/panic.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
bad = [c for c in report['cells'] if c['status'] == 'failed']
assert not bad, f"cells failed despite requeue: {bad}"
print(f"  recovered: {len(report['cells'])} cells ok after worker panic")
EOF

echo "== chaos 2: kill -9, restart on the same store, byte-identical =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
DEAD_ADDR=$ADDR
start_server
grep -q "entries recovered" "$OUT/serve.txt" || {
    echo "restart did not report a recovery scan" >&2; exit 1; }
"$CLIENT" --connect "$ADDR" submit sec71_pwc --mode quick \
    --json "$OUT/warm.json" > /dev/null
"$CLIENT" --connect "$ADDR" metrics > "$OUT/metrics2.json"
test "$(metric "$OUT/metrics2.json" cells_executed)" -eq 0 || {
    echo "restarted server re-executed cells it had on disk" >&2; exit 1; }
python3 - "$OUT/panic.json" "$OUT/warm.json" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert [c['report'] for c in cold['cells']] == [c['report'] for c in warm['cells']], \
    "reports drifted across kill -9"
assert all(c['cached'] for c in warm['cells']), "restart must serve from the store"
print(f"  durable: {len(warm['cells'])} cells byte-identical across kill -9")
EOF

echo "== chaos 3: dead server -> fast connection failure (exit 3) =="
set +e
"$CLIENT" --connect "$DEAD_ADDR" submit sec71_pwc --mode quick \
    --retries 2 --backoff-ms 10 > /dev/null 2>&1
status=$?
set -e
test "$status" -eq 3 || { echo "expected exit 3 (connection), got $status" >&2; exit 1; }
echo "  refused: client gave up with exit code 3 after its retry budget"

"$CLIENT" --connect "$ADDR" shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "chaos smoke OK"
