#!/usr/bin/env sh
# Lock-free hot-path lint.
#
# The scheduler, setup cache, and serve result cache promise lock-free
# READ paths (EXPERIMENTS.md, "Hot-path concurrency rules"). Locks are
# still legitimate on write/retire paths, in test-only plumbing, and in
# panic reporting — but every such site must say so: any `.lock()` in
# the files below without a `// lock-ok: <reason>` tag on the same line
# fails this lint. Adding a lock to a read path means either tagging it
# (and defending the tag in review) or, correctly, not adding it.
#
# Run from the repository root: sh scripts/lint_lockfree.sh

set -eu

HOT_PATH_FILES="
crates/sync/src/once.rs
crates/sync/src/steal.rs
crates/sync/src/swap.rs
crates/sync/src/prefetch.rs
crates/sim/src/setup.rs
crates/sim/src/runner.rs
crates/serve/src/rcache.rs
crates/serve/src/store.rs
crates/mem/src/numa.rs
crates/mem/src/dram.rs
"

status=0
for f in $HOT_PATH_FILES; do
    # Strip test modules? No — stress tests also must not lock around
    # the primitives they exercise; the tag requirement applies there
    # too.
    untagged=$(grep -n '\.lock()' "$f" | grep -v 'lock-ok:' || true)
    if [ -n "$untagged" ]; then
        echo "untagged .lock() on a lock-free hot-path file: $f" >&2
        echo "$untagged" | sed "s|^|  $f:|" >&2
        status=1
    fi
    # RwLock never appears on these paths at all (readers of a RwLock
    # still serialize against writers); no tag can excuse it.
    if grep -n 'RwLock' "$f" >&2; then
        echo "RwLock is not permitted on lock-free hot-path file: $f" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "lock-free hot-path lint OK ($(echo $HOT_PATH_FILES | wc -w) files)"
fi
exit $status
