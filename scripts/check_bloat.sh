#!/bin/sh
# Binary-size guard for the monomorphized walk engine.
#
# The generic engine instantiates its walk loop once per (backend x
# scheme x level-shape) combination; that is the point, but it means a
# careless new type parameter can multiply code size. This script
# compares the release experiment binaries against the committed
# baseline (scripts/bloat_baseline.tsv, captured when the engine
# landed) and warns when any binary has grown more than 20 %.
#
# Usage:
#   sh scripts/check_bloat.sh            # warn on >20 % growth (exit 0)
#   sh scripts/check_bloat.sh --strict   # exit 1 on >20 % growth
#   sh scripts/check_bloat.sh --update   # rewrite the baseline
#
# Binaries must already be built: cargo build --release --workspace
set -eu

cd "$(dirname "$0")/.."
baseline=scripts/bloat_baseline.tsv
bindir=target/release
threshold_pct=20
mode="${1:-warn}"

size_of() {
    # wc -c is portable (stat -c vs stat -f differs across platforms).
    wc -c <"$1" | tr -d ' '
}

bins() {
    for src in crates/bench/src/bin/*.rs; do
        basename "$src" .rs
    done
}

if [ "$mode" = "--update" ]; then
    : >"$baseline"
    for bin in $(bins); do
        if [ -f "$bindir/$bin" ]; then
            printf '%s\t%s\n' "$bin" "$(size_of "$bindir/$bin")" >>"$baseline"
        fi
    done
    echo "wrote $(wc -l <"$baseline" | tr -d ' ') baseline sizes to $baseline"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "no baseline at $baseline — run 'sh scripts/check_bloat.sh --update' after a release build" >&2
    exit 1
fi

status=0
checked=0
while IFS="$(printf '\t')" read -r bin base_size; do
    [ -n "$bin" ] || continue
    if [ ! -f "$bindir/$bin" ]; then
        echo "::warning::check_bloat: $bindir/$bin not built, skipping"
        continue
    fi
    now_size=$(size_of "$bindir/$bin")
    checked=$((checked + 1))
    # Integer arithmetic: growth over threshold iff
    # now * 100 > base * (100 + threshold).
    if [ $((now_size * 100)) -gt $((base_size * (100 + threshold_pct))) ]; then
        pct=$(((now_size - base_size) * 100 / base_size))
        echo "::warning::check_bloat: $bin grew ${pct}% ($base_size -> $now_size bytes); monomorphization bloat?"
        status=1
    fi
done <"$baseline"

echo "check_bloat: $checked binaries checked against $baseline (threshold ${threshold_pct}%)"
if [ "$mode" = "--strict" ]; then
    exit "$status"
fi
exit 0
