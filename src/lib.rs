//! # flatwalk
//!
//! A from-scratch Rust reproduction of **"Every Walk's a Hit: Making Page
//! Walks Single-Access Cache Hits"** (Park, Vougioukas, Sandberg,
//! Black-Schaffer — ASPLOS 2022).
//!
//! The paper combines two techniques to make the common-case page walk a
//! single access that hits in the on-chip caches:
//!
//! 1. **Page-table flattening (FPT):** merging two adjacent levels of the
//!    512-ary radix page table into one 2 MB node, halving walk depth.
//! 2. **Page-table cache prioritization (PTP):** biasing the L2/LLC
//!    replacement policy to retain page-table lines during phases of high
//!    TLB miss rate.
//!
//! This facade crate re-exports the whole workspace; see [`DESIGN.md`] in
//! the repository for the crate inventory and the per-figure experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! [`DESIGN.md`]: https://example.com/flatwalk
//!
//! ## Quickstart
//!
//! ```
//! use flatwalk::sim::{NativeSimulation, SimOptions, TranslationConfig};
//! use flatwalk::workloads::WorkloadSpec;
//!
//! # fn main() {
//! // Simulate a small GUPS-like workload on the paper's server system,
//! // first with a conventional 4-level page table...
//! let opts = SimOptions::small_test();
//! let base = NativeSimulation::build(
//!     WorkloadSpec::gups().scaled_mib(32),
//!     TranslationConfig::baseline(),
//!     &opts,
//! ).run();
//!
//! // ...then with a flattened (L4+L3, L2+L1) table + cache prioritization.
//! let fpt_ptp = NativeSimulation::build(
//!     WorkloadSpec::gups().scaled_mib(32),
//!     TranslationConfig::flattened_prioritized(),
//!     &opts,
//! ).run();
//!
//! // Flattening caps the walk at one access once PWCs warm up.
//! assert!(fpt_ptp.walk.accesses_per_walk() <= base.walk.accesses_per_walk());
//! # }
//! ```

#![forbid(unsafe_code)]

pub use flatwalk_baselines as baselines;
pub use flatwalk_faults as faults;
pub use flatwalk_mem as mem;
pub use flatwalk_mmu as mmu;
pub use flatwalk_os as os;
pub use flatwalk_pt as pt;
pub use flatwalk_sim as sim;
pub use flatwalk_tlb as tlb;
pub use flatwalk_types as types;
pub use flatwalk_workloads as workloads;
