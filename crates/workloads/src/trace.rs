//! Recording and replaying access traces.
//!
//! The suite's generators are synthetic stand-ins for the paper's
//! benchmarks (see `DESIGN.md`); this module closes the gap for users
//! who *do* have real traces: record any [`AccessStream`] — or convert
//! a Pin/DynamoRIO-style address dump — into the simple `FWTRACE1`
//! format, and replay it through every simulation engine.
//!
//! # Format
//!
//! Little-endian binary: 8-byte magic `FWTRACE1`, `u64` footprint in
//! bytes, `u64` access count, then `count` × `u64` footprint-relative
//! byte offsets.
//!
//! # Examples
//!
//! ```
//! use flatwalk_workloads::{trace, AccessStream, WorkloadSpec};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join("flatwalk-trace-doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("gups.fwtrace");
//!
//! // Record 1000 accesses of a workload…
//! let spec = WorkloadSpec::gups().scaled_mib(16);
//! let stream = AccessStream::new(spec, 0);
//! trace::record(stream, 1000, &path)?;
//!
//! // …and replay them as a workload.
//! let replay = trace::load(&path, "gups-trace", 4, 0.85)?;
//! assert_eq!(replay.spec().name, "gups-trace");
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use flatwalk_types::{PageSize, VirtAddr};

use crate::{AccessStream, Pattern, WorkloadSpec};

const MAGIC: &[u8; 8] = b"FWTRACE1";

/// Records `count` accesses from any virtual-address iterator into the
/// `FWTRACE1` file at `path`.
///
/// Addresses are normalized: the minimum page-aligned address becomes
/// offset 0 and the stored footprint covers the span (rounded up to
/// 2 MB so flattened layouts align).
///
/// Returns the number of accesses written.
///
/// # Errors
///
/// Propagates I/O errors; fails with [`io::ErrorKind::InvalidInput`]
/// if `count` is zero.
pub fn record<I>(stream: I, count: usize, path: &Path) -> io::Result<usize>
where
    I: IntoIterator<Item = VirtAddr>,
{
    if count == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot record an empty trace",
        ));
    }
    let vas: Vec<u64> = stream.into_iter().take(count).map(|v| v.raw()).collect();
    if vas.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "source stream produced no accesses",
        ));
    }
    let base = PageSize::Size2M.align_down(*vas.iter().min().expect("non-empty"));
    let max = *vas.iter().max().expect("non-empty");
    let footprint = PageSize::Size2M.align_up(max - base + 8);

    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(MAGIC)?;
    f.write_all(&footprint.to_le_bytes())?;
    f.write_all(&(vas.len() as u64).to_le_bytes())?;
    for va in &vas {
        f.write_all(&(va - base).to_le_bytes())?;
    }
    f.flush()?;
    Ok(vas.len())
}

/// Loads a `FWTRACE1` file as a replayable [`AccessStream`].
///
/// `name` labels reports; `work_per_access` and `data_exposure` supply
/// the timing-proxy parameters a raw address trace cannot carry
/// (instructions between memory ops and the workload's memory-level
/// parallelism).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, truncated
/// body, or out-of-range offsets.
pub fn load(
    path: &Path,
    name: &'static str,
    work_per_access: u64,
    data_exposure: f64,
) -> io::Result<AccessStream> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a FWTRACE1 file",
        ));
    }
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let footprint = u64::from_le_bytes(u64buf);
    f.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    if count == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
    }
    let mut offsets = Vec::with_capacity(count);
    for _ in 0..count {
        f.read_exact(&mut u64buf)?;
        let off = u64::from_le_bytes(u64buf);
        if off + 8 > footprint {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace offset outside the declared footprint",
            ));
        }
        offsets.push(off);
    }

    let spec = WorkloadSpec {
        name,
        footprint,
        // Placeholder — replay streams never consult the pattern.
        pattern: Pattern::Uniform,
        work_per_access,
        data_exposure,
        seed: 0,
    };
    Ok(AccessStream::replay(spec, 0, Arc::new(offsets)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("flatwalk-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_the_address_sequence() {
        let path = tmp("roundtrip.fwtrace");
        let spec = WorkloadSpec::mcf().scaled_mib(16);
        let n = 5_000;
        let recorded: Vec<u64> = AccessStream::new(spec.clone(), 0x7000_0000)
            .take(n)
            .map(|v| v.raw())
            .collect();
        record(AccessStream::new(spec, 0x7000_0000), n, &path).unwrap();

        let mut replay = load(&path, "t", 4, 0.8).unwrap();
        let base_delta = recorded.iter().min().unwrap() & !((2u64 << 20) - 1);
        for &orig in &recorded {
            assert_eq!(replay.next_va().raw(), orig - base_delta);
        }
        // The stream loops after the recorded length.
        assert_eq!(replay.next_va().raw(), recorded[0] - base_delta);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn footprint_is_2mb_aligned_and_bounds_offsets() {
        let path = tmp("bounds.fwtrace");
        record(
            AccessStream::new(WorkloadSpec::gups().scaled_mib(8), 0x1234_0000_0000),
            1_000,
            &path,
        )
        .unwrap();
        let replay = load(&path, "t", 1, 1.0).unwrap();
        assert_eq!(replay.spec().footprint % (2 << 20), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage_and_empty() {
        let path = tmp("garbage.fwtrace");
        std::fs::write(&path, b"NOTATRACE-------").unwrap();
        assert_eq!(
            load(&path, "t", 1, 1.0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let empty_src: Vec<VirtAddr> = Vec::new();
        assert_eq!(
            record(empty_src, 10, &path).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert_eq!(
            record(
                AccessStream::new(WorkloadSpec::gups().scaled_mib(8), 0),
                0,
                &path
            )
            .unwrap_err()
            .kind(),
            io::ErrorKind::InvalidInput
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_body_is_invalid_data() {
        let path = tmp("truncated.fwtrace");
        record(
            AccessStream::new(WorkloadSpec::gups().scaled_mib(8), 0),
            100,
            &path,
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(load(&path, "t", 1, 1.0).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
