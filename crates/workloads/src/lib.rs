//! Synthetic workload generators standing in for the paper's benchmark
//! suite (§7).
//!
//! Each generator reproduces the *translation-relevant* profile of one
//! benchmark — footprint, locality structure, compute density — as a
//! deterministic, seeded virtual-address stream. See
//! [`WorkloadSpec::suite`] for the full 20-benchmark set and `DESIGN.md`
//! for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pattern;
mod spec;
pub mod trace;

pub use pattern::Pattern;
pub use spec::{AccessStream, WorkloadSpec};
