//! Synthetic memory-access patterns.
//!
//! Each paper benchmark is characterized, for translation purposes, by
//! its footprint and its locality structure; these patterns are the
//! vocabulary those characterizations are written in. All randomness is
//! seeded, so streams are exactly reproducible.

use flatwalk_types::rng::SplitMix64;

/// A recipe for generating byte offsets within a footprint.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Uniformly random over the whole footprint (GUPS, random).
    Uniform,
    /// Sequential streaming with the given stride in bytes (dense
    /// matrix/array sweeps).
    Stream {
        /// Bytes between successive accesses.
        stride: u64,
    },
    /// A hot region absorbs most accesses; the rest go anywhere
    /// (degree-centrality-style vertex-property sweeps).
    Hot {
        /// Size of the hot region in bytes (placed at the footprint's
        /// start).
        hot_bytes: u64,
        /// Probability an access falls in the hot region.
        hot_prob: f64,
    },
    /// Pointer chasing with clustered locality: accesses stay inside a
    /// cluster, occasionally jumping to another (mcf, omnetpp, mummer).
    Chase {
        /// Cluster size in bytes.
        cluster_bytes: u64,
        /// Probability of switching clusters on each access.
        switch_prob: f64,
    },
    /// Zipf-distributed region popularity with uniform accesses inside
    /// a region (hashjoin/xsbench table lookups).
    Zipf {
        /// Number of equal-size regions the footprint is divided into.
        regions: usize,
        /// Zipf exponent (0 = uniform; ~0.8–1.2 typical skew).
        exponent: f64,
    },
    /// A weighted mixture of sub-patterns (weights need not sum to 1;
    /// they are normalized).
    Mix(Vec<(f64, Pattern)>),
}

/// Iterator state for one pattern over one footprint.
#[derive(Debug, Clone)]
pub struct PatternState {
    cursor: u64,
    cluster: u64,
    zipf_cdf: Vec<f64>,
    sub: Vec<PatternState>,
}

impl Pattern {
    /// Builds the mutable state needed to generate this pattern.
    #[allow(clippy::only_used_in_recursion)] // footprint is for future variants
    pub(crate) fn state(&self, footprint: u64) -> PatternState {
        match self {
            Pattern::Zipf { regions, exponent } => {
                let mut weights: Vec<f64> = (1..=*regions)
                    .map(|k| 1.0 / (k as f64).powf(*exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                PatternState {
                    cursor: 0,
                    cluster: 0,
                    zipf_cdf: weights,
                    sub: Vec::new(),
                }
            }
            Pattern::Mix(parts) => PatternState {
                cursor: 0,
                cluster: 0,
                zipf_cdf: {
                    let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                    let mut acc = 0.0;
                    parts
                        .iter()
                        .map(|(w, _)| {
                            acc += w / total;
                            acc
                        })
                        .collect()
                },
                sub: parts.iter().map(|(_, p)| p.state(footprint)).collect(),
            },
            _ => PatternState {
                cursor: 0,
                cluster: 0,
                zipf_cdf: Vec::new(),
                sub: Vec::new(),
            },
        }
    }

    /// Generates the next byte offset in `[0, footprint)`, 8-byte
    /// aligned.
    pub(crate) fn next_offset(
        &self,
        footprint: u64,
        rng: &mut SplitMix64,
        st: &mut PatternState,
    ) -> u64 {
        let offset = match self {
            Pattern::Uniform => rng.next_range(footprint),
            Pattern::Stream { stride } => {
                let o = st.cursor;
                st.cursor = (st.cursor + stride) % footprint;
                o
            }
            Pattern::Hot {
                hot_bytes,
                hot_prob,
            } => {
                let hot = (*hot_bytes).min(footprint).max(8);
                if rng.chance(*hot_prob) {
                    rng.next_range(hot)
                } else {
                    rng.next_range(footprint)
                }
            }
            Pattern::Chase {
                cluster_bytes,
                switch_prob,
            } => {
                let cluster = (*cluster_bytes).min(footprint).max(8);
                let clusters = (footprint / cluster).max(1);
                if rng.chance(*switch_prob) {
                    st.cluster = rng.next_range(clusters);
                }
                st.cluster * cluster + rng.next_range(cluster)
            }
            Pattern::Zipf { regions, .. } => {
                let u = rng.next_f64();
                let idx = st.zipf_cdf.partition_point(|&c| c < u).min(regions - 1);
                let region_bytes = (footprint / *regions as u64).max(8);
                idx as u64 * region_bytes + rng.next_range(region_bytes)
            }
            Pattern::Mix(parts) => {
                let u = rng.next_f64();
                let idx = st.zipf_cdf.partition_point(|&c| c < u).min(parts.len() - 1);
                let (_, p) = &parts[idx];
                let sub = &mut st.sub[idx];
                return p.next_offset(footprint, rng, sub) & !7;
            }
        };
        offset.min(footprint - 8) & !7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(p: &Pattern, footprint: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(1);
        let mut st = p.state(footprint);
        (0..n)
            .map(|_| p.next_offset(footprint, &mut rng, &mut st))
            .collect()
    }

    #[test]
    fn all_patterns_stay_in_bounds_and_aligned() {
        let footprint = 1 << 20;
        let patterns = [
            Pattern::Uniform,
            Pattern::Stream { stride: 64 },
            Pattern::Hot {
                hot_bytes: 4096,
                hot_prob: 0.9,
            },
            Pattern::Chase {
                cluster_bytes: 64 << 10,
                switch_prob: 0.01,
            },
            Pattern::Zipf {
                regions: 64,
                exponent: 1.0,
            },
            Pattern::Mix(vec![
                (0.5, Pattern::Uniform),
                (0.5, Pattern::Stream { stride: 8 }),
            ]),
        ];
        for p in &patterns {
            for o in offsets(p, footprint, 5000) {
                assert!(o < footprint, "{p:?} out of bounds: {o}");
                assert_eq!(o % 8, 0, "{p:?} unaligned: {o}");
            }
        }
    }

    #[test]
    fn stream_is_sequential() {
        let o = offsets(&Pattern::Stream { stride: 64 }, 1 << 20, 4);
        assert_eq!(o, vec![0, 64, 128, 192]);
    }

    #[test]
    fn hot_pattern_concentrates() {
        let p = Pattern::Hot {
            hot_bytes: 4096,
            hot_prob: 0.95,
        };
        let inside = offsets(&p, 1 << 30, 10_000)
            .iter()
            .filter(|&&o| o < 4096)
            .count();
        assert!(inside > 9_000, "hot region got {inside}/10000");
    }

    #[test]
    fn zipf_skews_to_first_regions() {
        let p = Pattern::Zipf {
            regions: 256,
            exponent: 1.1,
        };
        let footprint = 256u64 << 20;
        let region_bytes = footprint / 256;
        let first_16 = offsets(&p, footprint, 10_000)
            .iter()
            .filter(|&&o| o < 16 * region_bytes)
            .count();
        assert!(
            first_16 > 4_000,
            "zipf(1.1) should favor early regions ({first_16}/10000)"
        );
    }

    #[test]
    fn chase_stays_in_cluster_mostly() {
        let p = Pattern::Chase {
            cluster_bytes: 1 << 20,
            switch_prob: 0.0,
        };
        let os = offsets(&p, 1 << 30, 1000);
        let c0 = os[0] >> 20;
        assert!(os.iter().all(|o| o >> 20 == c0));
    }

    #[test]
    fn deterministic() {
        let p = Pattern::Mix(vec![
            (0.3, Pattern::Uniform),
            (
                0.7,
                Pattern::Zipf {
                    regions: 32,
                    exponent: 0.9,
                },
            ),
        ]);
        assert_eq!(offsets(&p, 1 << 24, 100), offsets(&p, 1 << 24, 100));
    }
}
