//! The paper's benchmark suite, as synthetic access-pattern
//! specifications.
//!
//! Paper §7 evaluates: GraphBIG (LDBC-1000k, 6.6 GB — bfs, cc, dc, dfs,
//! graph coloring, kcore, pr, sssp, tc), graph500 (scale 24, 5.4 GB),
//! GUPS (N=30, 8 GB), biobench (mummer, tiger), SPEC CPU2006 (mcf,
//! omnetpp), liblinear (url_combined and HIGGS), a hashjoin
//! microbenchmark, XSBench, and a random-access microbenchmark; plus
//! Speedometer 2.0 for the mobile case study.
//!
//! We cannot ship those programs, so each is modelled by a deterministic
//! generator with the same *translation-relevant* profile: footprint,
//! locality structure, compute density, and memory-level parallelism.
//! The generators are calibrated so the baseline system reproduces the
//! paper's reported ranges (e.g. GUPS/random ≈ 2.5 memory accesses per
//! walk against the PWC, dc nearly none).

use flatwalk_types::rng::SplitMix64;
use flatwalk_types::VirtAddr;

use crate::pattern::{Pattern, PatternState};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// A benchmark specification: footprint + locality + compute density.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Bytes of virtual memory the benchmark touches.
    pub footprint: u64,
    /// Locality structure.
    pub pattern: Pattern,
    /// Non-memory instructions executed per memory access.
    pub work_per_access: u64,
    /// Fraction of the data-access latency exposed on the critical path
    /// (pointer chases ≈ 1.0; streaming code with deep MLP ≈ 0.3).
    pub data_exposure: f64,
    /// Seed for the access stream.
    pub seed: u64,
}

impl WorkloadSpec {
    fn new(
        name: &'static str,
        footprint: u64,
        pattern: Pattern,
        work_per_access: u64,
        data_exposure: f64,
    ) -> Self {
        WorkloadSpec {
            name,
            footprint,
            pattern,
            work_per_access,
            data_exposure,
            // Note: this seed can collide for same-length names with
            // equal footprints (e.g. cc/dc/pr); their differing
            // patterns keep the streams distinct, and the seeds are
            // kept stable so every recorded experiment reproduces
            // bit-for-bit.
            seed: 0xF00D ^ name.len() as u64 ^ (footprint >> 10),
        }
    }

    // ----- the paper's benchmarks -------------------------------------

    /// GUPS (N=30, 8 GB): random read-modify-writes across the table.
    pub fn gups() -> Self {
        Self::new("gups", 8 * GIB, Pattern::Uniform, 4, 0.85)
    }

    /// The random-access microbenchmark (in-memory-DB-like).
    pub fn random_access() -> Self {
        Self::new("rand.", 8 * GIB, Pattern::Uniform, 2, 1.0)
    }

    /// graph500 (scale 24, 5.4 GB): BFS over a scale-free graph.
    pub fn graph500() -> Self {
        Self::new(
            "graph500",
            (5.4 * GIB as f64) as u64,
            Pattern::Mix(vec![
                (
                    0.55,
                    Pattern::Chase {
                        cluster_bytes: 2 * MIB,
                        switch_prob: 0.05,
                    },
                ),
                (0.45, Pattern::Uniform),
            ]),
            8,
            0.9,
        )
    }

    fn graphbig(name: &'static str, pattern: Pattern, work: u64, exposure: f64) -> Self {
        Self::new(name, (6.6 * GIB as f64) as u64, pattern, work, exposure)
    }

    /// GraphBIG breadth-first search.
    pub fn bfs() -> Self {
        Self::graphbig(
            "bfs",
            Pattern::Mix(vec![
                (
                    0.5,
                    Pattern::Chase {
                        cluster_bytes: 4 * MIB,
                        switch_prob: 0.02,
                    },
                ),
                (0.3, Pattern::Uniform),
                (0.2, Pattern::Stream { stride: 8 }),
            ]),
            10,
            0.8,
        )
    }

    /// GraphBIG connected components.
    pub fn cc() -> Self {
        Self::graphbig(
            "cc",
            Pattern::Mix(vec![
                (
                    0.45,
                    Pattern::Chase {
                        cluster_bytes: 4 * MIB,
                        switch_prob: 0.03,
                    },
                ),
                (0.35, Pattern::Uniform),
                (0.2, Pattern::Stream { stride: 8 }),
            ]),
            12,
            0.75,
        )
    }

    /// GraphBIG degree centrality — the paper's low-TLB-miss example.
    pub fn dc() -> Self {
        Self::graphbig(
            "dc",
            Pattern::Mix(vec![
                (0.78, Pattern::Stream { stride: 8 }),
                (
                    0.22,
                    Pattern::Hot {
                        hot_bytes: 4 * MIB,
                        hot_prob: 0.97,
                    },
                ),
            ]),
            14,
            0.35,
        )
    }

    /// GraphBIG depth-first search.
    pub fn dfs() -> Self {
        Self::graphbig(
            "dfs",
            Pattern::Mix(vec![
                (
                    0.6,
                    Pattern::Chase {
                        cluster_bytes: MIB,
                        switch_prob: 0.03,
                    },
                ),
                (0.4, Pattern::Uniform),
            ]),
            10,
            0.9,
        )
    }

    /// GraphBIG graph coloring.
    pub fn graph_coloring() -> Self {
        Self::graphbig(
            "gr.color.",
            Pattern::Mix(vec![
                (0.5, Pattern::Stream { stride: 8 }),
                (
                    0.5,
                    Pattern::Chase {
                        cluster_bytes: 2 * MIB,
                        switch_prob: 0.05,
                    },
                ),
            ]),
            12,
            0.6,
        )
    }

    /// GraphBIG k-core decomposition.
    pub fn kcore() -> Self {
        Self::graphbig(
            "kcore",
            Pattern::Mix(vec![
                (0.6, Pattern::Stream { stride: 8 }),
                (
                    0.4,
                    Pattern::Chase {
                        cluster_bytes: 2 * MIB,
                        switch_prob: 0.06,
                    },
                ),
            ]),
            12,
            0.6,
        )
    }

    /// GraphBIG PageRank.
    pub fn pr() -> Self {
        Self::graphbig(
            "pr",
            Pattern::Mix(vec![
                (0.4, Pattern::Stream { stride: 8 }),
                (
                    0.6,
                    Pattern::Chase {
                        cluster_bytes: 4 * MIB,
                        switch_prob: 0.08,
                    },
                ),
            ]),
            8,
            0.65,
        )
    }

    /// GraphBIG single-source shortest paths.
    pub fn sssp() -> Self {
        Self::graphbig(
            "sssp",
            Pattern::Mix(vec![
                (
                    0.5,
                    Pattern::Chase {
                        cluster_bytes: 2 * MIB,
                        switch_prob: 0.04,
                    },
                ),
                (0.5, Pattern::Uniform),
            ]),
            10,
            0.8,
        )
    }

    /// GraphBIG triangle counting.
    pub fn tc() -> Self {
        Self::graphbig(
            "tc",
            Pattern::Mix(vec![
                (0.3, Pattern::Stream { stride: 8 }),
                (
                    0.7,
                    Pattern::Zipf {
                        regions: 2048,
                        exponent: 1.1,
                    },
                ),
            ]),
            9,
            0.7,
        )
    }

    /// The hashjoin microbenchmark (after the Mitosis paper).
    pub fn hashjoin() -> Self {
        Self::new(
            "hashjoin",
            2 * GIB,
            Pattern::Mix(vec![
                (0.7, Pattern::Uniform),
                (0.3, Pattern::Stream { stride: 16 }),
            ]),
            6,
            0.7,
        )
    }

    /// liblinear on url_combined (sparse features).
    pub fn liblinear() -> Self {
        Self::new(
            "liblinear",
            4 * GIB,
            Pattern::Mix(vec![
                (0.5, Pattern::Stream { stride: 64 }),
                (
                    0.5,
                    Pattern::Zipf {
                        regions: 2048,
                        exponent: 0.6,
                    },
                ),
            ]),
            6,
            0.5,
        )
    }

    /// liblinear on HIGGS (dense features, larger footprint).
    pub fn liblinear_higgs() -> Self {
        Self::new(
            "liblinear_H",
            8 * GIB,
            Pattern::Mix(vec![
                (0.55, Pattern::Stream { stride: 32 }),
                (0.45, Pattern::Uniform),
            ]),
            5,
            0.6,
        )
    }

    /// SPEC CPU2006 mcf (network simplex; pointer-heavy).
    pub fn mcf() -> Self {
        Self::new(
            "mcf",
            (1.7 * GIB as f64) as u64,
            Pattern::Mix(vec![
                (
                    0.85,
                    Pattern::Chase {
                        cluster_bytes: 128 << 10,
                        switch_prob: 0.01,
                    },
                ),
                (0.15, Pattern::Uniform),
            ]),
            7,
            0.95,
        )
    }

    /// biobench mummer (suffix-tree matching).
    pub fn mummer() -> Self {
        Self::new(
            "mummer",
            3 * GIB,
            Pattern::Chase {
                cluster_bytes: 128 << 10,
                switch_prob: 0.03,
            },
            8,
            0.95,
        )
    }

    /// SPEC CPU2006 omnetpp (discrete-event simulation).
    pub fn omnetpp() -> Self {
        Self::new(
            "omnetpp",
            512 * MIB,
            Pattern::Mix(vec![
                (
                    0.85,
                    Pattern::Hot {
                        hot_bytes: 4 * MIB,
                        hot_prob: 0.9,
                    },
                ),
                (0.15, Pattern::Uniform),
            ]),
            12,
            0.8,
        )
    }

    /// biobench tiger (genome assembly).
    pub fn tiger() -> Self {
        Self::new(
            "tiger",
            GIB,
            Pattern::Mix(vec![
                (0.5, Pattern::Stream { stride: 8 }),
                (
                    0.5,
                    Pattern::Chase {
                        cluster_bytes: MIB,
                        switch_prob: 0.05,
                    },
                ),
            ]),
            9,
            0.7,
        )
    }

    /// XSBench (Monte Carlo neutronics macro-XS lookups).
    pub fn xsbench() -> Self {
        Self::new(
            "xsbench",
            (5.6 * GIB as f64) as u64,
            Pattern::Mix(vec![
                (
                    0.75,
                    Pattern::Zipf {
                        regions: 4096,
                        exponent: 1.05,
                    },
                ),
                (0.25, Pattern::Stream { stride: 256 }),
            ]),
            7,
            0.75,
        )
    }

    /// Speedometer-2.0-like browser mix for the mobile case study
    /// (§7.4). `iteration` 1 models the cold, JIT-churning first
    /// iteration (the paper notes it executes ~9.5 % more instructions
    /// than iteration 5); higher iterations are warmer.
    pub fn browser_mix(iteration: u32) -> Self {
        let cold = iteration <= 1;
        let mut spec = Self::new(
            if cold {
                "speedometer-iter1"
            } else {
                "speedometer-iter5"
            },
            384 * MIB,
            Pattern::Mix(vec![
                (
                    if cold { 0.5 } else { 0.62 },
                    Pattern::Hot {
                        hot_bytes: 48 * MIB,
                        hot_prob: 0.85,
                    },
                ),
                (
                    0.25,
                    Pattern::Chase {
                        cluster_bytes: 256 << 10,
                        switch_prob: 0.1,
                    },
                ),
                (if cold { 0.25 } else { 0.13 }, Pattern::Uniform),
            ]),
            if cold { 14 } else { 13 },
            0.7,
        );
        spec.seed ^= iteration as u64;
        spec
    }

    // ----- suites -------------------------------------------------------

    /// The 15 benchmarks of the figures' main panel, in paper order.
    pub fn main_suite() -> Vec<WorkloadSpec> {
        vec![
            Self::bfs(),
            Self::cc(),
            Self::dc(),
            Self::dfs(),
            Self::graph_coloring(),
            Self::hashjoin(),
            Self::kcore(),
            Self::liblinear(),
            Self::mcf(),
            Self::mummer(),
            Self::omnetpp(),
            Self::pr(),
            Self::sssp(),
            Self::tc(),
            Self::xsbench(),
        ]
    }

    /// The high-TLB-miss panel (plotted on its own scale in the paper).
    pub fn high_miss_suite() -> Vec<WorkloadSpec> {
        vec![
            Self::graph500(),
            Self::gups(),
            Self::liblinear_higgs(),
            Self::random_access(),
            Self::tiger(),
        ]
    }

    /// The full 20-benchmark suite.
    pub fn suite() -> Vec<WorkloadSpec> {
        let mut v = Self::main_suite();
        v.extend(Self::high_miss_suite());
        v
    }

    /// Looks a benchmark up by its figure label.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::suite().into_iter().find(|w| w.name == name)
    }

    // ----- scaling ------------------------------------------------------

    /// Scales the footprint by `1/divisor` (hot regions scale with it),
    /// keeping locality granules fixed. Used to keep tests and quick
    /// runs fast; paper-scale experiments use the specs as-is.
    pub fn scaled_down(mut self, divisor: u64) -> Self {
        assert!(divisor >= 1);
        self.footprint = (self.footprint / divisor).max(4 * MIB);
        self.pattern = scale_pattern(self.pattern, divisor);
        self
    }

    /// Convenience: replaces the footprint with `mib` mebibytes.
    pub fn scaled_mib(self, mib: u64) -> Self {
        let div = (self.footprint / (mib * MIB)).max(1);
        self.scaled_down(div)
    }
}

fn scale_pattern(p: Pattern, divisor: u64) -> Pattern {
    match p {
        Pattern::Hot {
            hot_bytes,
            hot_prob,
        } => Pattern::Hot {
            hot_bytes: (hot_bytes / divisor).max(64 << 10),
            hot_prob,
        },
        Pattern::Mix(parts) => Pattern::Mix(
            parts
                .into_iter()
                .map(|(w, p)| (w, scale_pattern(p, divisor)))
                .collect(),
        ),
        other => other,
    }
}

/// A running, seeded instance of a workload: an infinite virtual-address
/// stream.
///
/// # Examples
///
/// ```
/// use flatwalk_workloads::{AccessStream, WorkloadSpec};
///
/// let spec = WorkloadSpec::gups().scaled_mib(64);
/// let mut stream = AccessStream::new(spec, 0x1000_0000_0000);
/// let va = stream.next_va();
/// assert!(va.raw() >= 0x1000_0000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct AccessStream {
    spec: WorkloadSpec,
    base_va: u64,
    source: Source,
}

#[derive(Debug, Clone)]
enum Source {
    /// Generated from the spec's pattern.
    Synthetic {
        rng: SplitMix64,
        state: PatternState,
    },
    /// Replayed from a recorded trace of footprint-relative offsets
    /// (looping at the end).
    Replay {
        offsets: std::sync::Arc<Vec<u64>>,
        index: usize,
    },
}

impl AccessStream {
    /// Creates the stream; addresses are offsets into
    /// `[base_va, base_va + footprint)`.
    pub fn new(spec: WorkloadSpec, base_va: u64) -> Self {
        let rng = SplitMix64::new(spec.seed);
        let state = spec.pattern.state(spec.footprint);
        AccessStream {
            spec,
            base_va,
            source: Source::Synthetic { rng, state },
        }
    }

    /// Creates a stream that replays recorded footprint-relative
    /// offsets in order, looping when exhausted (see
    /// [`crate::trace`] for recording and file I/O). `spec.pattern`
    /// is ignored; `spec.footprint` must bound every offset.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or any offset falls outside the
    /// spec's footprint.
    pub fn replay(spec: WorkloadSpec, base_va: u64, offsets: std::sync::Arc<Vec<u64>>) -> Self {
        assert!(!offsets.is_empty(), "a trace needs at least one access");
        assert!(
            offsets.iter().all(|&o| o + 8 <= spec.footprint),
            "trace offset outside the declared footprint"
        );
        AccessStream {
            spec,
            base_va,
            source: Source::Replay { offsets, index: 0 },
        }
    }

    /// The workload's specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Moves the stream's window to a different base virtual address
    /// (simulation engines place the address space, then rebase the
    /// stream onto it).
    pub fn rebase(&mut self, base_va: u64) {
        self.base_va = base_va;
    }

    /// Produces the next virtual address.
    pub fn next_va(&mut self) -> VirtAddr {
        let off = match &mut self.source {
            Source::Synthetic { rng, state } => {
                self.spec
                    .pattern
                    .next_offset(self.spec.footprint, rng, state)
            }
            Source::Replay { offsets, index } => {
                let off = offsets[*index];
                *index = (*index + 1) % offsets.len();
                off
            }
        };
        VirtAddr::new(self.base_va + off)
    }

    /// Replaces `out` with the next `n` virtual addresses — exactly the
    /// sequence `n` calls of [`AccessStream::next_va`] would produce,
    /// but with the source dispatch hoisted out of the loop. On the
    /// replay path (what the engines run after setup caching) this
    /// degenerates to a tight offset-slice scan: no per-access enum
    /// match, no `%`. The batched simulation engines' stream kernel.
    pub fn fill_vas(&mut self, out: &mut Vec<VirtAddr>, n: usize) {
        out.clear();
        out.reserve(n);
        let base = self.base_va;
        match &mut self.source {
            Source::Synthetic { rng, state } => {
                for _ in 0..n {
                    let off = self
                        .spec
                        .pattern
                        .next_offset(self.spec.footprint, rng, state);
                    out.push(VirtAddr::new(base + off));
                }
            }
            Source::Replay { offsets, index } => {
                let len = offsets.len();
                let mut i = *index;
                for _ in 0..n {
                    out.push(VirtAddr::new(base + offsets[i]));
                    i += 1;
                    if i == len {
                        i = 0;
                    }
                }
                *index = i;
            }
        }
    }
}

impl Iterator for AccessStream {
    type Item = VirtAddr;

    /// Infinite stream of accesses (`next` never returns `None`).
    fn next(&mut self) -> Option<VirtAddr> {
        Some(self.next_va())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_unique_benchmarks() {
        let suite = WorkloadSpec::suite();
        assert_eq!(suite.len(), 20);
        let mut names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate benchmark names");
    }

    #[test]
    fn footprints_match_paper_scale() {
        assert_eq!(WorkloadSpec::gups().footprint, 8 << 30);
        let g5 = WorkloadSpec::graph500().footprint;
        assert!((5 << 30..6 << 30).contains(&g5));
        assert!(WorkloadSpec::bfs().footprint > 6 << 30);
    }

    #[test]
    fn by_name_round_trips() {
        for w in WorkloadSpec::suite() {
            assert_eq!(WorkloadSpec::by_name(w.name).unwrap().name, w.name);
        }
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn scaling_shrinks_footprint_and_hot_regions() {
        let s = WorkloadSpec::dc().scaled_down(16);
        assert_eq!(s.footprint, WorkloadSpec::dc().footprint / 16);
        // dc's hot region must have shrunk with it.
        match &s.pattern {
            Pattern::Mix(parts) => {
                let hot = parts.iter().find_map(|(_, p)| match p {
                    Pattern::Hot { hot_bytes, .. } => Some(*hot_bytes),
                    _ => None,
                });
                assert_eq!(hot, Some((4 * MIB) / 16));
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn scaled_mib_hits_target() {
        let s = WorkloadSpec::gups().scaled_mib(64);
        assert_eq!(s.footprint, 64 * MIB);
    }

    #[test]
    fn stream_stays_in_window_and_is_deterministic() {
        let spec = WorkloadSpec::mcf().scaled_mib(32);
        let base = 0x2000_0000_0000;
        let mut a = AccessStream::new(spec.clone(), base);
        let mut b = AccessStream::new(spec.clone(), base);
        for _ in 0..10_000 {
            let va = a.next_va();
            assert_eq!(va, b.next_va());
            assert!(va.raw() >= base);
            assert!(va.raw() < base + spec.footprint);
        }
    }

    #[test]
    fn gups_touches_many_distinct_pages() {
        let mut s = AccessStream::new(WorkloadSpec::gups().scaled_mib(256), 0);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..10_000 {
            pages.insert(s.next_va().raw() >> 12);
        }
        assert!(pages.len() > 8_000, "gups must be translation-hostile");
    }

    #[test]
    fn dc_touches_few_distinct_pages() {
        let mut s = AccessStream::new(WorkloadSpec::dc().scaled_mib(256), 0);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..10_000 {
            pages.insert(s.next_va().raw() >> 12);
        }
        assert!(
            pages.len() < 4_000,
            "dc must be translation-friendly (got {})",
            pages.len()
        );
    }

    #[test]
    fn browser_iterations_differ() {
        let i1 = WorkloadSpec::browser_mix(1);
        let i5 = WorkloadSpec::browser_mix(5);
        assert_ne!(i1.name, i5.name);
        assert_ne!(i1.pattern, i5.pattern);
    }
}
