//! A buddy allocator over simulated physical memory.
//!
//! The kernel's ability (or failure) to hand out naturally aligned 2 MB
//! blocks is the crux of the paper's practicality argument (§3.2, §6.2):
//! flattened page-table nodes need 2 MB pages, fragmented systems
//! sometimes cannot provide them, and the design must fall back
//! gracefully. This allocator reproduces that behaviour: power-of-two
//! blocks, buddy splitting/merging, and deliberate fragmentation
//! injection for experiments.

use std::collections::{BTreeSet, HashMap};

use flatwalk_pt::PhysAllocator;
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{PageSize, PhysAddr};

/// Order of a 4 KB block.
pub const ORDER_4K: u32 = 0;
/// Order of a 2 MB block.
pub const ORDER_2M: u32 = 9;
/// Order of a 1 GB block.
pub const ORDER_1G: u32 = 18;

fn order_of(size: PageSize) -> u32 {
    match size {
        PageSize::Size4K => ORDER_4K,
        PageSize::Size2M => ORDER_2M,
        PageSize::Size1G => ORDER_1G,
    }
}

/// Allocation statistics, per request size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuddyStats {
    /// 4 KB requests (attempts, failures).
    pub small: (u64, u64),
    /// 2 MB requests (attempts, failures).
    pub huge: (u64, u64),
    /// 1 GB requests (attempts, failures).
    pub giant: (u64, u64),
}

impl BuddyStats {
    /// Failure rate of 2 MB requests (0.0 when none were made).
    pub fn huge_failure_rate(&self) -> f64 {
        if self.huge.0 == 0 {
            0.0
        } else {
            self.huge.1 as f64 / self.huge.0 as f64
        }
    }
}

/// A power-of-two buddy allocator.
///
/// # Examples
///
/// ```
/// use flatwalk_os::BuddyAllocator;
/// use flatwalk_pt::PhysAllocator;
/// use flatwalk_types::PageSize;
///
/// // 16 MB of physical memory starting at zero.
/// let mut buddy = BuddyAllocator::new(0, 16 << 20);
/// let block = buddy.alloc(PageSize::Size2M).unwrap();
/// assert_eq!(block.raw() % (2 << 20), 0, "naturally aligned");
/// buddy.free(block);
/// assert_eq!(buddy.free_bytes(), 16 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    total: u64,
    /// Free blocks per order (absolute addresses); `BTreeSet` keeps the
    /// choice of block deterministic (lowest address first).
    free: Vec<BTreeSet<u64>>,
    /// Outstanding allocations: address → order.
    live: HashMap<u64, u32>,
    free_bytes: u64,
    stats: BuddyStats,
}

impl BuddyAllocator {
    /// Creates an allocator over `[base, base + total)`.
    ///
    /// # Panics
    ///
    /// Panics unless `total` is a power-of-two multiple of 4 KB of at
    /// least one page and `base` is aligned to `total`'s largest block.
    pub fn new(base: u64, total: u64) -> Self {
        assert!(
            total >= 4096 && total.is_power_of_two(),
            "total must be a power of two ≥ 4 KB"
        );
        assert_eq!(base % total, 0, "base must be aligned to the region size");
        let max_order = (total / 4096).trailing_zeros();
        let mut free = vec![BTreeSet::new(); max_order as usize + 1];
        free[max_order as usize].insert(base);
        BuddyAllocator {
            base,
            total,
            free,
            live: HashMap::new(),
            free_bytes: total,
            stats: BuddyStats::default(),
        }
    }

    /// Bytes currently free (not necessarily contiguous).
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Total managed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The largest order with a free block, if any.
    pub fn largest_free_order(&self) -> Option<u32> {
        (0..self.free.len() as u32)
            .rev()
            .find(|&o| !self.free[o as usize].is_empty())
    }

    /// Request statistics.
    pub fn stats(&self) -> BuddyStats {
        self.stats
    }

    fn alloc_order(&mut self, order: u32) -> Option<u64> {
        if order as usize >= self.free.len() {
            return None;
        }
        let from = (order..self.free.len() as u32).find(|&o| !self.free[o as usize].is_empty())?;
        let addr = *self.free[from as usize].iter().next().expect("non-empty");
        self.free[from as usize].remove(&addr);
        // Split down to the requested order, returning upper halves.
        let mut o = from;
        while o > order {
            o -= 1;
            let half = 4096u64 << o;
            self.free[o as usize].insert(addr + half);
        }
        self.live.insert(addr, order);
        self.free_bytes -= 4096u64 << order;
        Some(addr)
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`],
    /// merging buddies as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation.
    pub fn free(&mut self, addr: PhysAddr) {
        let mut addr = addr.raw();
        let mut order = self
            .live
            .remove(&addr)
            .unwrap_or_else(|| panic!("free of unallocated block {addr:#x}"));
        self.free_bytes += 4096u64 << order;
        let max_order = self.free.len() as u32 - 1;
        while order < max_order {
            let size = 4096u64 << order;
            let buddy = self.base + ((addr - self.base) ^ size);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            addr = addr.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(addr);
    }

    /// Fragments the free space: transiently allocates every free 4 KB
    /// frame, then frees all but a pseudo-random `hold_fraction` of
    /// them. The surviving scattered singletons destroy 2 MB contiguity.
    ///
    /// Returns the held frames so the caller can release them later.
    pub fn fragment(&mut self, rng: &mut SplitMix64, hold_fraction: f64) -> Vec<PhysAddr> {
        let mut taken = Vec::new();
        while let Some(addr) = self.alloc_order(ORDER_4K) {
            taken.push(addr);
        }
        let mut held = Vec::new();
        for addr in taken {
            if rng.chance(hold_fraction) {
                held.push(PhysAddr::new(addr));
            } else {
                self.free(PhysAddr::new(addr));
            }
        }
        held
    }

    /// Bounded variant of [`BuddyAllocator::fragment`] for fault
    /// campaigns on large pools: stops pinning once `max_bytes` of 4 KB
    /// frames have been touched, so fragmenting an 8 GB pool does not
    /// require walking all two million frames. The touched prefix is
    /// shredded exactly like [`BuddyAllocator::fragment`] would shred
    /// the whole pool; the rest of the pool keeps its contiguity.
    ///
    /// Returns the held frames so the caller can release them later.
    pub fn fragment_region(
        &mut self,
        rng: &mut SplitMix64,
        hold_fraction: f64,
        max_bytes: u64,
    ) -> Vec<PhysAddr> {
        let budget = (max_bytes / 4096).max(1);
        let mut taken = Vec::new();
        while (taken.len() as u64) < budget {
            let Some(addr) = self.alloc_order(ORDER_4K) else {
                break;
            };
            taken.push(addr);
        }
        let mut held = Vec::new();
        for addr in taken {
            if rng.chance(hold_fraction) {
                held.push(PhysAddr::new(addr));
            } else {
                self.free(PhysAddr::new(addr));
            }
        }
        held
    }
}

impl PhysAllocator for BuddyAllocator {
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
        let result = self.alloc_order(order_of(size));
        let slot = match size {
            PageSize::Size4K => &mut self.stats.small,
            PageSize::Size2M => &mut self.stats.huge,
            PageSize::Size1G => &mut self.stats.giant,
        };
        slot.0 += 1;
        if result.is_none() {
            slot.1 += 1;
        }
        result.map(PhysAddr::new)
    }

    fn release(&mut self, addr: PhysAddr, _size: PageSize) {
        self.free(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_merge_roundtrip() {
        let mut b = BuddyAllocator::new(0, 4 << 20);
        let a1 = b.alloc(PageSize::Size4K).unwrap();
        let a2 = b.alloc(PageSize::Size4K).unwrap();
        assert_ne!(a1, a2);
        assert_eq!(b.free_bytes(), (4 << 20) - 2 * 4096);
        b.free(a1);
        b.free(a2);
        assert_eq!(b.free_bytes(), 4 << 20);
        assert_eq!(b.largest_free_order(), Some(10), "fully merged back");
    }

    #[test]
    fn alignment_is_natural() {
        let mut b = BuddyAllocator::new(0, 64 << 20);
        b.alloc(PageSize::Size4K).unwrap();
        let big = b.alloc(PageSize::Size2M).unwrap();
        assert_eq!(big.raw() % (2 << 20), 0);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut b = BuddyAllocator::new(0, 2 << 20);
        assert!(b.alloc(PageSize::Size1G).is_none());
        assert!(b.alloc(PageSize::Size2M).is_some());
        assert!(b.alloc(PageSize::Size4K).is_none());
        assert_eq!(b.stats().giant, (1, 1));
        assert_eq!(b.stats().huge, (1, 0));
        assert_eq!(b.stats().small, (1, 1));
    }

    #[test]
    fn fragmentation_defeats_huge_allocations() {
        let mut b = BuddyAllocator::new(0, 32 << 20);
        let mut rng = SplitMix64::new(42);
        // Hold 5% of frames scattered across memory.
        let held = b.fragment(&mut rng, 0.05);
        assert!(!held.is_empty());
        assert!(
            b.alloc(PageSize::Size2M).is_none(),
            "scattered holds should break every 2 MB block"
        );
        assert!(b.alloc(PageSize::Size4K).is_some(), "4 KB still fine");
        assert!(b.stats().huge_failure_rate() > 0.99);
        // Releasing the holds restores contiguity.
        for h in held {
            b.free(h);
        }
        assert!(b.alloc(PageSize::Size2M).is_some());
    }

    #[test]
    fn buddies_merge_across_orders() {
        let mut b = BuddyAllocator::new(0, 16 << 20);
        let blocks: Vec<_> = (0..8).map(|_| b.alloc(PageSize::Size2M).unwrap()).collect();
        assert_eq!(b.free_bytes(), 0);
        for blk in blocks {
            b.free(blk);
        }
        assert_eq!(b.largest_free_order(), Some(12));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_detected() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let a = b.alloc(PageSize::Size4K).unwrap();
        b.free(a);
        b.free(a);
    }

    #[test]
    fn nonzero_base_respected() {
        let mut b = BuddyAllocator::new(1 << 30, 1 << 30);
        let a = b.alloc(PageSize::Size2M).unwrap();
        assert!(a.raw() >= 1 << 30);
        b.free(a);
        assert_eq!(b.free_bytes(), 1 << 30);
    }
}
