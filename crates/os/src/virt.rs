//! Construction of virtualized (guest + host) address spaces (paper §4).

use flatwalk_pt::{
    FrameStore, Layout, MapError, Mapper, NfRegions, NodeCensus, PageTable, PhysAllocator,
};
use flatwalk_types::{PageSize, PhysAddr, VirtAddr};

use crate::{AddressSpace, AddressSpaceSpec, BuddyAllocator, FragmentationScenario};

/// Specification of a virtualized address space.
#[derive(Debug, Clone)]
pub struct VirtSpec {
    /// The guest's own address space (layout = guest-table organization;
    /// its scenario controls *guest* data page sizes).
    pub guest: AddressSpaceSpec,
    /// Guest physical memory size (power of two). Guest data and guest
    /// page-table frames are allocated inside it.
    pub guest_mem_bytes: u64,
    /// Host page-table organization (flattened for "HF" configurations).
    pub host_layout: Layout,
    /// Fraction of guest-physical memory the hypervisor backs with 2 MB
    /// host pages (hypervisors prefer large mappings, §4.1 ➋).
    pub host_scenario: FragmentationScenario,
}

impl VirtSpec {
    /// A spec with a guest memory size derived from the footprint
    /// (next power of two with ≥ 25 % headroom for guest page tables).
    pub fn new(guest: AddressSpaceSpec, host_layout: Layout) -> Self {
        let needed = guest.footprint + guest.footprint / 4 + (64 << 20);
        VirtSpec {
            guest,
            guest_mem_bytes: needed.next_power_of_two(),
            host_layout,
            host_scenario: FragmentationScenario::HALF,
        }
    }

    /// Sets the host large-page mix.
    pub fn with_host_scenario(mut self, scenario: FragmentationScenario) -> Self {
        self.host_scenario = scenario;
        self
    }
}

/// A built virtualized space: guest table (gVA→gPA, stored in guest
/// "physical" memory) and host table (gPA→hPA, stored in system
/// memory).
#[derive(Debug)]
pub struct VirtualizedSpace {
    guest: AddressSpace,
    host_store: FrameStore,
    host_table: PageTable,
    host_layout: Layout,
    host_census: NodeCensus,
    host_huge_pages: u64,
}

impl VirtualizedSpace {
    /// Builds the guest space inside its own guest-physical buddy
    /// allocator, then maps all of guest-physical memory through a host
    /// table whose nodes and data frames come from `host_alloc`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if either table cannot be built.
    pub fn build(
        spec: VirtSpec,
        host_alloc: &mut dyn PhysAllocator,
    ) -> Result<VirtualizedSpace, MapError> {
        // 1. Guest: data + guest PT inside guest-physical memory.
        let mut guest_phys = BuddyAllocator::new(0, spec.guest_mem_bytes);
        let guest = AddressSpace::build(spec.guest.clone(), &mut guest_phys)?;

        // 2. Host: back every guest-physical page. The lower
        //    `host_scenario` fraction uses 2 MB host pages. The
        //    hypervisor applies the same §3.4 no-flatten heuristic as
        //    the guest OS: 1 GB guest-physical regions that will hold
        //    2 MB host mappings keep conventional L2/L1 so those
        //    mappings terminate at real L2 entries instead of being
        //    replicated.
        let mut host_store = FrameStore::new();
        let huge_bytes = PageSize::Size2M.align_down(
            (spec.guest_mem_bytes as f64 * spec.host_scenario.large_page_fraction) as u64,
        );
        let mut host_nf = NfRegions::new();
        let mut region = 0u64;
        while region << 30 < huge_bytes {
            host_nf.mark(VirtAddr::new(region << 30));
            region += 1;
        }
        if huge_bytes > 0 && huge_bytes.min(1 << 30) / (2 << 20) >= 32 {
            // (the loop above already marked every region containing
            // 2 MB mappings; the threshold check matters only for tiny
            // guests, where it always passes at ≥ 64 MB of large pages)
        }
        let mut host_mapper = Mapper::new(
            &mut host_store,
            host_alloc,
            spec.host_layout.clone(),
            &host_nf,
        )?;
        let mut host_huge_pages = 0u64;
        let mut off = 0u64;
        while off < spec.guest_mem_bytes {
            let gpa_as_va = VirtAddr::new(off);
            if off < huge_bytes {
                let hpa = host_alloc
                    .alloc(PageSize::Size2M)
                    .ok_or(MapError::AllocFailed)?;
                host_mapper.map(
                    &mut host_store,
                    host_alloc,
                    &host_nf,
                    gpa_as_va,
                    hpa,
                    PageSize::Size2M,
                )?;
                host_huge_pages += 1;
                off += PageSize::Size2M.bytes();
            } else {
                let hpa = host_alloc
                    .alloc(PageSize::Size4K)
                    .ok_or(MapError::AllocFailed)?;
                host_mapper.map(
                    &mut host_store,
                    host_alloc,
                    &host_nf,
                    gpa_as_va,
                    hpa,
                    PageSize::Size4K,
                )?;
                off += PageSize::Size4K.bytes();
            }
        }

        let host_census = *host_mapper.census();
        let host_table = *host_mapper.table();
        Ok(VirtualizedSpace {
            guest,
            host_store,
            host_table,
            host_layout: spec.host_layout,
            host_census,
            host_huge_pages,
        })
    }

    /// The guest address space (guest store is addressed by gPA).
    pub fn guest(&self) -> &AddressSpace {
        &self.guest
    }

    /// Host page-table contents (addressed by hPA / system PA).
    pub fn host_store(&self) -> &FrameStore {
        &self.host_store
    }

    /// The host table (gPA→hPA).
    pub fn host_table(&self) -> &PageTable {
        &self.host_table
    }

    /// The host table's target organization.
    pub fn host_layout(&self) -> &Layout {
        &self.host_layout
    }

    /// Host table node census.
    pub fn host_census(&self) -> &NodeCensus {
        &self.host_census
    }

    /// How many 2 MB host pages back guest-physical memory.
    pub fn host_huge_pages(&self) -> u64 {
        self.host_huge_pages
    }

    /// Translates a gPA through the host table (untimed reference).
    ///
    /// # Errors
    ///
    /// Returns the walk error if the gPA is not backed.
    pub fn host_translate(&self, gpa: PhysAddr) -> Result<PhysAddr, flatwalk_pt::WalkError> {
        flatwalk_pt::resolve(&self.host_store, &self.host_table, gpa.as_nested_input())
            .map(|w| w.pa)
    }

    /// Freezes both dimensions into an immutable, shareable snapshot
    /// (see [`crate::FrozenSpace`]); guest and host stores are compacted
    /// for long-term retention.
    pub fn freeze(mut self) -> FrozenVirtSpace {
        self.host_store.shrink_to_fit();
        FrozenVirtSpace {
            guest: self.guest.freeze(),
            host_store: self.host_store,
            host_table: self.host_table,
            host_layout: self.host_layout,
            host_census: self.host_census,
            host_huge_pages: self.host_huge_pages,
        }
    }
}

/// An immutable snapshot of a built [`VirtualizedSpace`]: the frozen
/// guest space plus the host (stage-2) table. Plain data, `Send + Sync`,
/// shareable behind an `Arc` across concurrent virtualized simulations.
#[derive(Debug)]
pub struct FrozenVirtSpace {
    guest: crate::FrozenSpace,
    host_store: FrameStore,
    host_table: PageTable,
    host_layout: Layout,
    host_census: NodeCensus,
    host_huge_pages: u64,
}

impl FrozenVirtSpace {
    /// The frozen guest address space (guest store is addressed by gPA).
    pub fn guest(&self) -> &crate::FrozenSpace {
        &self.guest
    }

    /// Host page-table contents (addressed by hPA / system PA).
    pub fn host_store(&self) -> &FrameStore {
        &self.host_store
    }

    /// The host table (gPA→hPA).
    pub fn host_table(&self) -> &PageTable {
        &self.host_table
    }

    /// The host table's target organization.
    pub fn host_layout(&self) -> &Layout {
        &self.host_layout
    }

    /// Host table node census.
    pub fn host_census(&self) -> &NodeCensus {
        &self.host_census
    }

    /// How many 2 MB host pages back guest-physical memory.
    pub fn host_huge_pages(&self) -> u64 {
        self.host_huge_pages
    }

    /// Translates a gPA through the host table (untimed reference).
    ///
    /// # Errors
    ///
    /// Returns the walk error if the gPA is not backed.
    pub fn host_translate(&self, gpa: PhysAddr) -> Result<PhysAddr, flatwalk_pt::WalkError> {
        flatwalk_pt::resolve(&self.host_store, &self.host_table, gpa.as_nested_input())
            .map(|w| w.pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_pt::resolve;

    fn spec(guest_layout: Layout, host_layout: Layout) -> VirtSpec {
        let guest = AddressSpaceSpec::new(guest_layout, 16 << 20)
            .with_scenario(FragmentationScenario::NONE)
            .with_base_va(0x4000_0000);
        VirtSpec::new(guest, host_layout).with_host_scenario(FragmentationScenario::HALF)
    }

    #[test]
    fn guest_walk_then_host_walk_reaches_system_memory() {
        let mut host_alloc = BuddyAllocator::new(0x1_0000_0000, 0x1_0000_0000);
        let v = VirtualizedSpace::build(
            spec(Layout::conventional4(), Layout::conventional4()),
            &mut host_alloc,
        )
        .unwrap();

        // Guest walk: gVA → gPA.
        let gva = VirtAddr::new(0x4000_0000 + 0x5000);
        let gwalk = resolve(v.guest().store(), v.guest().table(), gva).unwrap();
        // Host walk: gPA → hPA, landing in host_alloc's range.
        let hpa = v.host_translate(PhysAddr::new(gwalk.pa.raw())).unwrap();
        assert!(hpa.raw() >= 0x1_0000_0000);
    }

    #[test]
    fn guest_page_table_frames_are_host_backed() {
        let mut host_alloc = BuddyAllocator::new(0x1_0000_0000, 0x1_0000_0000);
        let v = VirtualizedSpace::build(
            spec(Layout::flat_l4l3_l2l1(), Layout::flat_l4l3_l2l1()),
            &mut host_alloc,
        )
        .unwrap();
        // The guest root node itself must translate through the host.
        let groot = v.guest().table().root;
        let hpa = v.host_translate(PhysAddr::new(groot.raw())).unwrap();
        assert!(hpa.raw() >= 0x1_0000_0000);
        assert!(v.host_huge_pages() > 0);
    }

    #[test]
    fn freeze_preserves_both_walk_dimensions() {
        let mut host_alloc = BuddyAllocator::new(0x1_0000_0000, 0x1_0000_0000);
        let v = VirtualizedSpace::build(
            spec(Layout::conventional4(), Layout::flat_l4l3_l2l1()),
            &mut host_alloc,
        )
        .unwrap();
        let gva = VirtAddr::new(0x4000_0000 + 0x5000);
        let gwalk = resolve(v.guest().store(), v.guest().table(), gva).unwrap();
        let hpa = v.host_translate(PhysAddr::new(gwalk.pa.raw())).unwrap();
        let huge = v.host_huge_pages();
        let census_nodes = v.host_census().nodes();

        let f = v.freeze();
        let gwalk2 = resolve(f.guest().store(), f.guest().table(), gva).unwrap();
        assert_eq!(gwalk2.pa, gwalk.pa);
        assert_eq!(
            f.host_translate(PhysAddr::new(gwalk2.pa.raw())).unwrap(),
            hpa
        );
        assert_eq!(f.host_huge_pages(), huge);
        assert_eq!(f.host_census().nodes(), census_nodes);

        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenVirtSpace>();
    }

    #[test]
    fn host_scenario_controls_host_page_mix() {
        let mut host_alloc = BuddyAllocator::new(0x1_0000_0000, 0x1_0000_0000);
        let s = spec(Layout::conventional4(), Layout::conventional4())
            .with_host_scenario(FragmentationScenario::NONE);
        let v = VirtualizedSpace::build(s, &mut host_alloc).unwrap();
        assert_eq!(v.host_huge_pages(), 0);
        let gva = VirtAddr::new(0x4000_0000);
        let gwalk = resolve(v.guest().store(), v.guest().table(), gva).unwrap();
        let w = resolve(
            v.host_store(),
            v.host_table(),
            PhysAddr::new(gwalk.pa.raw()).as_nested_input(),
        )
        .unwrap();
        assert_eq!(w.size, PageSize::Size4K);
    }
}
