//! Construction of process address spaces under the paper's
//! fragmentation scenarios.
//!
//! The evaluation (§7) maps each benchmark's footprint under three
//! large-page scenarios — 0 % (all 4 KB), 50 % ("realistic": the lower
//! half of the address space in 2 MB pages), and 100 % — and applies the
//! §3.4 no-flatten heuristic: a 1 GB virtual region with ≥ 32 2 MB
//! mappings keeps its `L2`/`L1` levels conventional.

use flatwalk_pt::{
    FrameStore, Layout, MapError, Mapper, NfRegions, NodeCensus, PageTable, PhysAllocator,
};
use flatwalk_types::{PageSize, PhysAddr, VirtAddr};

/// How a footprint is carved into page sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentationScenario {
    /// Fraction of the footprint (from the bottom of the range) backed
    /// by 2 MB pages; the remainder uses 4 KB pages.
    pub large_page_fraction: f64,
}

impl FragmentationScenario {
    /// All 4 KB pages — the page-walk worst case.
    pub const NONE: FragmentationScenario = FragmentationScenario {
        large_page_fraction: 0.0,
    };
    /// Half the footprint in 2 MB pages — the paper's "realistic"
    /// scenario (lower half of the address space, after [42, 54]).
    pub const HALF: FragmentationScenario = FragmentationScenario {
        large_page_fraction: 0.5,
    };
    /// Everything in 2 MB pages — the best case, "unrealistic".
    pub const FULL: FragmentationScenario = FragmentationScenario {
        large_page_fraction: 1.0,
    };

    /// The three paper scenarios in presentation order.
    pub const ALL: [FragmentationScenario; 3] = [Self::NONE, Self::HALF, Self::FULL];

    /// Short label ("0% LP", "50% LP", "100% LP").
    pub fn label(&self) -> String {
        format!("{:.0}% LP", self.large_page_fraction * 100.0)
    }
}

/// Specification of an address space to build.
#[derive(Debug, Clone)]
pub struct AddressSpaceSpec {
    /// Target page-table organization.
    pub layout: Layout,
    /// Lowest mapped virtual address (2 MB aligned).
    pub base_va: u64,
    /// Bytes of memory to map (rounded up to 2 MB).
    pub footprint: u64,
    /// Page-size mix.
    pub scenario: FragmentationScenario,
    /// §3.4 heuristic: mark a 1 GB region no-flatten when it holds at
    /// least this many 2 MB mappings (`None` disables NF regions — the
    /// plain "FPT" configuration of Fig. 4).
    pub nf_threshold: Option<u32>,
}

impl AddressSpaceSpec {
    /// A spec with the paper's defaults (NF heuristic enabled at 32).
    pub fn new(layout: Layout, footprint: u64) -> Self {
        AddressSpaceSpec {
            layout,
            base_va: 0x1000_0000_0000,
            footprint,
            scenario: FragmentationScenario::NONE,
            nf_threshold: Some(32),
        }
    }

    /// Sets the fragmentation scenario.
    pub fn with_scenario(mut self, scenario: FragmentationScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets (or disables) the no-flatten threshold.
    pub fn with_nf_threshold(mut self, threshold: Option<u32>) -> Self {
        self.nf_threshold = threshold;
        self
    }

    /// Sets the base virtual address.
    pub fn with_base_va(mut self, base_va: u64) -> Self {
        self.base_va = base_va;
        self
    }
}

/// Outcome counters of an address-space build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// 2 MB data pages successfully allocated.
    pub huge_data_pages: u64,
    /// 2 MB data-page requests that fell back to 512 × 4 KB (THP
    /// fallback under physical fragmentation).
    pub huge_data_fallbacks: u64,
    /// 4 KB data pages allocated.
    pub small_data_pages: u64,
}

/// A fully built process address space: the page table, its backing
/// store, and the policies used.
#[derive(Debug)]
pub struct AddressSpace {
    spec: AddressSpaceSpec,
    store: FrameStore,
    mapper: Mapper,
    nf: NfRegions,
    build_stats: BuildStats,
}

impl AddressSpace {
    /// Builds the address space, allocating data pages and table nodes
    /// from `alloc`.
    ///
    /// The lower `large_page_fraction` of the footprint is mapped with
    /// 2 MB pages (falling back to 4 KB pages when the allocator cannot
    /// produce a 2 MB block), the rest with 4 KB pages. When the NF
    /// threshold is set, 1 GB regions holding at least that many 2 MB
    /// mappings are excluded from `L2`/`L1` flattening *before* mapping
    /// begins, mirroring an OS that tracks promotion statistics.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the table cannot be built at all (e.g.
    /// out of physical memory).
    pub fn build(
        spec: AddressSpaceSpec,
        alloc: &mut dyn PhysAllocator,
    ) -> Result<AddressSpace, MapError> {
        assert_eq!(
            spec.base_va % PageSize::Size2M.bytes(),
            0,
            "base VA must be 2 MB aligned"
        );
        let footprint = PageSize::Size2M.align_up(spec.footprint.max(1));
        let huge_bytes = PageSize::Size2M
            .align_down((footprint as f64 * spec.scenario.large_page_fraction) as u64);

        // Plan: [base, base+huge_bytes) in 2 MB pages, rest in 4 KB.
        // Pre-compute NF regions from the plan (§3.4).
        let mut nf = NfRegions::new();
        if let Some(threshold) = spec.nf_threshold {
            let mut count_per_region: std::collections::HashMap<u64, u32> =
                std::collections::HashMap::new();
            let mut off = 0;
            while off < huge_bytes {
                let va = spec.base_va + off;
                *count_per_region.entry(va >> 30).or_default() += 1;
                off += PageSize::Size2M.bytes();
            }
            for (region, count) in count_per_region {
                if count >= threshold {
                    nf.mark(VirtAddr::new(region << 30));
                }
            }
        }

        let mut store = FrameStore::new();
        let mut mapper = Mapper::new(&mut store, alloc, spec.layout.clone(), &nf)?;
        let mut build_stats = BuildStats::default();

        let mut off = 0u64;
        while off < footprint {
            let va = VirtAddr::new(spec.base_va + off);
            if off < huge_bytes {
                // 2 MB data page, with THP-style fallback.
                if let Some(pa) = alloc.alloc(PageSize::Size2M) {
                    mapper.map(&mut store, alloc, &nf, va, pa, PageSize::Size2M)?;
                    build_stats.huge_data_pages += 1;
                } else {
                    build_stats.huge_data_fallbacks += 1;
                    for i in 0..512u64 {
                        let pa = alloc.alloc(PageSize::Size4K).ok_or(MapError::AllocFailed)?;
                        mapper.map(
                            &mut store,
                            alloc,
                            &nf,
                            va.add(i * 4096),
                            pa,
                            PageSize::Size4K,
                        )?;
                        build_stats.small_data_pages += 1;
                    }
                }
                off += PageSize::Size2M.bytes();
            } else {
                let pa = alloc.alloc(PageSize::Size4K).ok_or(MapError::AllocFailed)?;
                mapper.map(&mut store, alloc, &nf, va, pa, PageSize::Size4K)?;
                build_stats.small_data_pages += 1;
                off += PageSize::Size4K.bytes();
            }
        }

        Ok(AddressSpace {
            spec,
            store,
            mapper,
            nf,
            build_stats,
        })
    }

    /// The build specification.
    pub fn spec(&self) -> &AddressSpaceSpec {
        &self.spec
    }

    /// Page-table contents (for walkers).
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// The realized page table.
    pub fn table(&self) -> &PageTable {
        self.mapper.table()
    }

    /// Node census of the table.
    pub fn census(&self) -> &NodeCensus {
        self.mapper.census()
    }

    /// The no-flatten regions that were applied.
    pub fn nf_regions(&self) -> &NfRegions {
        &self.nf
    }

    /// Data-page allocation outcome.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Maps one additional page (for tests and incremental scenarios).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] on conflicts or allocation failure.
    pub fn map_extra(
        &mut self,
        alloc: &mut dyn PhysAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
    ) -> Result<(), MapError> {
        let nf = self.nf.clone();
        self.mapper.map(&mut self.store, alloc, &nf, va, pa, size)
    }

    /// Highest mapped virtual address + 1.
    pub fn end_va(&self) -> u64 {
        self.spec.base_va + PageSize::Size2M.align_up(self.spec.footprint.max(1))
    }

    /// Freezes this space into an immutable, shareable snapshot.
    ///
    /// Runs only *read* the page table (`Mmu::access` borrows the store
    /// and table), so once construction is done the space can be sealed
    /// and handed to any number of simulations — including concurrently,
    /// from worker threads, behind an `Arc` — without re-mapping the
    /// footprint. The store is compacted on the way in since the
    /// snapshot may be retained for a whole experiment grid.
    pub fn freeze(mut self) -> FrozenSpace {
        self.store.shrink_to_fit();
        FrozenSpace {
            spec: self.spec,
            store: self.store,
            table: *self.mapper.table(),
            census: *self.mapper.census(),
            nf: self.nf,
            build_stats: self.build_stats,
        }
    }
}

/// An immutable snapshot of a fully built [`AddressSpace`]: the realized
/// table, its backing store, the NF regions, and the build-time counters
/// — everything a simulation reads, nothing it can mutate.
///
/// `FrozenSpace` is plain data (`Send + Sync`), so one snapshot behind an
/// `Arc` can back many concurrent simulation cells; the runner's setup
/// cache relies on this to build each distinct space exactly once per
/// process.
#[derive(Debug)]
pub struct FrozenSpace {
    spec: AddressSpaceSpec,
    store: FrameStore,
    table: PageTable,
    census: NodeCensus,
    nf: NfRegions,
    build_stats: BuildStats,
}

impl FrozenSpace {
    /// The build specification.
    pub fn spec(&self) -> &AddressSpaceSpec {
        &self.spec
    }

    /// Page-table contents (for walkers).
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// The realized page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Node census of the table.
    pub fn census(&self) -> &NodeCensus {
        &self.census
    }

    /// The no-flatten regions that were applied.
    pub fn nf_regions(&self) -> &NfRegions {
        &self.nf
    }

    /// Data-page allocation outcome.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Highest mapped virtual address + 1.
    pub fn end_va(&self) -> u64 {
        self.spec.base_va + PageSize::Size2M.align_up(self.spec.footprint.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuddyAllocator;
    use flatwalk_pt::resolve;
    use flatwalk_types::rng::SplitMix64;

    fn build(scenario: FragmentationScenario, layout: Layout) -> (AddressSpace, BuddyAllocator) {
        let mut buddy = BuddyAllocator::new(0, 1 << 30);
        let spec = AddressSpaceSpec::new(layout, 64 << 20).with_scenario(scenario);
        let space = AddressSpace::build(spec, &mut buddy).unwrap();
        (space, buddy)
    }

    #[test]
    fn zero_lp_scenario_maps_everything_4k() {
        let (space, _) = build(FragmentationScenario::NONE, Layout::conventional4());
        assert_eq!(space.build_stats().huge_data_pages, 0);
        assert_eq!(space.build_stats().small_data_pages, (64 << 20) / 4096);
        let w = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va + 12345),
        )
        .unwrap();
        assert_eq!(w.size, PageSize::Size4K);
    }

    #[test]
    fn half_lp_scenario_splits_the_footprint() {
        let (space, _) = build(FragmentationScenario::HALF, Layout::conventional4());
        assert_eq!(space.build_stats().huge_data_pages, (32 << 20) / (2 << 20));
        assert_eq!(space.build_stats().small_data_pages, (32 << 20) / 4096);
        // Low half → 2 MB translation; high half → 4 KB.
        let low = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va),
        )
        .unwrap();
        assert_eq!(low.size, PageSize::Size2M);
        let high = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va + (48 << 20)),
        )
        .unwrap();
        assert_eq!(high.size, PageSize::Size4K);
    }

    #[test]
    fn nf_heuristic_marks_2mb_heavy_regions() {
        // 64 MB footprint at 100% LP = 32 x 2MB pages in one 1 GB region:
        // exactly at the threshold → marked.
        let (space, _) = build(FragmentationScenario::FULL, Layout::flat_l4l3_l2l1());
        assert_eq!(space.nf_regions().len(), 1);
        // Consequently no replicated entries were needed.
        assert_eq!(space.census().replicated_entries, 0);
        let w = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va + (2 << 20) + 7),
        )
        .unwrap();
        assert_eq!(w.size, PageSize::Size2M);
    }

    #[test]
    fn without_nf_flattened_tables_replicate() {
        let mut buddy = BuddyAllocator::new(0, 1 << 30);
        let spec = AddressSpaceSpec::new(Layout::flat_l4l3_l2l1(), 64 << 20)
            .with_scenario(FragmentationScenario::FULL)
            .with_nf_threshold(None);
        let space = AddressSpace::build(spec, &mut buddy).unwrap();
        assert_eq!(space.nf_regions().len(), 0);
        assert_eq!(
            space.census().replicated_entries,
            32 * 512,
            "each 2 MB page replicated into 512 L1 entries (§3.4)"
        );
    }

    #[test]
    fn thp_fallback_under_physical_fragmentation() {
        let mut buddy = BuddyAllocator::new(0, 256 << 20);
        let mut rng = SplitMix64::new(7);
        let _held = buddy.fragment(&mut rng, 0.03);
        let spec = AddressSpaceSpec::new(Layout::conventional4(), 8 << 20)
            .with_scenario(FragmentationScenario::FULL);
        let space = AddressSpace::build(spec, &mut buddy).unwrap();
        assert!(
            space.build_stats().huge_data_fallbacks > 0,
            "fragmented memory must force 4 KB fallbacks"
        );
        // Every page still resolves.
        let w = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va + (3 << 20)),
        )
        .unwrap();
        assert_eq!(w.pa.offset(PageSize::Size4K), 0);
    }

    #[test]
    fn flattened_space_walks_in_two_steps() {
        let (space, _) = build(FragmentationScenario::NONE, Layout::flat_l4l3_l2l1());
        let w = resolve(
            space.store(),
            space.table(),
            VirtAddr::new(space.spec().base_va + (10 << 20)),
        )
        .unwrap();
        assert_eq!(w.steps.len(), 2);
        assert_eq!(space.census().flat2_nodes, 2);
    }

    #[test]
    fn freeze_preserves_table_and_counters() {
        let (space, _) = build(FragmentationScenario::HALF, Layout::flat_l4l3_l2l1());
        let spec = space.spec().clone();
        let stats = space.build_stats();
        let census = *space.census();
        let nf_len = space.nf_regions().len();
        let root = space.table().root;
        let frames = space.store().materialized_frames();
        let probe = VirtAddr::new(space.spec().base_va + (48 << 20) + 123);
        let before = resolve(space.store(), space.table(), probe).unwrap();

        let frozen = space.freeze();
        assert_eq!(frozen.spec().base_va, spec.base_va);
        assert_eq!(frozen.build_stats(), stats);
        assert_eq!(frozen.census().nodes(), census.nodes());
        assert_eq!(frozen.nf_regions().len(), nf_len);
        assert_eq!(frozen.table().root, root);
        assert_eq!(frozen.store().materialized_frames(), frames);
        let after = resolve(frozen.store(), frozen.table(), probe).unwrap();
        assert_eq!(after.pa, before.pa);
        assert_eq!(after.size, before.size);
    }

    #[test]
    fn frozen_space_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenSpace>();
        assert_send_sync::<std::sync::Arc<FrozenSpace>>();
    }

    #[test]
    fn table_size_ratio_matches_paper_claim() {
        // §1: flattening turns ~N 4 KB nodes into a few 2 MB nodes.
        let (conv, _) = build(FragmentationScenario::NONE, Layout::conventional4());
        let (flat, _) = build(FragmentationScenario::NONE, Layout::flat_l4l3_l2l1());
        let conv_nodes = conv.census().nodes();
        let flat_nodes = flat.census().nodes();
        assert!(conv_nodes > 30, "64 MB of 4K pages needs >30 nodes");
        assert_eq!(flat_nodes, 2);
        assert!(flat.census().table_bytes() > conv.census().table_bytes());
    }
}
