//! The miniature kernel memory manager: physical allocation,
//! address-space construction, virtualized spaces, and the §6.2
//! allocation-failure stress model.
//!
//! The paper's OS story is that flattening needs only small kernel
//! changes *because* it degrades gracefully: if the kernel cannot find
//! a free 2 MB block for a flattened node, it falls back to two levels
//! of conventional 4 KB nodes (§3.2, §6.2). This crate supplies the
//! pieces that make that story testable:
//!
//! * [`BuddyAllocator`] — power-of-two physical allocator with
//!   fragmentation injection.
//! * [`AddressSpace`] / [`AddressSpaceSpec`] — builds process address
//!   spaces under the paper's 0 %/50 %/100 % large-page scenarios with
//!   the §3.4 no-flatten heuristic.
//! * [`VirtualizedSpace`] — guest + host table construction (§4).
//! * [`FrozenSpace`] / [`FrozenVirtSpace`] — immutable `Send + Sync`
//!   snapshots of built spaces, shared (`Arc`) across simulations so a
//!   grid maps each distinct space once (build-once/run-many).
//! * [`kernel_build_stress`] — the §6.2 oversubscription experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod space;
mod stress;
mod virt;

pub use buddy::{BuddyAllocator, BuddyStats, ORDER_1G, ORDER_2M, ORDER_4K};
pub use space::{AddressSpace, AddressSpaceSpec, BuildStats, FragmentationScenario, FrozenSpace};
pub use stress::{kernel_build_stress, StressConfig, StressOutcome};
pub use virt::{FrozenVirtSpace, VirtSpec, VirtualizedSpace};
