//! The §6.2 kernel stress experiment: how often do the two 2 MB
//! allocations needed for a flattened page table fail on a loaded,
//! oversubscribed system?
//!
//! The paper stress-tested its Linux prototype by building a kernel with
//! 100 concurrent processes on a 128-thread server: with 6 % memory
//! oversubscription (500 MB swap on 8 GB RAM), 0.5 % of 3464 compiler
//! invocations failed at least one of the two 2 MB allocations; with
//! 50 % oversubscription the failure rate rose to 12 %, and every
//! failure was absorbed by the graceful 4 KB fallback.
//!
//! The model reproduces the kernel *mechanisms* that produce those
//! numbers:
//!
//! * short-lived compiler processes fault 4 KB working sets in and out
//!   of a buddy allocator sized to RAM;
//! * the commit level implied by the oversubscription forces **reclaim**
//!   (swap-out of randomly chosen single pages) whenever RAM runs out,
//!   scattering holes;
//! * a 2 MB request that cannot be satisfied directly performs
//!   **direct reclaim** to a watermark and then **compaction**: find a
//!   2 MB-aligned block containing only *movable* pages and migrate its
//!   occupants into free frames elsewhere (what Linux's direct
//!   compaction does for THP and our flattened-table allocations);
//! * pages faulted in while the system is swapping heavily are
//!   *unmovable* with a pressure-dependent probability (dirty or
//!   under-writeback pages cannot be migrated), so compaction — and
//!   therefore the 2 MB allocation — fails more often the harder the
//!   system swaps.

use std::collections::{BTreeMap, HashMap, VecDeque};

use flatwalk_pt::PhysAllocator;
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{PageSize, PhysAddr};

use crate::BuddyAllocator;

/// Parameters of the stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Physical memory size (power of two). The paper used 8 GB; the
    /// default scales down to keep the experiment fast while preserving
    /// the RAM : working-set ratio.
    pub ram_bytes: u64,
    /// Memory oversubscription: committed / RAM − 1 (0.06 and 0.5 in
    /// the paper).
    pub oversubscription: f64,
    /// Compiler invocations to simulate (paper: 3464).
    pub invocations: u64,
    /// Concurrent processes (paper: 100).
    pub concurrency: usize,
    /// Baseline probability that a freshly faulted page is unmovable
    /// (kernel/slab/pinned allocations exist even without pressure).
    pub unmovable_base: f64,
    /// Additional unmovable probability per unit of swap rate
    /// (reclaimed pages per faulted page, smoothed) — under heavy
    /// swapping more pages are dirty or under writeback and cannot be
    /// migrated.
    pub unmovable_per_swap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            ram_bytes: 1 << 30,
            oversubscription: 0.06,
            invocations: 3464,
            concurrency: 48,
            unmovable_base: 0.0062,
            unmovable_per_swap: 0.0004,
            seed: 0x57E55,
        }
    }
}

/// Outcome of the stress run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StressOutcome {
    /// Invocations simulated.
    pub invocations: u64,
    /// Individual 2 MB allocation attempts (2 per invocation).
    pub attempts: u64,
    /// 2 MB attempts that needed compaction (direct allocation failed).
    pub compactions: u64,
    /// Failed 2 MB allocation attempts (fallback taken).
    pub failures: u64,
    /// Invocations where at least one of the two allocations failed —
    /// the paper's headline metric.
    pub invocations_with_failure: u64,
    /// Pages swapped out over the run (reclaim intensity).
    pub reclaimed_pages: u64,
    /// Mean smoothed swap rate over the run.
    pub mean_swap_rate: f64,
}

impl StressOutcome {
    /// Fraction of invocations that hit the fallback path.
    pub fn invocation_failure_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.invocations_with_failure as f64 / self.invocations as f64
        }
    }
}

#[derive(Default, Clone, Copy)]
struct BlockOcc {
    live: u32,
    unmovable: u32,
}

#[derive(Default)]
struct Process {
    pages: Vec<u64>,
    tables: Vec<PhysAddr>,
}

struct PageInfo {
    owner: u64,
    unmovable: bool,
    /// Index of this page in its owner's `pages` vector.
    owner_pos: usize,
    /// Index of this page in the global registry.
    global_pos: usize,
}

/// Deterministic page registry with O(1) random selection.
struct Registry {
    all: Vec<u64>,
    info: HashMap<u64, PageInfo>,
    /// Per-2 MB-block occupancy, deterministic iteration order.
    blocks: BTreeMap<u64, BlockOcc>,
}

impl Registry {
    fn add(&mut self, procs: &mut HashMap<u64, Process>, addr: u64, owner: u64, unmovable: bool) {
        let proc_pages = &mut procs.get_mut(&owner).expect("live owner").pages;
        let owner_pos = proc_pages.len();
        proc_pages.push(addr);
        let global_pos = self.all.len();
        self.all.push(addr);
        let prev = self.info.insert(
            addr,
            PageInfo {
                owner,
                unmovable,
                owner_pos,
                global_pos,
            },
        );
        assert!(prev.is_none(), "double-add of page {addr:#x}");
        let occ = self.blocks.entry(addr >> 21).or_default();
        occ.live += 1;
        if unmovable {
            occ.unmovable += 1;
        }
    }

    /// Removes a page from all indexes; returns (owner, unmovable).
    fn remove(&mut self, procs: &mut HashMap<u64, Process>, addr: u64) -> (u64, bool) {
        let info = self.info.remove(&addr).expect("page tracked");
        // Fix the global registry: swap_remove moves the *last* element
        // into the vacated slot, so that element's index must be patched.
        let last = *self.all.last().expect("registry non-empty");
        self.all.swap_remove(info.global_pos);
        if last != addr {
            self.info
                .get_mut(&last)
                .expect("moved page tracked")
                .global_pos = info.global_pos;
        }
        // Fix the owner's page list (the owner may already be retired).
        if let Some(p) = procs.get_mut(&info.owner) {
            debug_assert_eq!(p.pages.get(info.owner_pos).copied(), Some(addr));
            let last = *p.pages.last().expect("owner list non-empty");
            p.pages.swap_remove(info.owner_pos);
            if last != addr {
                self.info
                    .get_mut(&last)
                    .expect("moved page tracked")
                    .owner_pos = info.owner_pos;
            }
        }
        let occ = self.blocks.get_mut(&(addr >> 21)).expect("block tracked");
        occ.live -= 1;
        if info.unmovable {
            occ.unmovable -= 1;
        }
        if occ.live == 0 {
            self.blocks.remove(&(addr >> 21));
        }
        (info.owner, info.unmovable)
    }

    #[cfg(test)]
    fn verify(&self, procs: &HashMap<u64, Process>, where_: &str) {
        for (pid, p) in procs {
            for (i, &addr) in p.pages.iter().enumerate() {
                let info = self
                    .info
                    .get(&addr)
                    .unwrap_or_else(|| panic!("{where_}: page {addr:#x} of pid {pid} untracked"));
                assert_eq!(info.owner, *pid, "{where_}: owner mismatch {addr:#x}");
                assert_eq!(info.owner_pos, i, "{where_}: owner_pos mismatch {addr:#x}");
            }
        }
        for (g, &addr) in self.all.iter().enumerate() {
            let info = self.info.get(&addr).expect("global page tracked");
            assert_eq!(
                info.global_pos, g,
                "{where_}: global_pos mismatch {addr:#x}"
            );
        }
        assert_eq!(
            self.all.len(),
            self.info.len(),
            "{where_}: registry size skew"
        );
    }

    fn random_page(&self, rng: &mut SplitMix64) -> Option<u64> {
        if self.all.is_empty() {
            None
        } else {
            Some(self.all[rng.next_range(self.all.len() as u64) as usize])
        }
    }
}

struct Kernel {
    buddy: BuddyAllocator,
    rng: SplitMix64,
    reg: Registry,
    faults: u64,
    reclaims: u64,
    swap_rate: f64,
    cfg_unmovable_base: f64,
    cfg_unmovable_per_swap: f64,
}

impl Kernel {
    /// Swaps out one random page; returns false if nothing is left.
    fn reclaim_one(&mut self, procs: &mut HashMap<u64, Process>) -> bool {
        let Some(victim) = self.reg.random_page(&mut self.rng) else {
            return false;
        };
        self.reg.remove(procs, victim);
        self.buddy.free(PhysAddr::new(victim));
        self.reclaims += 1;
        true
    }

    /// Faults one 4 KB page for `owner`, reclaiming under pressure.
    fn fault_page(&mut self, procs: &mut HashMap<u64, Process>, owner: u64) {
        self.faults += 1;
        let addr = loop {
            if let Some(pa) = self.buddy.alloc(PageSize::Size4K) {
                break pa.raw();
            }
            assert!(self.reclaim_one(procs), "stress model wedged");
        };
        let unmovable_p = self.unmovable_probability();
        let unmovable = self.rng.chance(unmovable_p);
        self.reg.add(procs, addr, owner, unmovable);
    }

    fn unmovable_probability(&self) -> f64 {
        self.cfg_unmovable_base + self.cfg_unmovable_per_swap * self.swap_rate
    }
}

/// Runs the kernel-build stress model.
///
/// # Examples
///
/// ```
/// use flatwalk_os::{kernel_build_stress, StressConfig};
///
/// let light = StressConfig {
///     ram_bytes: 64 << 20,
///     invocations: 100,
///     concurrency: 8,
///     ..StressConfig::default()
/// };
/// let out = kernel_build_stress(&light);
/// assert_eq!(out.invocations, 100);
/// ```
pub fn kernel_build_stress(cfg: &StressConfig) -> StressOutcome {
    let ram_pages = cfg.ram_bytes / 4096;
    let committed_pages = (ram_pages as f64 * (1.0 + cfg.oversubscription)) as u64;
    let table_pages_per_proc = 2 * 512u64;
    let ws_pages = (committed_pages / cfg.concurrency as u64)
        .saturating_sub(table_pages_per_proc)
        .max(64);

    let mut k = Kernel {
        buddy: BuddyAllocator::new(0, cfg.ram_bytes),
        rng: SplitMix64::new(cfg.seed),
        reg: Registry {
            all: Vec::new(),
            info: HashMap::new(),
            blocks: BTreeMap::new(),
        },
        faults: 0,
        reclaims: 0,
        swap_rate: 0.0,
        cfg_unmovable_base: cfg.unmovable_base,
        cfg_unmovable_per_swap: cfg.unmovable_per_swap,
    };
    let mut procs: HashMap<u64, Process> = HashMap::new();
    let mut order: VecDeque<u64> = VecDeque::new();
    let mut out = StressOutcome::default();
    let mut rate_sum = 0.0;

    for pid in 0..cfg.invocations {
        if order.len() >= cfg.concurrency {
            let dead_id = order.pop_front().expect("non-empty");
            // Remove pages via the registry (which edits procs), then
            // drop the process record.
            let pages: Vec<u64> = procs.get(&dead_id).expect("tracked").pages.clone();
            for p in pages {
                k.reg.remove(&mut procs, p);
                k.buddy.free(PhysAddr::new(p));
            }
            let dead = procs.remove(&dead_id).expect("tracked");
            for t in dead.tables {
                k.buddy.free(t);
            }
        }

        procs.insert(pid, Process::default());
        order.push_back(pid);

        // The new compiler process faults in its working set.
        let spread = ws_pages / 4;
        let want = ws_pages - spread + k.rng.next_range(2 * spread + 1);
        let faults_before = k.faults;
        let reclaims_before = k.reclaims;
        for _ in 0..want {
            k.fault_page(&mut procs, pid);
        }
        // Smoothed swap rate (reclaims per fault, EWMA per invocation).
        let df = (k.faults - faults_before).max(1) as f64;
        let dr = (k.reclaims - reclaims_before) as f64;
        k.swap_rate = 0.7 * k.swap_rate + 0.3 * (dr / df);
        rate_sum += k.swap_rate;

        // The two 2 MB allocations for its flattened page table (§6.2).
        out.invocations += 1;
        let mut failed = false;
        for _ in 0..2 {
            out.attempts += 1;
            let block = alloc_huge(&mut k, &mut procs, &mut out);
            match block {
                Some(pa) => procs.get_mut(&pid).expect("live").tables.push(pa),
                None => {
                    out.failures += 1;
                    failed = true;
                    // Graceful fallback: conventional 4 KB nodes. Table
                    // nodes are kernel allocations — unmovable.
                    for _ in 0..2 {
                        k.faults += 1;
                        let addr = loop {
                            if let Some(pa) = k.buddy.alloc(PageSize::Size4K) {
                                break pa.raw();
                            }
                            assert!(k.reclaim_one(&mut procs), "wedged");
                        };
                        k.reg.add(&mut procs, addr, pid, true);
                    }
                }
            }
        }
        if failed {
            out.invocations_with_failure += 1;
        }
    }

    out.reclaimed_pages = k.reclaims;
    out.mean_swap_rate = if cfg.invocations == 0 {
        0.0
    } else {
        rate_sum / cfg.invocations as f64
    };
    out
}

/// 2 MB allocation with the kernel's slow path: direct allocation, then
/// direct reclaim to a watermark, then compaction.
fn alloc_huge(
    k: &mut Kernel,
    procs: &mut HashMap<u64, Process>,
    out: &mut StressOutcome,
) -> Option<PhysAddr> {
    if let Some(pa) = k.buddy.alloc(PageSize::Size2M) {
        return Some(pa);
    }
    out.compactions += 1;
    // Direct reclaim: free frames up to a watermark of 3 x 512 so
    // compaction has somewhere to migrate to (scattered frees rarely
    // produce a whole 2 MB block by themselves).
    let watermark = 3 * 512 * 4096u64;
    while k.buddy.free_bytes() < watermark {
        if !k.reclaim_one(procs) {
            break;
        }
    }
    if let Some(pa) = k.buddy.alloc(PageSize::Size2M) {
        return Some(pa);
    }
    try_compaction(k, procs)
}

/// Direct compaction: pick the fully movable 2 MB block with the fewest
/// occupants and migrate them into free frames elsewhere.
fn try_compaction(k: &mut Kernel, procs: &mut HashMap<u64, Process>) -> Option<PhysAddr> {
    let free_frames = k.buddy.free_bytes() / 4096;
    let (block, live) = k
        .reg
        .blocks
        .iter()
        .filter(|(_, occ)| occ.unmovable == 0)
        .min_by_key(|(_, occ)| occ.live)
        .map(|(&b, occ)| (b, occ.live))?;
    if live as u64 + 8 > free_frames {
        return None;
    }
    let base = block << 21;
    let residents: Vec<u64> = (0..512u64)
        .map(|i| base + i * 4096)
        .filter(|a| k.reg.info.contains_key(a))
        .collect();
    debug_assert_eq!(residents.len() as u32, live);

    // Migrate each resident out of the block. Replacement frames that
    // happen to land back inside the block are stashed and released
    // afterwards.
    let mut stash: Vec<PhysAddr> = Vec::new();
    let mut give_up = false;
    for addr in residents {
        let (owner, unmovable) = k.reg.remove(procs, addr);
        k.buddy.free(PhysAddr::new(addr));
        let mut dest = None;
        for _ in 0..32 {
            match k.buddy.alloc(PageSize::Size4K) {
                Some(pa) if pa.raw() >> 21 == block => stash.push(pa),
                Some(pa) => {
                    dest = Some(pa.raw());
                    break;
                }
                None => break,
            }
        }
        match dest {
            Some(new) => {
                if procs.contains_key(&owner) {
                    k.reg.add(procs, new, owner, unmovable);
                } else {
                    // Owner raced away (cannot happen today; defensive).
                    k.buddy.free(PhysAddr::new(new));
                }
            }
            None => {
                give_up = true;
                break;
            }
        }
    }
    for s in stash {
        k.buddy.free(s);
    }
    if give_up {
        return None;
    }
    k.buddy.alloc(PageSize::Size2M)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_fuzz() {
        let mut reg = Registry {
            all: Vec::new(),
            info: HashMap::new(),
            blocks: BTreeMap::new(),
        };
        let mut procs: HashMap<u64, Process> = HashMap::new();
        for pid in 0..4 {
            procs.insert(pid, Process::default());
        }
        let mut rng = SplitMix64::new(99);
        let mut next_addr: u64 = 0;
        let mut live: Vec<u64> = Vec::new();
        for step in 0..200_000 {
            if live.is_empty() || rng.chance(0.55) {
                let addr = next_addr;
                next_addr += 4096;
                let pid = rng.next_range(4);
                reg.add(&mut procs, addr, pid, rng.chance(0.1));
                live.push(addr);
            } else {
                let i = rng.next_range(live.len() as u64) as usize;
                let addr = live.swap_remove(i);
                reg.remove(&mut procs, addr);
            }
            if step % 10_000 == 0 {
                reg.verify(&procs, "fuzz");
            }
        }
        reg.verify(&procs, "fuzz-end");
    }

    fn quick(ovs: f64) -> StressOutcome {
        kernel_build_stress(&StressConfig {
            ram_bytes: 128 << 20,
            oversubscription: ovs,
            invocations: 150,
            concurrency: 16,
            seed: 11,
            ..StressConfig::default()
        })
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let out = quick(0.06);
        assert_eq!(out.invocations, 150);
        assert!(out.attempts >= 300);
        assert!(out.failures <= out.attempts);
        assert!(out.invocations_with_failure <= out.invocations);
    }

    #[test]
    fn oversubscription_increases_reclaim_and_failures() {
        let light = quick(0.04);
        let heavy = quick(0.6);
        assert!(
            heavy.reclaimed_pages > light.reclaimed_pages,
            "heavier oversubscription must swap more (heavy {}, light {})",
            heavy.reclaimed_pages,
            light.reclaimed_pages
        );
        assert!(
            heavy.invocation_failure_rate() >= light.invocation_failure_rate(),
            "heavy ovs {} should fail at least as often as light {}",
            heavy.invocation_failure_rate(),
            light.invocation_failure_rate()
        );
        assert!(
            light.invocation_failure_rate() < 0.15,
            "reclaim + compaction should absorb most light-load failures (got {})",
            light.invocation_failure_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(quick(0.3), quick(0.3));
    }
}
