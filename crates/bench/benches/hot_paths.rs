//! Criterion micro-benchmarks of the simulator's hot paths, so that
//! performance regressions in the substrate itself are visible. These
//! measure *simulator* speed, not the modelled system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use flatwalk_mem::{HierarchyConfig, MemoryHierarchy};
use flatwalk_mmu::PageWalker;
use flatwalk_pt::{resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
use flatwalk_sim::{NativeSimulation, SimOptions, TranslationConfig};
use flatwalk_tlb::{PwcConfig, TlbSystem, TlbSystemConfig};
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{AccessKind, OwnerId, PageSize, PhysAddr, VirtAddr};
use flatwalk_workloads::WorkloadSpec;

fn build_table(layout: Layout, pages: u64) -> (FrameStore, Mapper) {
    let mut store = FrameStore::new();
    let mut alloc = BumpAllocator::new(0x10_0000_0000);
    let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
    for p in 0..pages {
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x4000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
    }
    (store, mapper)
}

fn bench_functional_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_walk");
    for (name, layout) in [
        ("conventional4", Layout::conventional4()),
        ("flat_l4l3_l2l1", Layout::flat_l4l3_l2l1()),
    ] {
        let (store, mapper) = build_table(layout, 4096);
        let mut rng = SplitMix64::new(7);
        g.bench_function(name, |b| {
            b.iter(|| {
                let va = VirtAddr::new(0x4000_0000 + rng.next_range(4096) * 4096);
                std::hint::black_box(resolve(&store, mapper.table(), va).unwrap().pa)
            })
        });
    }
    g.finish();
}

fn bench_timed_walker(c: &mut Criterion) {
    let mut g = c.benchmark_group("timed_walker");
    for (name, layout) in [
        ("conventional4", Layout::conventional4()),
        ("flat_l4l3_l2l1", Layout::flat_l4l3_l2l1()),
    ] {
        let (store, mapper) = build_table(layout.clone(), 4096);
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut walker = PageWalker::new(PwcConfig::server().for_layout(&layout));
        let mut rng = SplitMix64::new(9);
        g.bench_function(name, |b| {
            b.iter(|| {
                let va = VirtAddr::new(0x4000_0000 + rng.next_range(4096) * 4096);
                std::hint::black_box(
                    walker
                        .walk(&store, mapper.table(), va, &mut hier, OwnerId::SINGLE)
                        .unwrap()
                        .latency,
                )
            })
        });
    }
    g.finish();
}

fn bench_tlb_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    let mut tlb = TlbSystem::new(TlbSystemConfig::server());
    for p in 0..64u64 {
        tlb.fill(
            VirtAddr::new(0x4000_0000 + p * 4096),
            PhysAddr::new(0x9_0000_0000 + p * 4096),
            PageSize::Size4K,
        );
    }
    let mut rng = SplitMix64::new(5);
    g.bench_function("lookup_hit", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x4000_0000 + rng.next_range(64) * 4096);
            std::hint::black_box(tlb.lookup(va).translation)
        })
    });
    g.bench_function("lookup_miss", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x9000_0000 + rng.next_range(1 << 20) * 4096);
            std::hint::black_box(tlb.lookup(va).translation)
        })
    });
    g.finish();
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
    let mut rng = SplitMix64::new(3);
    g.bench_function("access_l1_hit", |b| {
        hier.access(PhysAddr::new(0x1000), AccessKind::Data, OwnerId::SINGLE);
        b.iter(|| {
            std::hint::black_box(hier.access(
                PhysAddr::new(0x1000),
                AccessKind::Data,
                OwnerId::SINGLE,
            ))
        })
    });
    g.bench_function("access_streaming", |b| {
        b.iter(|| {
            let pa = PhysAddr::new(rng.next_range(1 << 30) & !63);
            std::hint::black_box(hier.access(pa, AccessKind::Data, OwnerId::SINGLE))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 5_000;
    for cfg in [TranslationConfig::baseline(), TranslationConfig::flattened_prioritized()] {
        g.bench_function(format!("gups_64mib_{}", cfg.label), |b| {
            b.iter_batched(
                || {
                    NativeSimulation::build(
                        WorkloadSpec::gups().scaled_mib(64),
                        cfg.clone(),
                        &opts,
                    )
                },
                |sim| std::hint::black_box(sim.run().cycles),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_functional_walk,
    bench_timed_walker,
    bench_tlb_lookup,
    bench_hierarchy_access,
    bench_engine
);
criterion_main!(benches);
