//! Criterion micro-benchmarks of the simulator's hot paths, so that
//! performance regressions in the substrate itself are visible. These
//! measure *simulator* speed, not the modelled system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use flatwalk_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use flatwalk_mmu::{AddressSpace as MmuSpace, Mmu, PageWalker};
use flatwalk_os::{AddressSpace, AddressSpaceSpec, BuddyAllocator, FragmentationScenario};
use flatwalk_pt::{resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
use flatwalk_sim::runner::{run_cells, Cell};
use flatwalk_sim::{
    setup, table2_mixes, MulticoreSimulation, NativeSimulation, SimOptions, TranslationConfig,
    VirtConfig, VirtualizedSimulation,
};
use flatwalk_tlb::{PwcConfig, TlbSystem, TlbSystemConfig};
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{AccessKind, OwnerId, PageSize, PhysAddr, VirtAddr};
use flatwalk_workloads::WorkloadSpec;

fn build_table(layout: Layout, pages: u64) -> (FrameStore, Mapper) {
    let mut store = FrameStore::new();
    let mut alloc = BumpAllocator::new(0x10_0000_0000);
    let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
    for p in 0..pages {
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x4000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
    }
    (store, mapper)
}

fn bench_functional_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_walk");
    for (name, layout) in [
        ("conventional4", Layout::conventional4()),
        ("flat_l4l3_l2l1", Layout::flat_l4l3_l2l1()),
    ] {
        let (store, mapper) = build_table(layout, 4096);
        let mut rng = SplitMix64::new(7);
        g.bench_function(name, |b| {
            b.iter(|| {
                let va = VirtAddr::new(0x4000_0000 + rng.next_range(4096) * 4096);
                std::hint::black_box(resolve(&store, mapper.table(), va).unwrap().pa)
            })
        });
    }
    g.finish();
}

fn bench_timed_walker(c: &mut Criterion) {
    let mut g = c.benchmark_group("timed_walker");
    for (name, layout) in [
        ("conventional4", Layout::conventional4()),
        ("flat_l4l3_l2l1", Layout::flat_l4l3_l2l1()),
    ] {
        let (store, mapper) = build_table(layout.clone(), 4096);
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut walker = PageWalker::new(PwcConfig::server().for_layout(&layout));
        let mut rng = SplitMix64::new(9);
        g.bench_function(name, |b| {
            b.iter(|| {
                let va = VirtAddr::new(0x4000_0000 + rng.next_range(4096) * 4096);
                std::hint::black_box(
                    walker
                        .walk(&store, mapper.table(), va, &mut hier, OwnerId::SINGLE)
                        .unwrap()
                        .latency,
                )
            })
        });
    }
    g.finish();
}

fn bench_tlb_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    let mut tlb = TlbSystem::new(TlbSystemConfig::server());
    for p in 0..64u64 {
        tlb.fill(
            VirtAddr::new(0x4000_0000 + p * 4096),
            PhysAddr::new(0x9_0000_0000 + p * 4096),
            PageSize::Size4K,
        );
    }
    let mut rng = SplitMix64::new(5);
    g.bench_function("lookup_hit", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x4000_0000 + rng.next_range(64) * 4096);
            std::hint::black_box(tlb.lookup(va).translation)
        })
    });
    g.bench_function("lookup_miss", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x9000_0000 + rng.next_range(1 << 20) * 4096);
            std::hint::black_box(tlb.lookup(va).translation)
        })
    });
    g.finish();
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
    let mut rng = SplitMix64::new(3);
    g.bench_function("access_l1_hit", |b| {
        hier.access(PhysAddr::new(0x1000), AccessKind::Data, OwnerId::SINGLE);
        b.iter(|| {
            std::hint::black_box(hier.access(
                PhysAddr::new(0x1000),
                AccessKind::Data,
                OwnerId::SINGLE,
            ))
        })
    });
    g.bench_function("access_streaming", |b| {
        b.iter(|| {
            let pa = PhysAddr::new(rng.next_range(1 << 30) & !63);
            std::hint::black_box(hier.access(pa, AccessKind::Data, OwnerId::SINGLE))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 500;
    opts.measure_ops = 5_000;
    for cfg in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ] {
        g.bench_function(format!("gups_64mib_{}", cfg.label), |b| {
            b.iter_batched(
                || NativeSimulation::build(WorkloadSpec::gups().scaled_mib(64), cfg.clone(), &opts),
                |sim| std::hint::black_box(sim.run().cycles),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

/// The cross-PR engine regression harness: full simulated runs at a
/// fixed 2k-warmup/50k-measure operation budget, one row per engine.
/// The medians land in `BENCH_engines.json` (interleaved before/after
/// binaries, median-of-mins — see that file's notes for methodology).
fn bench_engine_50kop_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_50kop_harness");
    g.sample_size(10);
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 2_000;
    opts.measure_ops = 50_000;
    for cfg in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ] {
        g.bench_function(format!("gups_64mib_{}", cfg.label), |b| {
            b.iter_batched(
                || NativeSimulation::build(WorkloadSpec::gups().scaled_mib(64), cfg.clone(), &opts),
                |sim| std::hint::black_box(sim.run().cycles),
                BatchSize::PerIteration,
            )
        });
    }
    // Virtualized engine rows (first measured in PR 7): the 2-D walk
    // cost dominates, so the same op budget runs longer than native.
    for cfg in [VirtConfig::fig12_set()[0], VirtConfig::fig12_set()[7]] {
        g.bench_function(format!("virt_gups_32mib_{}", cfg.label), |b| {
            b.iter_batched(
                || VirtualizedSimulation::build(WorkloadSpec::gups().scaled_mib(32), cfg, &opts),
                |sim| std::hint::black_box(sim.run().cycles),
                BatchSize::PerIteration,
            )
        });
    }
    // Multicore engine rows: a heterogeneous Table 2 mix, four cores
    // round-robin over the shared LLC (4 × 52k accesses per run).
    let mut mc_opts = opts.clone();
    mc_opts.footprint_divisor = 64;
    mc_opts.phys_mem_bytes = 2 << 30;
    for cfg in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ] {
        g.bench_function(format!("multicore_mix8_{}", cfg.label), |b| {
            b.iter_batched(
                || MulticoreSimulation::build(&table2_mixes()[7], cfg.clone(), &mc_opts),
                |sim| std::hint::black_box(sim.run().cores.len()),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_cache_probe_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_probe_flat");
    // A 2 MB, 16-way L2-like cache: the flattened tag array's probe and
    // fill paths, under a hit-heavy and a streaming (miss/evict) mix.
    let mut cache = Cache::new(CacheConfig::new("bench-l2", 2 << 20, 16, 14));
    for line in 0..(1u64 << 15) {
        cache.fill(line, AccessKind::Data, OwnerId::SINGLE, false);
    }
    let mut rng = SplitMix64::new(11);
    g.bench_function("probe_hit", |b| {
        b.iter(|| {
            let line = rng.next_range(1 << 15);
            std::hint::black_box(cache.probe(line, AccessKind::Data))
        })
    });
    g.bench_function("probe_miss_fill", |b| {
        b.iter(|| {
            let line = (1 << 20) + rng.next_range(1 << 24);
            if !cache.probe(line, AccessKind::Data) {
                std::hint::black_box(cache.fill(line, AccessKind::Data, OwnerId::SINGLE, false));
            }
        })
    });
    g.finish();
}

fn bench_pt_store_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("pt_store_lookup");
    // The FrameStore's frame map is keyed by frame number through the
    // SplitMix hasher; a large mapped region exercises it exactly the
    // way a functional walk does.
    let (store, mapper) = build_table(Layout::conventional4(), 16 << 10);
    let mut rng = SplitMix64::new(13);
    g.bench_function("read_pte_warm", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x4000_0000 + rng.next_range(16 << 10) * 4096);
            std::hint::black_box(resolve(&store, mapper.table(), va).unwrap().steps.len())
        })
    });
    g.bench_function("read_u64_random", |b| {
        let frames = store.materialized_frames() as u64;
        b.iter(|| {
            // Walk the root frame region: pure store lookups, no walk
            // logic around them.
            let pa = PhysAddr::new(0x10_0000_0000 + (rng.next_range(frames) << 12));
            std::hint::black_box(store.read_u64(pa))
        })
    });
    g.finish();
}

fn bench_runner_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("runner_grid");
    g.sample_size(10);
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 200;
    opts.measure_ops = 2_000;
    let cells = |n: usize| -> Vec<Cell> {
        (0..n)
            .map(|i| {
                Cell::new(
                    WorkloadSpec::gups().scaled_mib(16 + (i as u64 % 4) * 16),
                    TranslationConfig::baseline(),
                    FragmentationScenario::NONE,
                    opts.clone(),
                )
            })
            .collect()
    };
    for threads in [1usize, 4] {
        g.bench_function(format!("8cells_t{threads}"), |b| {
            b.iter_batched(
                || cells(8),
                |batch| std::hint::black_box(run_cells("bench", batch, threads).len()),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_runner_skewed(c: &mut Criterion) {
    let mut g = c.benchmark_group("runner_skewed");
    g.sample_size(10);
    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 200;
    opts.measure_ops = 2_000;
    // Seven cheap cells plus one ~10x cell: the shape that strands a
    // static partition's other workers and that the stealing scheduler
    // exists for. At t1 this measures pure scheduler overhead; at t>1
    // the win over a static fan-out is the heavy cell no longer setting
    // the pace for a whole partition.
    let cells = |opts: &SimOptions| -> Vec<Cell> {
        let mut v: Vec<Cell> = (0..7)
            .map(|_| {
                Cell::new(
                    WorkloadSpec::gups().scaled_mib(16),
                    TranslationConfig::baseline(),
                    FragmentationScenario::NONE,
                    opts.clone(),
                )
            })
            .collect();
        let mut heavy = opts.clone();
        heavy.measure_ops = 20_000;
        v.push(Cell::new(
            WorkloadSpec::gups().scaled_mib(64),
            TranslationConfig::baseline(),
            FragmentationScenario::NONE,
            heavy,
        ));
        v
    };
    for threads in [1usize, 4] {
        g.bench_function(format!("7small_1heavy_t{threads}"), |b| {
            b.iter_batched(
                || cells(&opts),
                |batch| std::hint::black_box(run_cells("bench", batch, threads).len()),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_batch_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_translate");
    // The engines' batched kernels: 256 translations (and full accesses)
    // per call through TLB + PSC + walker, versus the per-op dispatch
    // they replaced. The working set (16 K pages) overflows the TLB so
    // walks stay on the measured path.
    let layout = Layout::flat_l4l3_l2l1();
    let (store, mapper) = build_table(layout.clone(), 16 << 10);
    let aspace = MmuSpace::native(&store, mapper.table());
    let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
    let mut mmu = Mmu::native(
        TlbSystemConfig::server(),
        PwcConfig::server().for_layout(&layout),
        false,
    );
    let mut rng = SplitMix64::new(19);
    let vas: Vec<VirtAddr> = (0..256)
        .map(|_| VirtAddr::new(0x4000_0000 + rng.next_range(16 << 10) * 4096))
        .collect();
    let mut translated = Vec::with_capacity(vas.len());
    g.bench_function("translate_256", |b| {
        b.iter(|| {
            mmu.translate_batch(&aspace, &mut hier, &vas, OwnerId::SINGLE, &mut translated)
                .unwrap();
            std::hint::black_box(translated.len())
        })
    });
    let mut accessed = Vec::with_capacity(vas.len());
    g.bench_function("access_256", |b| {
        b.iter(|| {
            mmu.access_batch(&aspace, &mut hier, &vas, OwnerId::SINGLE, &mut accessed)
                .unwrap();
            std::hint::black_box(accessed.len())
        })
    });
    g.finish();
}

fn bench_setup_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("setup");
    g.sample_size(10);
    // A Fig. 9-sized cell's setup phase: mapping a 64 MB footprint
    // through the flattened layout. `cold` is what every grid cell paid
    // before the setup cache; `cached` is the shared-snapshot fetch the
    // cells pay now.
    let spec = AddressSpaceSpec::new(Layout::flat_l4l3_l2l1(), 64 << 20)
        .with_scenario(FragmentationScenario::HALF)
        .with_nf_threshold(Some(32));
    let phys = 1u64 << 30;
    g.bench_function("space_build_cold", |b| {
        b.iter(|| {
            let mut buddy = BuddyAllocator::new(0, phys);
            let space = AddressSpace::build(spec.clone(), &mut buddy)
                .unwrap()
                .freeze();
            std::hint::black_box(space.build_stats().small_data_pages)
        })
    });
    // Warm the cache once, outside the measured loop.
    let _warm = setup::frozen_native_space(&spec, phys, 0);
    g.bench_function("space_build_cached", |b| {
        b.iter(|| {
            std::hint::black_box(
                setup::frozen_native_space(&spec, phys, 0)
                    .build_stats()
                    .small_data_pages,
            )
        })
    });
    g.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    // The disabled-tracer fast path: a single relaxed atomic load. This
    // is the per-walk cost the instrumentation adds when FLATWALK_TRACE
    // is unset, and it must stay negligible next to a timed walk.
    g.bench_function("tracer_disabled_check", |b| {
        b.iter(|| std::hint::black_box(flatwalk_obs::trace::walks_enabled()))
    });
    // The disabled-span fast path: `span::enter` with spans off takes
    // one relaxed atomic load and returns an inert guard — the same
    // budget as the tracer guard above.
    g.bench_function("span_disabled_check", |b| {
        b.iter(|| std::hint::black_box(flatwalk_obs::span::enter("bench.noop")))
    });
    // The full timed walker with tracing off — directly comparable to
    // the timed_walker group, which it must not regress.
    let layout = Layout::flat_l4l3_l2l1();
    let (store, mapper) = build_table(layout.clone(), 4096);
    let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
    let mut walker = PageWalker::new(PwcConfig::server().for_layout(&layout));
    let mut rng = SplitMix64::new(17);
    g.bench_function("timed_walker_tracing_off", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x4000_0000 + rng.next_range(4096) * 4096);
            std::hint::black_box(
                walker
                    .walk(&store, mapper.table(), va, &mut hier, OwnerId::SINGLE)
                    .unwrap()
                    .latency,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_functional_walk,
    bench_timed_walker,
    bench_tlb_lookup,
    bench_hierarchy_access,
    bench_engine,
    bench_engine_50kop_harness,
    bench_cache_probe_flat,
    bench_pt_store_lookup,
    bench_runner_grid,
    bench_runner_skewed,
    bench_batch_translate,
    bench_setup_cache,
    bench_obs_overhead
);
criterion_main!(benches);
