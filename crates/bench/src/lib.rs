//! Shared harness for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure; run
//! them as `cargo run --release -p flatwalk-bench --bin fig09_native_perf
//! -- [--quick|--std|--paper]`. See `DESIGN.md` §3 for the experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use flatwalk_os::FragmentationScenario;
use flatwalk_sim::runner::{self, Cell, Progress};
use flatwalk_sim::{NativeSimulation, SimOptions, SimReport, TranslationConfig};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

pub mod emit;
pub mod grids;

pub use flatwalk_sim::runner::Cell as GridCell;

/// Installs the env-configured trace sink (`FLATWALK_TRACE`) and the
/// fault plan (`--faults <seed>[:profile]` / `FLATWALK_FAULTS`) exactly
/// once per process. Every harness entry point routes through this, so
/// binaries need no explicit setup.
fn init_observability() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        flatwalk_obs::trace::init_from_env();
        install_fault_plan();
    });
}

/// Parses and installs the deterministic fault plan, if one was
/// requested. A malformed spec is a fatal usage error (exit 2): unlike
/// a typoed trace path, silently running *without* the requested
/// faults would invalidate whatever the run was meant to show.
fn install_fault_plan() {
    let mut args = std::env::args();
    let mut spec = None;
    while let Some(a) = args.next() {
        if a == "--faults" {
            spec = args.next();
        } else if let Some(v) = a.strip_prefix("--faults=") {
            spec = Some(v.to_string());
        }
    }
    let spec = spec.or_else(|| {
        std::env::var("FLATWALK_FAULTS")
            .ok()
            .filter(|v| !v.is_empty())
    });
    let Some(spec) = spec else {
        return;
    };
    match flatwalk_faults::FaultPlan::parse(&spec) {
        Ok(plan) => flatwalk_faults::install(plan),
        Err(e) => {
            eprintln!("--faults: {e}");
            std::process::exit(2);
        }
    }
}

/// Grid cells that ended in [`CellOutcome::Failed`] so far. Read by
/// [`finish`] to decide the process exit status.
static FAILED_CELLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Number of grid cells that failed (after retries) in this process.
pub fn failed_cells() -> usize {
    FAILED_CELLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Publishes end-of-run telemetry (cell-wall latency gauges, the
/// optional `FLATWALK_SPANS_FOLDED` flamegraph dump), emits the JSON
/// report (like [`emit::finish`]), and then exits with status 1 if any
/// grid cell failed. Experiment binaries call this as their last
/// statement so a faulted grid still renders every healthy cell and
/// the full report before the failure is surfaced to CI.
///
/// The `FLATWALK_TRACE` sink is torn down first: the tracer lives in a
/// process-wide static whose destructor never runs at exit, so without
/// an explicit [`flatwalk_obs::trace::uninstall`] the tail of its
/// `BufWriter` — up to 8 KiB of trailing records, which for low-volume
/// channels like `numa` can be the whole file — would be lost.
pub fn finish(experiment: &str) {
    flatwalk_obs::trace::uninstall();
    emit::publish_run_telemetry();
    emit::finish(experiment);
    let failed = failed_cells();
    if failed > 0 {
        eprintln!("{experiment}: {failed} cell(s) failed");
        std::process::exit(1);
    }
}

/// How much of the paper-scale work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Footprints ÷ 8, short streams — seconds per figure; shapes hold
    /// but absolute statistics are noisier.
    Quick,
    /// Footprints ÷ 2, medium streams — the default; minutes per
    /// figure.
    Std,
    /// Paper-scale footprints, long streams — tens of minutes for the
    /// big figures.
    Paper,
}

impl Mode {
    /// Parses the conventional CLI flags (`--quick`, `--std`,
    /// `--paper`); defaults to [`Mode::Std`].
    pub fn from_args() -> Mode {
        init_observability();
        for a in std::env::args() {
            match a.as_str() {
                "--quick" => return Mode::Quick,
                "--paper" => return Mode::Paper,
                "--std" => return Mode::Std,
                _ => {}
            }
        }
        Mode::Std
    }

    /// Parses a mode name as it appears on the wire (`"quick"`,
    /// `"std"`, `"paper"`; case-insensitive). Unlike [`Mode::from_args`]
    /// this touches no process-global state, so the server can resolve
    /// per-request modes with it.
    pub fn parse(name: &str) -> Option<Mode> {
        match name.trim().to_ascii_lowercase().as_str() {
            "quick" => Some(Mode::Quick),
            "std" => Some(Mode::Std),
            "paper" => Some(Mode::Paper),
            _ => None,
        }
    }

    /// Simulation options for this mode on the server system.
    pub fn server_options(self) -> SimOptions {
        let mut opts = SimOptions::server();
        match self {
            Mode::Quick => {
                opts.footprint_divisor = 8;
                opts.phys_mem_bytes = 4 << 30;
                opts.warmup_ops = 60_000;
                opts.measure_ops = 150_000;
            }
            Mode::Std => {
                opts.footprint_divisor = 2;
                opts.phys_mem_bytes = 8 << 30;
                opts.warmup_ops = 120_000;
                opts.measure_ops = 300_000;
            }
            Mode::Paper => {
                opts.footprint_divisor = 1;
                opts.phys_mem_bytes = 16 << 30;
                opts.warmup_ops = 300_000;
                opts.measure_ops = 1_000_000;
            }
        }
        opts
    }

    /// Mobile options (Table 3) for this mode.
    pub fn mobile_options(self) -> SimOptions {
        let mut opts = SimOptions::mobile();
        if self == Mode::Quick {
            opts.warmup_ops = 40_000;
            opts.measure_ops = 120_000;
        }
        opts
    }

    /// Short banner line describing the mode.
    pub fn banner(self) -> String {
        format!("mode: {:?} (use --quick / --std / --paper to change)", self)
    }
}

/// The `--scheme <name>` cell filter shared by the grid binaries:
/// when present, binaries keep only the cells whose label mentions the
/// scheme (case-insensitive substring, via
/// [`grids::Grid::retain_matching`]), so one column — `Victima`,
/// `Mitosis`, a config label — can be re-run in isolation. Combining
/// it with `--faults` is a usage error (exit 2): the fault plan keys
/// on a cell's `(index, total)` grid position, which filtering shifts,
/// so the combination would silently fault different cells than the
/// full run.
pub fn scheme_filter() -> Option<String> {
    let mut args = std::env::args();
    let mut filter = None;
    let mut faults = false;
    while let Some(a) = args.next() {
        if a == "--scheme" {
            filter = args.next();
        } else if let Some(v) = a.strip_prefix("--scheme=") {
            filter = Some(v.to_string());
        } else if a == "--faults" || a.starts_with("--faults=") {
            faults = true;
        }
    }
    if filter.is_some() && faults {
        eprintln!("--scheme cannot be combined with --faults: fault plans key on grid positions, which filtering shifts");
        std::process::exit(2);
    }
    filter
}

/// Applies [`scheme_filter`] to a built grid, announcing the filter on
/// stdout. An empty result is a usage error (exit 2): a typoed scheme
/// name should not masquerade as a clean zero-cell run.
pub fn apply_scheme_filter(label: &str, grid: &mut grids::Grid) {
    let Some(filter) = scheme_filter() else {
        return;
    };
    let before = grid.len();
    grid.retain_matching(&filter);
    if grid.is_empty() {
        eprintln!("--scheme {filter}: no matching cells in {label} ({before} total)");
        std::process::exit(2);
    }
    println!("scheme filter: {filter} ({} of {before} cells)", grid.len());
}

/// Shared `--scheme` entry point for the grid binaries: returns false
/// (and builds nothing) when the flag is absent, letting the binary
/// run its normal full-grid path. When present, builds the grid,
/// filters it, runs the survivors, and prints the generic per-cell
/// table — a binary's full-grid presentation (normalized columns,
/// geomeans against sibling cells) needs the whole grid, so a
/// filtered calibration run reports raw per-cell numbers instead.
/// The caller should `finish` and return immediately on true.
pub fn run_scheme_filtered(label: &'static str, build: impl FnOnce() -> grids::Grid) -> bool {
    if scheme_filter().is_none() {
        return false;
    }
    let mut grid = build();
    apply_scheme_filter(label, &mut grid);
    let labels = grid.labels.clone();
    let reports = run_cells(label, grid.cells);
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&reports)
        .map(|(l, r)| {
            vec![
                l.clone(),
                format!("{:.4}", r.ipc()),
                format!("{:.2}", r.walk.accesses_per_walk()),
                format!("{:.1}", r.walk.latency_per_walk()),
            ]
        })
        .collect();
    print_table(&["cell", "IPC", "acc/walk", "walk-lat"], &rows);
    true
}

/// Worker-thread count for this invocation: `--threads N` from the
/// command line, else `FLATWALK_THREADS`, else the machine's available
/// parallelism. Grid results are byte-identical at any value.
pub fn threads() -> usize {
    let mut args = std::env::args();
    let mut explicit = None;
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            explicit = args.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            explicit = v.parse().ok();
        }
    }
    runner::resolve_threads(explicit)
}

/// Runs a batch of native-simulation cells across the worker pool
/// (see [`threads`]), returning reports in cell order. Each cell's
/// report and setup/run time split are forwarded to the JSON sink
/// ([`emit`]) when one is configured.
///
/// A failed cell (panic or [`SimError`](flatwalk_sim::SimError) after
/// retries) does not abort the batch: it is announced on stdout, its
/// slot is filled with a zeroed placeholder report (`config:
/// "failed"`), and [`finish`] will exit non-zero once the whole grid
/// has been rendered.
pub fn run_cells(label: &'static str, cells: Vec<Cell>) -> Vec<SimReport> {
    init_observability();
    let workloads: Vec<String> = cells.iter().map(|c| c.workload.name.to_string()).collect();
    let outcomes = runner::run_cells_timed(label, cells, threads());
    emit::record_cells(label, &outcomes);
    outcomes
        .into_iter()
        .zip(workloads)
        .enumerate()
        .map(|(index, (outcome, workload))| match outcome {
            runner::CellOutcome::Ok { report, .. } => report,
            runner::CellOutcome::Failed { error, retries } => {
                FAILED_CELLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                println!(
                    "cell failed: grid={label} index={index} workload={workload} retries={retries} error={error}"
                );
                SimReport {
                    workload,
                    config: "failed",
                    instructions: 0,
                    cycles: 0,
                    walk: Default::default(),
                    tlb: Default::default(),
                    hier: Default::default(),
                    energy: Default::default(),
                    census: Default::default(),
                    phase_flips: 0,
                    pwc: Vec::new(),
                    faults: Default::default(),
                }
            }
        })
        .collect()
}

/// Fans arbitrary simulation jobs across the worker pool, returning
/// results in job order. `sim_ops` is the per-job operation count shown
/// by the progress meter.
pub fn run_jobs<J, R, F>(label: &'static str, jobs: Vec<J>, sim_ops: u64, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    init_observability();
    let progress = Progress::new(label, jobs.len());
    runner::run_ordered(jobs, threads(), &progress, |_| sim_ops, f)
}

/// Runs one benchmark under one configuration and scenario.
pub fn run_native(
    spec: &WorkloadSpec,
    config: &TranslationConfig,
    opts: &SimOptions,
    scenario: FragmentationScenario,
) -> SimReport {
    let opts = std::sync::Arc::new(opts.clone().with_scenario(scenario));
    NativeSimulation::build_shared(spec.clone(), config.clone(), opts).run()
}

/// Geometric-mean speedup of `reports` against `baselines`, matched by
/// workload name. Baselines are indexed by name once, so the cost is
/// O(reports + baselines) rather than a quadratic scan.
///
/// Zero speedups — the placeholder reports a failed cell leaves behind
/// have zero IPC — are excluded from the mean, so a faulted grid still
/// summarizes its healthy cells.
///
/// # Panics
///
/// Panics if a report's workload has no baseline; the message lists
/// the baseline names that are available.
pub fn geomean_speedup(reports: &[SimReport], baselines: &[SimReport]) -> f64 {
    let by_name: HashMap<&str, &SimReport> =
        baselines.iter().map(|b| (b.workload.as_str(), b)).collect();
    let speedups: Vec<f64> = reports
        .iter()
        .map(|r| {
            let b = by_name.get(r.workload.as_str()).unwrap_or_else(|| {
                let mut available: Vec<&str> = by_name.keys().copied().collect();
                available.sort_unstable();
                panic!(
                    "no baseline for {} (available baselines: {})",
                    r.workload,
                    available.join(", ")
                )
            });
            r.speedup_vs(b)
        })
        .filter(|s| *s > 0.0)
        .collect();
    geometric_mean(&speedups).expect("positive speedups")
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<String>()
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Formats a ratio as a signed percentage ("+9.2%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// The three scenarios with their paper labels.
pub fn scenarios() -> [(FragmentationScenario, &'static str); 3] {
    [
        (FragmentationScenario::NONE, "0% LP"),
        (FragmentationScenario::HALF, "50% LP"),
        (FragmentationScenario::FULL, "100% LP"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.092), "+9.2%");
        assert_eq!(pct(0.941), "-5.9%");
    }

    #[test]
    fn geomean_speedup_matches_by_name() {
        let mk = |name: &str, cycles: u64| SimReport {
            workload: name.into(),
            config: "x",
            instructions: 1000,
            cycles,
            walk: Default::default(),
            tlb: Default::default(),
            hier: Default::default(),
            energy: Default::default(),
            census: Default::default(),
            phase_flips: 0,
            pwc: Default::default(),
            faults: Default::default(),
        };
        let base = vec![mk("a", 2000), mk("b", 1000)];
        let test = vec![mk("b", 500), mk("a", 1000)];
        // a: 2x, b: 2x → geomean 2x.
        assert!((geomean_speedup(&test, &base) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "available baselines: a, b")]
    fn geomean_speedup_names_available_baselines() {
        let mk = |name: &str| SimReport {
            workload: name.into(),
            config: "x",
            instructions: 1000,
            cycles: 1000,
            walk: Default::default(),
            tlb: Default::default(),
            hier: Default::default(),
            energy: Default::default(),
            census: Default::default(),
            phase_flips: 0,
            pwc: Default::default(),
            faults: Default::default(),
        };
        geomean_speedup(&[mk("missing")], &[mk("a"), mk("b")]);
    }

    #[test]
    fn mode_options_scale() {
        assert!(
            Mode::Quick.server_options().footprint_divisor
                > Mode::Std.server_options().footprint_divisor
        );
        assert_eq!(Mode::Paper.server_options().footprint_divisor, 1);
    }
}
