//! §7.1 — page-table-to-LLC ratio sweep: the benefit of page-table
//! prioritization as the leaf page table grows relative to the LLC
//! (modelled, as in the paper, by shrinking the LLC 2x/4x/8x/16x).

use flatwalk_bench::{geomean_speedup, grids, pct, print_table, run_cells, Mode};

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.1 — PT:LLC ratio sweep ({})", mode.banner());

    if flatwalk_bench::run_scheme_filtered("sec71_ratio", || grids::sec71_ratio(mode, &opts)) {
        flatwalk_bench::finish("sec71_ratio_sweep");
        return;
    }

    let suite = grids::sec71_ratio_suite(mode);
    let llc_full = opts.hierarchy.l3.size_bytes;

    // Per shrink factor: the baseline suite then the PTP suite, all in
    // one batch across the pool.
    let all = run_cells("sec71_ratio", grids::sec71_ratio(mode, &opts).cells);

    let mut rows = Vec::new();
    for (&shrink, group) in grids::SEC71_RATIO_SHRINKS
        .iter()
        .zip(all.chunks(2 * suite.len()))
    {
        let (base, ptp) = group.split_at(suite.len());
        let g = geomean_speedup(ptp, base);
        rows.push(vec![
            format!("{shrink}x"),
            format!("{} MB", (llc_full / shrink).max(1 << 20) >> 20),
            pct(g),
        ]);
    }
    print_table(&["PT:LLC ratio", "LLC size", "PTP benefit"], &rows);
    println!();
    println!("Paper reference: PTP holds up — +6.8% (1x), +5.9% (2x), +5.6% (4x),");
    println!("+6.5% (8x), +7.0% (16x); even at 16x, caching 6.3% of the page table");
    println!("still pays.");
    flatwalk_bench::finish("sec71_ratio_sweep");
}
