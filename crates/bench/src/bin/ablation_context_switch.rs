//! Ablation — context-switch frequency (§7.1's CSALT discussion).
//!
//! The paper attributes CSALT's weak showing to its design point:
//! "their assumption of very frequent (every 10 ms) context switches,
//! which would make a PWC less effective." This experiment recreates
//! that design point: a context switch flushes the on-chip TLBs and
//! PSCs but leaves the caches (and POM_TLB's in-DRAM array) warm, so as
//! switches become frequent the in-DRAM TLB's persistence should start
//! paying off — while PTP keeps paying regardless, because the *page
//! table itself* also survives switches in the caches.

use flatwalk_baselines::{PomTlbScheme, SchemeSimulation};
use flatwalk_bench::{pct, print_table, run_native, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimReport, TranslationConfig};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("Ablation — context-switch frequency ({})", mode.banner());

    let suite = if mode == Mode::Quick {
        vec![WorkloadSpec::mcf(), WorkloadSpec::omnetpp()]
    } else {
        vec![
            WorkloadSpec::mcf(),
            WorkloadSpec::omnetpp(),
            WorkloadSpec::dc(),
            WorkloadSpec::tiger(),
            WorkloadSpec::liblinear(),
        ]
    };
    let scenario = FragmentationScenario::NONE;

    let mut rows = Vec::new();
    for interval in [None, Some(100_000u64), Some(20_000), Some(5_000), Some(1_000)] {
        let mut o = opts.clone();
        o.context_switch_interval = interval;

        let base: Vec<SimReport> = suite
            .iter()
            .map(|w| run_native(w, &TranslationConfig::baseline(), &o, scenario))
            .collect();
        let ptp: Vec<SimReport> = suite
            .iter()
            .map(|w| run_native(w, &TranslationConfig::prioritized(), &o, scenario))
            .collect();
        let csalt: Vec<SimReport> = suite
            .iter()
            .map(|w| {
                let oo = o.clone().with_scenario(scenario);
                SchemeSimulation::build(
                    w.clone(),
                    PomTlbScheme::new(16 << 20, oo.pwc.clone()).csalt(),
                    &oo,
                )
                .run()
            })
            .collect();

        let geo = |r: &[SimReport]| {
            geometric_mean(
                &r.iter()
                    .zip(&base)
                    .map(|(x, b)| x.speedup_vs(b))
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let label = interval
            .map(|n| format!("every {n} ops"))
            .unwrap_or_else(|| "never".into());
        rows.push(vec![
            label,
            format!("{:.4}", base.iter().map(|r| r.ipc()).sum::<f64>() / base.len() as f64),
            pct(geo(&ptp)),
            pct(geo(&csalt)),
        ]);
    }
    print_table(
        &["context switch", "base mean ipc", "PTP vs base", "CSALT vs base"],
        &rows,
    );
    println!();
    println!("Finding: PTP keeps paying at every switch rate, and CSALT never");
    println!("recoups — because the radix page table's lines survive context");
    println!("switches in the (warm) caches just as well as CSALT's DRAM-TLB");
    println!("lines do. This is the paper's §7.1 point from the other side:");
    println!("CSALT's design needs many cold-cache processes, which the");
    println!("single-address-space methodology (theirs and ours) does not have.");
}
