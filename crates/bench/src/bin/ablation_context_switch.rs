//! Ablation — context-switch frequency (§7.1's CSALT discussion).
//!
//! The paper attributes CSALT's weak showing to its design point:
//! "their assumption of very frequent (every 10 ms) context switches,
//! which would make a PWC less effective." This experiment recreates
//! that design point: a context switch flushes the on-chip TLBs and
//! PSCs but leaves the caches (and POM_TLB's in-DRAM array) warm, so as
//! switches become frequent the in-DRAM TLB's persistence should start
//! paying off — while PTP keeps paying regardless, because the *page
//! table itself* also survives switches in the caches.

use flatwalk_baselines::{PomTlbScheme, SchemeSimulation};
use flatwalk_bench::{pct, print_table, run_cells, run_jobs, GridCell, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimReport, TranslationConfig};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("Ablation — context-switch frequency ({})", mode.banner());

    let suite = if mode == Mode::Quick {
        vec![WorkloadSpec::mcf(), WorkloadSpec::omnetpp()]
    } else {
        vec![
            WorkloadSpec::mcf(),
            WorkloadSpec::omnetpp(),
            WorkloadSpec::dc(),
            WorkloadSpec::tiger(),
            WorkloadSpec::liblinear(),
        ]
    };
    let scenario = FragmentationScenario::NONE;
    let intervals = [
        None,
        Some(100_000u64),
        Some(20_000),
        Some(5_000),
        Some(1_000),
    ];

    // Native cells: per interval, the baseline suite then the PTP suite.
    let mut native_cells: Vec<GridCell> = Vec::new();
    for &interval in &intervals {
        let mut o = opts.clone();
        o.context_switch_interval = interval;
        for cfg in [
            TranslationConfig::baseline(),
            TranslationConfig::prioritized(),
        ] {
            native_cells.extend(
                suite
                    .iter()
                    .map(|w| GridCell::new(w.clone(), cfg.clone(), scenario, o.clone())),
            );
        }
    }
    let native = run_cells("ablation_cs:native", native_cells);

    // CSALT jobs: per interval, the suite under the POM_TLB scheme.
    let csalt_jobs: Vec<(Option<u64>, WorkloadSpec)> = intervals
        .iter()
        .flat_map(|&interval| suite.iter().map(move |w| (interval, w.clone())))
        .collect();
    let csalt_all: Vec<SimReport> = run_jobs(
        "ablation_cs:csalt",
        csalt_jobs,
        opts.warmup_ops + opts.measure_ops,
        |(interval, w)| {
            let mut oo = opts.clone().with_scenario(scenario);
            oo.context_switch_interval = interval;
            SchemeSimulation::build(w, PomTlbScheme::new(16 << 20, oo.pwc.clone()).csalt(), &oo)
                .run()
        },
    );
    for r in &csalt_all {
        flatwalk_bench::emit::record_report("ablation_cs:csalt", r);
    }

    let mut rows = Vec::new();
    for ((interval, group), csalt) in intervals
        .iter()
        .zip(native.chunks(2 * suite.len()))
        .zip(csalt_all.chunks(suite.len()))
    {
        let (base, ptp) = group.split_at(suite.len());
        let geo = |r: &[SimReport]| {
            geometric_mean(
                &r.iter()
                    .zip(base)
                    .map(|(x, b)| x.speedup_vs(b))
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let label = interval
            .map(|n| format!("every {n} ops"))
            .unwrap_or_else(|| "never".into());
        rows.push(vec![
            label,
            format!(
                "{:.4}",
                base.iter().map(|r| r.ipc()).sum::<f64>() / base.len() as f64
            ),
            pct(geo(ptp)),
            pct(geo(csalt)),
        ]);
    }
    print_table(
        &[
            "context switch",
            "base mean ipc",
            "PTP vs base",
            "CSALT vs base",
        ],
        &rows,
    );
    println!();
    println!("Finding: PTP keeps paying at every switch rate, and CSALT never");
    println!("recoups — because the radix page table's lines survive context");
    println!("switches in the (warm) caches just as well as CSALT's DRAM-TLB");
    println!("lines do. This is the paper's §7.1 point from the other side:");
    println!("CSALT's design needs many cold-cache processes, which the");
    println!("single-address-space methodology (theirs and ours) does not have.");
    flatwalk_bench::finish("ablation_context_switch");
}
