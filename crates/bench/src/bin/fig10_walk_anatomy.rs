//! Figure 10 — per-benchmark anatomy of page walks at 0 % large pages:
//! memory accesses per walk (top) and walk latency in cycles (bottom),
//! for the baseline, FPT, PTP and FPT+PTP.

use flatwalk_bench::{grids, print_table, run_cells, Mode};
use flatwalk_sim::TranslationConfig;
use flatwalk_types::stats::mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "Figure 10 — accesses per walk and walk latency ({})",
        mode.banner()
    );

    if flatwalk_bench::run_scheme_filtered("fig10", || grids::fig10(mode, &opts)) {
        flatwalk_bench::finish("fig10_walk_anatomy");
        return;
    }

    let suite = WorkloadSpec::suite();
    let configs = TranslationConfig::fig9_set();

    let all = run_cells("fig10", grids::fig10(mode, &opts).cells);

    let mut acc_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut acc_means: Vec<(String, f64)> = Vec::new();
    let mut lat_means: Vec<(String, f64)> = Vec::new();
    let mut histograms: Vec<(String, flatwalk_types::stats::LatencyHistogram)> = Vec::new();

    for (cfg, reports) in configs.iter().zip(all.chunks(suite.len())) {
        let mut merged = flatwalk_types::stats::LatencyHistogram::default();
        for r in reports {
            merged.merge(&r.walk.latency_histogram);
        }
        histograms.push((cfg.label.to_string(), merged));
        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        let lats: Vec<f64> = reports.iter().map(|r| r.walk.latency_per_walk()).collect();

        let mut arow = vec![cfg.label.to_string()];
        arow.extend(accs.iter().map(|v| format!("{v:.2}")));
        arow.push(format!("{:.2}", mean(&accs).unwrap()));
        acc_rows.push(arow);
        acc_means.push((cfg.label.to_string(), mean(&accs).unwrap()));

        let mut lrow = vec![cfg.label.to_string()];
        lrow.extend(lats.iter().map(|v| format!("{v:.0}")));
        lrow.push(format!("{:.1}", mean(&lats).unwrap()));
        lat_rows.push(lrow);
        lat_means.push((cfg.label.to_string(), mean(&lats).unwrap()));
    }

    let mut headers: Vec<&str> = vec!["config"];
    let names: Vec<String> = suite.iter().map(|w| w.name.to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    headers.push("MEAN");

    println!();
    println!("--- memory accesses per page walk ---");
    print_table(&headers, &acc_rows);
    println!();
    println!("--- walk latency (cycles) ---");
    print_table(&headers, &lat_rows);

    println!();
    println!("--- walk latency distribution (p50 / p99, bucket upper bounds) ---");
    for (label, merged) in &histograms {
        println!(
            "  {:<9} p50 = {:>4} cycles   p99 = {:>5} cycles",
            label,
            merged.percentile(0.50),
            merged.percentile(0.99),
        );
    }

    println!();
    for (l, m) in &acc_means {
        println!("  {l:<9} mean accesses/walk {m:.2}");
    }
    for (l, m) in &lat_means {
        println!("  {l:<9} mean walk latency  {m:.1}");
    }
    println!();
    println!("Paper reference: baseline ≈1.5 accesses/walk on average (gups/random");
    println!("2.5 max); FPT = 1.0 for every workload. Latency: 50.9 → 33.0 (PTP)");
    println!("→ 29.1 (FPT+PTP) cycles on average.");
    flatwalk_bench::finish("fig10_walk_anatomy");
}
