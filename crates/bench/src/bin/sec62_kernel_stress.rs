//! §6.2 — kernel prototype stress test: rate of 2 MB allocation
//! failures (fallbacks to conventional 4 KB table nodes) for a
//! 100-process kernel build under 6 % and 50 % memory oversubscription.

use flatwalk_bench::{print_table, run_jobs, Mode};
use flatwalk_os::{kernel_build_stress, StressConfig};

fn main() {
    let mode = Mode::from_args();
    println!(
        "§6.2 — flattened-table allocation failures under load ({})",
        mode.banner()
    );

    let invocations = match mode {
        Mode::Quick => 600,
        Mode::Std => 3464,
        Mode::Paper => 3464,
    };
    let paper = [(0.06, 0.005), (0.50, 0.12)];

    let outs = run_jobs("sec62", paper.to_vec(), invocations, |(ovs, _)| {
        kernel_build_stress(&StressConfig {
            oversubscription: ovs,
            invocations,
            ..StressConfig::default()
        })
    });

    let mut rows = Vec::new();
    for ((ovs, paper_rate), out) in paper.iter().zip(&outs) {
        rows.push(vec![
            format!("{:.0}%", ovs * 100.0),
            format!("{}", out.invocations),
            format!("{}", out.invocations_with_failure),
            format!("{:.2}%", out.invocation_failure_rate() * 100.0),
            format!("{:.1}%", paper_rate * 100.0),
            format!("{}", out.reclaimed_pages),
            format!("{}", out.compactions),
        ]);
    }
    print_table(
        &[
            "oversub",
            "invocations",
            "failed",
            "measured rate",
            "paper rate",
            "pages swapped",
            "compactions",
        ],
        &rows,
    );
    println!();
    println!("Every failure took the graceful fallback path (two 4 KB nodes).");
    flatwalk_bench::finish("sec62_kernel_stress");
}
