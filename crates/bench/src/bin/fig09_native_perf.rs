//! Figure 9 — native performance of FPT, PTP and FPT+PTP against the
//! state of the art (ASAP, ECH, CSALT), across the three large-page
//! fragmentation scenarios, normalized to the 0 % LP baseline.

use flatwalk_baselines::{AsapScheme, EchScheme, PomTlbScheme, SchemeSimulation};
use flatwalk_bench::{grids, pct, print_table, run_cells, run_jobs, scenarios, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimOptions, SimReport, TranslationConfig};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn run_scheme(
    name: &str,
    spec: &WorkloadSpec,
    opts: &SimOptions,
    scenario: FragmentationScenario,
) -> SimReport {
    let opts = opts.clone().with_scenario(scenario);
    let scaled = spec.clone().scaled_down(opts.footprint_divisor);
    let mixed = scenario.large_page_fraction > 0.0;
    match name {
        "ASAP" => {
            SchemeSimulation::build(spec.clone(), AsapScheme::new(opts.pwc.clone()), &opts).run()
        }
        "ECH" => {
            SchemeSimulation::build(spec.clone(), EchScheme::new(scaled.footprint, mixed), &opts)
                .run()
        }
        "CSALT" => SchemeSimulation::build(
            spec.clone(),
            PomTlbScheme::new(16 << 20, opts.pwc.clone()).csalt(),
            &opts,
        )
        .run(),
        other => panic!("unknown scheme {other}"),
    }
}

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "Figure 9 — native performance vs state of the art ({})",
        mode.banner()
    );

    if flatwalk_bench::run_scheme_filtered("fig09:native", || grids::fig09_native(mode, &opts)) {
        flatwalk_bench::finish("fig09_native_perf");
        return;
    }

    let suite = grids::fig09_suite(mode);
    let ours = TranslationConfig::fig9_set();
    let schemes = ["ASAP", "ECH", "CSALT"];

    // Normalization: every scenario's results are shown relative to the
    // *0 % LP* baseline, as in the stacked bars of Fig. 9 — computed
    // once and shared across scenarios (cells are deterministic).
    let base0 = run_cells("fig09:base", grids::fig09_base(mode, &opts).cells);

    // The full (scenario × config × workload) grid for our configs, and
    // the (scenario × scheme × workload) grid for the prior schemes.
    let native_reports = run_cells("fig09:native", grids::fig09_native(mode, &opts).cells);

    let scheme_jobs: Vec<(&str, WorkloadSpec, FragmentationScenario)> = scenarios()
        .iter()
        .flat_map(|(scenario, _)| {
            schemes
                .iter()
                .flat_map(|s| suite.iter().map(|w| (*s, w.clone(), *scenario)))
        })
        .collect();
    let scheme_reports = run_jobs(
        "fig09:schemes",
        scheme_jobs,
        opts.warmup_ops + opts.measure_ops,
        |(scheme, spec, scenario)| run_scheme(scheme, &spec, &opts, scenario),
    );
    for r in &scheme_reports {
        flatwalk_bench::emit::record_report("fig09:schemes", r);
    }

    let mut native_chunks = native_reports.chunks(suite.len());
    let mut scheme_chunks = scheme_reports.chunks(suite.len());

    for (_, label) in scenarios() {
        let mut rows = Vec::new();
        let mut geo: Vec<(String, f64)> = Vec::new();

        let mut eval = |label: String, reports: &[SimReport]| {
            let speedups: Vec<f64> = reports
                .iter()
                .map(|r| {
                    let b = base0.iter().find(|b| b.workload == r.workload).unwrap();
                    r.speedup_vs(b)
                })
                .collect();
            let g = geometric_mean(&speedups).unwrap();
            let mut row = vec![label.clone()];
            row.extend(speedups.iter().map(|s| pct(*s)));
            row.push(pct(g));
            rows.push(row);
            geo.push((label, g));
        };

        for cfg in &ours {
            eval(cfg.label.to_string(), native_chunks.next().unwrap());
        }
        for scheme in schemes {
            eval(scheme.to_string(), scheme_chunks.next().unwrap());
        }

        println!();
        println!("=== {label} (normalized to 0% LP baseline) ===");
        let mut headers: Vec<&str> = vec!["config"];
        let names: Vec<String> = suite.iter().map(|w| w.name.to_string()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        headers.push("GEOMEAN");
        print_table(&headers, &rows);
        println!();
        for (l, g) in geo {
            println!("  {l:<9} geomean {}", pct(g));
        }
    }
    println!();
    println!("Paper reference (0% LP geomeans): FPT +2.3%, PTP +6.8%, FPT+PTP +9.2%,");
    println!("ASAP +1.7%, ECH -5.9%, CSALT +0.3%; improvements shrink as LP% grows.");
    flatwalk_bench::finish("fig09_native_perf");
}
