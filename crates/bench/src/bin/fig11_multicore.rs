//! Figure 11 / Table 2 — multiprogrammed multicore evaluation: four
//! cores, 32 MB shared LLC, normalized weighted speedup for the Table 2
//! mixes and the geometric mean over all 20 mixes.

use std::collections::HashMap;

use flatwalk_bench::{pct, print_table, run_cells, run_jobs, GridCell, Mode};
use flatwalk_sim::{
    all_mixes, mean_weighted_speedup, multicore_options, table2_mixes, MulticoreReport,
    MulticoreSimulation, TranslationConfig,
};
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let mut opts = multicore_options();
    // Multicore runs are 4x the work; scale with the mode.
    match mode {
        Mode::Quick => {
            opts.footprint_divisor = 16;
            opts.phys_mem_bytes = 8 << 30;
            opts.warmup_ops = 40_000;
            opts.measure_ops = 100_000;
        }
        Mode::Std => {
            opts.footprint_divisor = 4;
            opts.phys_mem_bytes = 16 << 30;
            opts.warmup_ops = 80_000;
            opts.measure_ops = 200_000;
        }
        Mode::Paper => {
            opts.footprint_divisor = 1;
            opts.phys_mem_bytes = 64 << 30;
            opts.warmup_ops = 200_000;
            opts.measure_ops = 500_000;
        }
    }
    println!("Figure 11 — multicore weighted speedup ({})", mode.banner());
    println!("Table 2 mixes:");
    for m in table2_mixes() {
        println!("  mix {}: {}", m.id, m.describe());
    }

    let mixes = if mode == Mode::Quick {
        table2_mixes()
    } else {
        all_mixes()
    };
    let configs = TranslationConfig::fig9_set();

    // Alone-IPC denominators use the baseline system: one native run
    // per distinct benchmark, fanned across the pool.
    let mut names: Vec<&'static str> = Vec::new();
    for mix in &mixes {
        for name in mix.parts {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    let alone_cells: Vec<GridCell> = names
        .iter()
        .map(|name| {
            let spec =
                WorkloadSpec::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
            GridCell::new(
                spec,
                TranslationConfig::baseline(),
                opts.scenario,
                opts.clone(),
            )
        })
        .collect();
    let alone: HashMap<&'static str, f64> = names
        .iter()
        .zip(run_cells("fig11:alone", alone_cells))
        .map(|(name, r)| (*name, r.ipc()))
        .collect();

    // The (config × mix) grid of four-core simulations.
    let jobs: Vec<(TranslationConfig, usize)> = configs
        .iter()
        .flat_map(|cfg| (0..mixes.len()).map(|i| (cfg.clone(), i)))
        .collect();
    let grid: Vec<MulticoreReport> = run_jobs(
        "fig11:mixes",
        jobs,
        4 * (opts.warmup_ops + opts.measure_ops),
        |(cfg, i)| MulticoreSimulation::build(&mixes[i], cfg, &opts).run(),
    );
    for m in &grid {
        for core in &m.cores {
            flatwalk_bench::emit::record_report("fig11:mixes", core);
        }
    }

    let mut rows = Vec::new();
    for (cfg, reports) in configs.iter().zip(grid.chunks(mixes.len())) {
        let mut row = vec![cfg.label.to_string()];
        for r in reports.iter().filter(|r| r.mix.id <= 8) {
            let alone_vec: Vec<f64> = r.mix.parts.iter().map(|n| alone[n]).collect();
            row.push(format!("{:.3}", r.weighted_speedup(&alone_vec).unwrap()));
        }
        let g = mean_weighted_speedup(reports, &alone).unwrap();
        row.push(format!("{:.3}", g));
        rows.push((cfg.label, row, g));
    }

    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(
        mixes
            .iter()
            .filter(|m| m.id <= 8)
            .map(|m| format!("mix{}", m.id)),
    );
    headers.push(format!("GEOMEAN({})", mixes.len()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        &hrefs,
        &rows.iter().map(|(_, r, _)| r.clone()).collect::<Vec<_>>(),
    );

    println!();
    let base_g = rows[0].2;
    for (label, _, g) in &rows {
        println!("  {label:<9} vs baseline: {}", pct(g / base_g));
    }
    println!();
    println!("Paper reference (0% LP): FPT +2.2%, PTP +9.2%, FPT+PTP +11.5% mean");
    println!("weighted speedup over 20 mixes.");
    flatwalk_bench::finish("fig11_multicore");
}
