//! Figure 11 / Table 2 — multiprogrammed multicore evaluation: four
//! cores, 32 MB shared LLC, normalized weighted speedup for the Table 2
//! mixes and the geometric mean over all 20 mixes.

use std::collections::HashMap;

use flatwalk_bench::{pct, print_table, Mode};
use flatwalk_sim::{
    all_mixes, alone_ipcs, mean_weighted_speedup, multicore_options, table2_mixes,
    MulticoreReport, MulticoreSimulation, TranslationConfig,
};

fn main() {
    let mode = Mode::from_args();
    let mut opts = multicore_options();
    // Multicore runs are 4x the work; scale with the mode.
    match mode {
        Mode::Quick => {
            opts.footprint_divisor = 16;
            opts.phys_mem_bytes = 8 << 30;
            opts.warmup_ops = 40_000;
            opts.measure_ops = 100_000;
        }
        Mode::Std => {
            opts.footprint_divisor = 4;
            opts.phys_mem_bytes = 16 << 30;
            opts.warmup_ops = 80_000;
            opts.measure_ops = 200_000;
        }
        Mode::Paper => {
            opts.footprint_divisor = 1;
            opts.phys_mem_bytes = 64 << 30;
            opts.warmup_ops = 200_000;
            opts.measure_ops = 500_000;
        }
    }
    println!("Figure 11 — multicore weighted speedup ({})", mode.banner());
    println!("Table 2 mixes:");
    for m in table2_mixes() {
        println!("  mix {}: {}", m.id, m.describe());
    }

    let mixes = if mode == Mode::Quick {
        table2_mixes()
    } else {
        all_mixes()
    };
    let configs = TranslationConfig::fig9_set();

    // Alone-IPC denominators use the baseline system.
    let alone: HashMap<&'static str, f64> =
        alone_ipcs(&mixes, &TranslationConfig::baseline(), &opts);

    let mut rows = Vec::new();
    for cfg in &configs {
        let reports: Vec<MulticoreReport> = mixes
            .iter()
            .map(|m| MulticoreSimulation::build(m, cfg.clone(), &opts).run())
            .collect();
        let mut row = vec![cfg.label.to_string()];
        for r in reports.iter().filter(|r| r.mix.id <= 8) {
            let alone_vec: Vec<f64> = r.mix.parts.iter().map(|n| alone[n]).collect();
            row.push(format!("{:.3}", r.weighted_speedup(&alone_vec).unwrap()));
        }
        let g = mean_weighted_speedup(&reports, &alone).unwrap();
        row.push(format!("{:.3}", g));
        rows.push((cfg.label, row, g));
    }

    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(
        mixes
            .iter()
            .filter(|m| m.id <= 8)
            .map(|m| format!("mix{}", m.id)),
    );
    headers.push(format!("GEOMEAN({})", mixes.len()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hrefs, &rows.iter().map(|(_, r, _)| r.clone()).collect::<Vec<_>>());

    println!();
    let base_g = rows[0].2;
    for (label, _, g) in &rows {
        println!("  {label:<9} vs baseline: {}", pct(g / base_g));
    }
    println!();
    println!("Paper reference (0% LP): FPT +2.2%, PTP +9.2%, FPT+PTP +11.5% mean");
    println!("weighted speedup over 20 mixes.");
}
