//! §7.5 — flattening other levels: L3+L2 flattening (the kernel
//! prototype's target) versus L4+L3 & L2+L1, native and virtualized,
//! across the large-page scenarios. L3+L2 is designed to win when 2 MB
//! data pages dominate (single-access large-page walks, Fig. 3 right).

use flatwalk_bench::{
    geomean_speedup, grids, pct, print_table, run_cells, run_jobs, scenarios, Mode,
};
use flatwalk_os::FragmentationScenario;
use flatwalk_pt::Layout;
use flatwalk_sim::{SimReport, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.5 — flattening other levels ({})", mode.banner());

    if flatwalk_bench::run_scheme_filtered("sec75:native", || grids::sec75_native(mode, &opts)) {
        flatwalk_bench::finish("sec75_flatten_levels");
        return;
    }

    let suite = grids::sec75_suite(mode);
    let native_configs = grids::sec75_native_configs();

    // Native: per scenario, the baseline suite then each flattening.
    let native = run_cells("sec75:native", grids::sec75_native(mode, &opts).cells);

    // Virtualized: per scenario, the 2-D baseline then both-dimension
    // flattening with each layout choice.
    let vchoices: [(&'static str, Option<Layout>); 3] = [
        ("Base-2D", None),
        ("GF+HF (L3+L2)", Some(Layout::flat_l3l2())),
        ("GF+HF (L4+L3,L2+L1)", Some(Layout::flat_l4l3_l2l1())),
    ];
    let vjobs: Vec<(
        FragmentationScenario,
        &'static str,
        Option<Layout>,
        WorkloadSpec,
    )> = scenarios()
        .iter()
        .flat_map(|(scenario, _)| {
            vchoices.iter().flat_map(|(vlabel, layout)| {
                suite
                    .iter()
                    .map(|w| (*scenario, *vlabel, layout.clone(), w.clone()))
            })
        })
        .collect();
    let virt: Vec<SimReport> = run_jobs(
        "sec75:virt",
        vjobs,
        opts.warmup_ops + opts.measure_ops,
        |(scenario, vlabel, layout, w)| {
            let o = opts.clone().with_scenario(scenario);
            match layout {
                None => VirtualizedSimulation::build(w, VirtConfig::fig12_set()[0], &o).run(),
                Some(layout) => {
                    let cfg = VirtConfig {
                        label: vlabel,
                        guest_flat: true,
                        host_flat: true,
                        ptp: false,
                    };
                    VirtualizedSimulation::build_custom(w, cfg, layout.clone(), layout, &o).run()
                }
            }
        },
    );

    for r in &virt {
        flatwalk_bench::emit::record_report("sec75:virt", r);
    }

    let mut rows = Vec::new();
    let mut native_chunks = native.chunks(suite.len());
    for (_, label) in scenarios() {
        let base = native_chunks.next().unwrap();
        for cfg in &native_configs[1..] {
            let reports = native_chunks.next().unwrap();
            rows.push(vec![
                "native".to_string(),
                label.to_string(),
                cfg.label.to_string(),
                pct(geomean_speedup(reports, base)),
            ]);
        }
    }
    let mut virt_chunks = virt.chunks(suite.len());
    for (_, label) in scenarios() {
        let base = virt_chunks.next().unwrap();
        for (vlabel, _) in &vchoices[1..] {
            let reports = virt_chunks.next().unwrap();
            let speedups: Vec<f64> = reports
                .iter()
                .zip(base)
                .map(|(r, b)| r.speedup_vs(b))
                .collect();
            rows.push(vec![
                "virtualized".to_string(),
                label.to_string(),
                vlabel.to_string(),
                pct(geometric_mean(&speedups).unwrap()),
            ]);
        }
    }
    print_table(
        &["system", "scenario", "flattening", "geomean speedup"],
        &rows,
    );
    println!();
    println!("Paper reference: L3+L2 gives +0.2/+0.3/+0.1 pp native and +0.7/+1.0/");
    println!("+1.2 pp virtualized at 0/50/100% LP; at 100% LP it beats L4+L3,L2+L1");
    println!("by 0.3 pp (native) / 0.8 pp (virtualized).");
    flatwalk_bench::finish("sec75_flatten_levels");
}
