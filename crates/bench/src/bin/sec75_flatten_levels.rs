//! §7.5 — flattening other levels: L3+L2 flattening (the kernel
//! prototype's target) versus L4+L3 & L2+L1, native and virtualized,
//! across the large-page scenarios. L3+L2 is designed to win when 2 MB
//! data pages dominate (single-access large-page walks, Fig. 3 right).

use flatwalk_bench::{geomean_speedup, pct, print_table, run_native, scenarios, Mode};
use flatwalk_pt::Layout;
use flatwalk_sim::{SimReport, TranslationConfig, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.5 — flattening other levels ({})", mode.banner());

    let suite = if mode == Mode::Quick {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::bfs(),
            WorkloadSpec::hashjoin(),
        ]
    } else {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::bfs(),
            WorkloadSpec::mcf(),
            WorkloadSpec::hashjoin(),
            WorkloadSpec::graph500(),
            WorkloadSpec::liblinear(),
        ]
    };

    let mut rows = Vec::new();
    // Native.
    for (scenario, label) in scenarios() {
        let base: Vec<SimReport> = suite
            .iter()
            .map(|w| run_native(w, &TranslationConfig::baseline(), &opts, scenario))
            .collect();
        let flat3 = TranslationConfig {
            label: "FPT(1GB L4+L3+L2)",
            layout: Layout::flat_l4l3l2(),
            ptp: false,
            nf_threshold: None,
        };
        for cfg in [
            TranslationConfig::flattened_l3l2(),
            flat3,
            TranslationConfig::flattened(),
        ] {
            let reports: Vec<SimReport> = suite
                .iter()
                .map(|w| run_native(w, &cfg, &opts, scenario))
                .collect();
            rows.push(vec![
                "native".to_string(),
                label.to_string(),
                cfg.label.to_string(),
                pct(geomean_speedup(&reports, &base)),
            ]);
        }
    }
    // Virtualized: flatten both dimensions with each choice.
    for (scenario, label) in scenarios() {
        let o = opts.clone().with_scenario(scenario);
        let base: Vec<SimReport> = suite
            .iter()
            .map(|w| {
                VirtualizedSimulation::build(w.clone(), VirtConfig::fig12_set()[0], &o).run()
            })
            .collect();
        for (vlabel, layout) in [
            ("GF+HF (L3+L2)", Layout::flat_l3l2()),
            ("GF+HF (L4+L3,L2+L1)", Layout::flat_l4l3_l2l1()),
        ] {
            let cfg = VirtConfig {
                label: vlabel,
                guest_flat: true,
                host_flat: true,
                ptp: false,
            };
            let reports: Vec<SimReport> = suite
                .iter()
                .map(|w| {
                    VirtualizedSimulation::build_custom(
                        w.clone(),
                        cfg,
                        layout.clone(),
                        layout.clone(),
                        &o,
                    )
                    .run()
                })
                .collect();
            let speedups: Vec<f64> = reports
                .iter()
                .zip(&base)
                .map(|(r, b)| r.speedup_vs(b))
                .collect();
            rows.push(vec![
                "virtualized".to_string(),
                label.to_string(),
                vlabel.to_string(),
                pct(geometric_mean(&speedups).unwrap()),
            ]);
        }
    }
    print_table(&["system", "scenario", "flattening", "geomean speedup"], &rows);
    println!();
    println!("Paper reference: L3+L2 gives +0.2/+0.3/+0.1 pp native and +0.7/+1.0/");
    println!("+1.2 pp virtualized at 0/50/100% LP; at 100% LP it beats L4+L3,L2+L1");
    println!("by 0.3 pp (native) / 0.8 pp (virtualized).");
}
