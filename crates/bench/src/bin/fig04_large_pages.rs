//! Figure 4 — large data pages vs flattened L2+L1 nodes: plain
//! flattening (FPT-NF) replicates 512 L1 entries per 2 MB page and
//! loses performance; the §3.4 no-flatten regions (FPT) recover it.
//! Evaluated at 50 % and 100 % large pages, normalized to the 0 % LP
//! baseline (THP = conventional table with large pages).

use flatwalk_bench::{pct, print_table, run_cells, GridCell, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::TranslationConfig;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "Figure 4 — replicated entries vs NF regions ({})",
        mode.banner()
    );

    let suite = [
        WorkloadSpec::gups(),
        WorkloadSpec::xsbench(),
        WorkloadSpec::graph500(),
        WorkloadSpec::hashjoin(),
    ];
    let configs = [
        ("THP", TranslationConfig::baseline()),
        ("FPT (no NF)", TranslationConfig::flattened_no_nf()),
        ("FPT+NF", TranslationConfig::flattened()),
    ];
    let scenarios = [
        (FragmentationScenario::HALF, "50% LP"),
        (FragmentationScenario::FULL, "100% LP"),
    ];

    // Per workload: its 0 % LP baseline followed by the scenario grid.
    let cells: Vec<GridCell> = suite
        .iter()
        .flat_map(|spec| {
            std::iter::once(GridCell::new(
                spec.clone(),
                TranslationConfig::baseline(),
                FragmentationScenario::NONE,
                opts.clone(),
            ))
            .chain(scenarios.iter().flat_map(|(scenario, _)| {
                configs.iter().map(|(_, cfg)| {
                    GridCell::new(spec.clone(), cfg.clone(), *scenario, opts.clone())
                })
            }))
        })
        .collect();
    let per_spec = 1 + scenarios.len() * configs.len();
    let all = run_cells("fig04", cells);

    let mut rows = Vec::new();
    for (spec, group) in suite.iter().zip(all.chunks(per_spec)) {
        let base0 = &group[0];
        let mut rest = group[1..].iter();
        for (_, slabel) in scenarios {
            for (label, _) in &configs {
                let r = rest.next().unwrap();
                rows.push(vec![
                    spec.name.to_string(),
                    slabel.to_string(),
                    label.to_string(),
                    pct(r.speedup_vs(base0)),
                    format!("{}", r.census.replicated_entries),
                    format!("{:.2}", r.walk.accesses_per_walk()),
                ]);
            }
        }
    }
    print_table(
        &[
            "bench",
            "scenario",
            "config",
            "vs 0%LP base",
            "replicated",
            "acc/walk",
        ],
        &rows,
    );
    println!();
    println!("Paper reference: FPT without NF loses performance against THP for");
    println!("2 MB-heavy mappings; FPT+NF surpasses the baseline (Fig. 4).");
    flatwalk_bench::finish("fig04_large_pages");
}
