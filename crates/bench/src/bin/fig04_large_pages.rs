//! Figure 4 — large data pages vs flattened L2+L1 nodes: plain
//! flattening (FPT-NF) replicates 512 L1 entries per 2 MB page and
//! loses performance; the §3.4 no-flatten regions (FPT) recover it.
//! Evaluated at 50 % and 100 % large pages, normalized to the 0 % LP
//! baseline (THP = conventional table with large pages).

use flatwalk_bench::{grids, pct, print_table, run_cells, Mode};

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "Figure 4 — replicated entries vs NF regions ({})",
        mode.banner()
    );

    if flatwalk_bench::run_scheme_filtered("fig04", || grids::fig04(mode, &opts)) {
        flatwalk_bench::finish("fig04_large_pages");
        return;
    }

    let suite = grids::fig04_suite();
    let configs = grids::fig04_configs();
    let scenarios = ["50% LP", "100% LP"];

    // Per workload: its 0 % LP baseline followed by the scenario grid.
    let per_spec = 1 + scenarios.len() * configs.len();
    let all = run_cells("fig04", grids::fig04(mode, &opts).cells);

    let mut rows = Vec::new();
    for (spec, group) in suite.iter().zip(all.chunks(per_spec)) {
        let base0 = &group[0];
        let mut rest = group[1..].iter();
        for slabel in scenarios {
            for (label, _) in &configs {
                let r = rest.next().unwrap();
                rows.push(vec![
                    spec.name.to_string(),
                    slabel.to_string(),
                    label.to_string(),
                    pct(r.speedup_vs(base0)),
                    format!("{}", r.census.replicated_entries),
                    format!("{:.2}", r.walk.accesses_per_walk()),
                ]);
            }
        }
    }
    print_table(
        &[
            "bench",
            "scenario",
            "config",
            "vs 0%LP base",
            "replicated",
            "acc/walk",
        ],
        &rows,
    );
    println!();
    println!("Paper reference: FPT without NF loses performance against THP for");
    println!("2 MB-heavy mappings; FPT+NF surpasses the baseline (Fig. 4).");
    flatwalk_bench::finish("fig04_large_pages");
}
