//! Figure 4 — large data pages vs flattened L2+L1 nodes: plain
//! flattening (FPT-NF) replicates 512 L1 entries per 2 MB page and
//! loses performance; the §3.4 no-flatten regions (FPT) recover it.
//! Evaluated at 50 % and 100 % large pages, normalized to the 0 % LP
//! baseline (THP = conventional table with large pages).

use flatwalk_bench::{pct, print_table, run_native, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::TranslationConfig;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("Figure 4 — replicated entries vs NF regions ({})", mode.banner());

    let suite = [
        WorkloadSpec::gups(),
        WorkloadSpec::xsbench(),
        WorkloadSpec::graph500(),
        WorkloadSpec::hashjoin(),
    ];
    let configs = [
        ("THP", TranslationConfig::baseline()),
        ("FPT (no NF)", TranslationConfig::flattened_no_nf()),
        ("FPT+NF", TranslationConfig::flattened()),
    ];

    let mut rows = Vec::new();
    for spec in &suite {
        let base0 = run_native(
            spec,
            &TranslationConfig::baseline(),
            &opts,
            FragmentationScenario::NONE,
        );
        for (scenario, slabel) in [
            (FragmentationScenario::HALF, "50% LP"),
            (FragmentationScenario::FULL, "100% LP"),
        ] {
            for (label, cfg) in &configs {
                let r = run_native(spec, cfg, &opts, scenario);
                rows.push(vec![
                    spec.name.to_string(),
                    slabel.to_string(),
                    label.to_string(),
                    pct(r.speedup_vs(&base0)),
                    format!("{}", r.census.replicated_entries),
                    format!("{:.2}", r.walk.accesses_per_walk()),
                ]);
            }
        }
    }
    print_table(
        &["bench", "scenario", "config", "vs 0%LP base", "replicated", "acc/walk"],
        &rows,
    );
    println!();
    println!("Paper reference: FPT without NF loses performance against THP for");
    println!("2 MB-heavy mappings; FPT+NF surpasses the baseline (Fig. 4).");
}
