//! Tables 1 and 3 — the simulated system configurations, printed from
//! the code that actually configures the simulator (so the tables in
//! the paper and the configs in this repo cannot drift apart).

use flatwalk_sim::SimOptions;

fn print_options(title: &str, opts: &SimOptions) {
    println!("=== {title} ===");
    let h = &opts.hierarchy;
    println!(
        "  L1 D-cache   {:>6} KB, {}-way, {} cycles",
        h.l1.size_bytes >> 10,
        h.l1.ways,
        h.l1.latency
    );
    println!(
        "  L2 cache     {:>6} KB, {}-way, {} cycles  (PT priority wired: {})",
        h.l2.size_bytes >> 10,
        h.l2.ways,
        h.l2.latency,
        h.l2.pt_priority
    );
    println!(
        "  L3 cache     {:>6} MB, {}-way, {} cycles  (PT priority wired: {})",
        h.l3.size_bytes >> 20,
        h.l3.ways,
        h.l3.latency,
        h.l3.pt_priority
    );
    println!("  DRAM         {} cycles load-to-use", h.dram_latency);
    println!(
        "  L1 TLB       4K: {}-entry/{}-way   2M: {}-entry/{}-way   1G: {}-entry/{}-way (1 cycle, parallel)",
        opts.tlb.l1_4k.entries,
        opts.tlb.l1_4k.ways,
        opts.tlb.l1_2m.entries,
        opts.tlb.l1_2m.ways,
        opts.tlb.l1_1g.entries,
        opts.tlb.l1_1g.ways,
    );
    println!(
        "  L2 TLB       {}-entry/{}-way, {} cycles (4K/2M unified)",
        opts.tlb.l2_entries, opts.tlb.l2_ways, opts.tlb.l2_latency
    );
    print!("  PWC (PSC)    ");
    for d in &opts.pwc.depths {
        print!("{}-bit: {} entries  ", d.prefix_bits, d.entries);
    }
    println!("({} cycle, parallel)", opts.pwc.latency);
    println!(
        "  Nested TLB   {}-entry fully associative, 1 cycle",
        opts.nested_tlb_entries
    );
    println!();
}

fn main() {
    println!("Simulated system configurations (paper Tables 1 and 3)\n");
    print_options("Table 1 — server (gem5-equivalent)", &SimOptions::server());
    print_options(
        "Table 3 — mobile (industrial-simulator-equivalent)",
        &SimOptions::mobile(),
    );
    println!("Multicore (§7.1): four Table 1 cores, 32 MB shared L3, per-owner");
    println!("partition IDs in cache tags (§6.1).");
    flatwalk_bench::finish("table01_config");
}
