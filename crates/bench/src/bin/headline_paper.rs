//! The paper's two headline comparisons at full paper scale
//! (footprint divisor 1): native Fig. 9 geomeans for Base/FPT/PTP/
//! FPT+PTP at 0 % LP, and virtualized Fig. 12 geomeans for
//! Base-2D/GF+HF/GF+HF+PTP.

use flatwalk_bench::{pct, print_table, run_cells, run_jobs, GridCell};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimOptions, SimReport, TranslationConfig, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::{geometric_mean, mean};
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mut opts = SimOptions::server();
    opts.warmup_ops = 200_000;
    opts.measure_ops = 600_000;
    println!("Headline comparisons at paper scale (divisor 1, 0% LP)\n");

    let suite = WorkloadSpec::suite();

    // --- native: one batch over the Fig. 9 configs (Base first) ---
    let configs = TranslationConfig::fig9_set();
    let cells: Vec<GridCell> = configs
        .iter()
        .flat_map(|cfg| {
            suite.iter().map(|w| {
                GridCell::new(
                    w.clone(),
                    cfg.clone(),
                    FragmentationScenario::NONE,
                    opts.clone(),
                )
            })
        })
        .collect();
    let native = run_cells("headline:native", cells);
    let base = &native[..suite.len()];

    let mut rows = Vec::new();
    for (cfg, reports) in configs.iter().zip(native.chunks(suite.len())) {
        let speedups: Vec<f64> = reports
            .iter()
            .zip(base)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        let lats: Vec<f64> = reports.iter().map(|r| r.walk.latency_per_walk()).collect();
        rows.push(vec![
            cfg.label.to_string(),
            pct(geometric_mean(&speedups).unwrap()),
            format!("{:.2}", mean(&accs).unwrap()),
            format!("{:.1}", mean(&lats).unwrap()),
        ]);
        eprintln!("native {} done", cfg.label);
    }
    println!("--- native (paper: FPT +2.3%, PTP +6.8%, FPT+PTP +9.2%;");
    println!("    accesses 1.5→1.0; latency 50.9→33.0→29.1) ---");
    print_table(
        &[
            "config",
            "geomean speedup",
            "mean acc/walk",
            "mean walk-lat",
        ],
        &rows,
    );

    // --- virtualized ---
    let vconfigs: Vec<VirtConfig> = VirtConfig::fig12_set()
        .into_iter()
        .filter(|c| matches!(c.label, "Base-2D" | "GF+HF" | "GF+HF+PTP"))
        .collect();
    let vjobs: Vec<(VirtConfig, WorkloadSpec)> = vconfigs
        .iter()
        .flat_map(|cfg| suite.iter().map(|w| (*cfg, w.clone())))
        .collect();
    let virt: Vec<SimReport> = run_jobs(
        "headline:virt",
        vjobs,
        opts.warmup_ops + opts.measure_ops,
        |(cfg, w)| VirtualizedSimulation::build(w, cfg, &opts).run(),
    );
    for r in &virt {
        flatwalk_bench::emit::record_report("headline:virt", r);
    }
    let vbase = &virt[..suite.len()];
    let mut rows = Vec::new();
    for (cfg, reports) in vconfigs.iter().zip(virt.chunks(suite.len())) {
        let speedups: Vec<f64> = reports
            .iter()
            .zip(vbase)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        rows.push(vec![
            cfg.label.to_string(),
            pct(geometric_mean(&speedups).unwrap()),
            format!("{:.2}", mean(&accs).unwrap()),
        ]);
        eprintln!("virt {} done", cfg.label);
    }
    println!();
    println!("--- virtualized (paper: GF+HF +7.1%, GF+HF+PTP +14.0%;");
    println!("    accesses 4.4→2.8) ---");
    print_table(&["config", "geomean speedup", "mean acc/walk"], &rows);
    flatwalk_bench::finish("headline_paper");
}
