//! The paper's two headline comparisons at full paper scale
//! (footprint divisor 1): native Fig. 9 geomeans for Base/FPT/PTP/
//! FPT+PTP at 0 % LP, and virtualized Fig. 12 geomeans for
//! Base-2D/GF+HF/GF+HF+PTP.

use flatwalk_bench::{pct, print_table, run_native};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimOptions, SimReport, TranslationConfig, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::{geometric_mean, mean};
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mut opts = SimOptions::server();
    opts.warmup_ops = 200_000;
    opts.measure_ops = 600_000;
    println!("Headline comparisons at paper scale (divisor 1, 0% LP)\n");

    let suite = WorkloadSpec::suite();

    // --- native ---
    let base: Vec<SimReport> = suite
        .iter()
        .map(|w| run_native(w, &TranslationConfig::baseline(), &opts, FragmentationScenario::NONE))
        .collect();
    let mut rows = Vec::new();
    for cfg in TranslationConfig::fig9_set() {
        let reports: Vec<SimReport> = if cfg.label == "Base" {
            base.clone()
        } else {
            suite
                .iter()
                .map(|w| run_native(w, &cfg, &opts, FragmentationScenario::NONE))
                .collect()
        };
        let speedups: Vec<f64> = reports
            .iter()
            .zip(&base)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        let lats: Vec<f64> = reports.iter().map(|r| r.walk.latency_per_walk()).collect();
        rows.push(vec![
            cfg.label.to_string(),
            pct(geometric_mean(&speedups).unwrap()),
            format!("{:.2}", mean(&accs).unwrap()),
            format!("{:.1}", mean(&lats).unwrap()),
        ]);
        eprintln!("native {} done", cfg.label);
    }
    println!("--- native (paper: FPT +2.3%, PTP +6.8%, FPT+PTP +9.2%;");
    println!("    accesses 1.5→1.0; latency 50.9→33.0→29.1) ---");
    print_table(&["config", "geomean speedup", "mean acc/walk", "mean walk-lat"], &rows);

    // --- virtualized ---
    let vconfigs: Vec<VirtConfig> = VirtConfig::fig12_set()
        .into_iter()
        .filter(|c| matches!(c.label, "Base-2D" | "GF+HF" | "GF+HF+PTP"))
        .collect();
    let vbase: Vec<SimReport> = suite
        .iter()
        .map(|w| VirtualizedSimulation::build(w.clone(), vconfigs[0], &opts).run())
        .collect();
    let mut rows = Vec::new();
    for cfg in &vconfigs {
        let reports: Vec<SimReport> = if cfg.label == "Base-2D" {
            vbase.clone()
        } else {
            suite
                .iter()
                .map(|w| VirtualizedSimulation::build(w.clone(), *cfg, &opts).run())
                .collect()
        };
        let speedups: Vec<f64> = reports
            .iter()
            .zip(&vbase)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        rows.push(vec![
            cfg.label.to_string(),
            pct(geometric_mean(&speedups).unwrap()),
            format!("{:.2}", mean(&accs).unwrap()),
        ]);
        eprintln!("virt {} done", cfg.label);
    }
    println!();
    println!("--- virtualized (paper: GF+HF +7.1%, GF+HF+PTP +14.0%;");
    println!("    accesses 4.4→2.8) ---");
    print_table(&["config", "geomean speedup", "mean acc/walk"], &rows);
}
