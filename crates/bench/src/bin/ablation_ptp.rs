//! Ablation of the two empirical constants behind cache prioritization
//! (§5/§6.1): the 99 %/1 % eviction bias ("we empirically found that
//! this ratio works well") and the high-TLB-miss phase threshold that
//! gates prioritization.

use flatwalk_bench::{geomean_speedup, grids, pct, print_table, run_cells, Mode};

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "Ablation — PTP eviction bias and phase threshold ({})",
        mode.banner()
    );

    if flatwalk_bench::run_scheme_filtered("ablation_ptp", || grids::ablation_ptp(mode, &opts)) {
        flatwalk_bench::finish("ablation_ptp");
        return;
    }

    let suite = grids::ablation_ptp_suite(mode);
    let biases = grids::ABLATION_PTP_BIASES;
    let thresholds = grids::ABLATION_PTP_THRESHOLDS;

    // One batch: the shared baseline suite, then both sweeps.
    let all = run_cells("ablation_ptp", grids::ablation_ptp(mode, &opts).cells);
    let base = &all[..suite.len()];
    let mut sweep_chunks = all[suite.len()..].chunks(suite.len());

    let mut rows = Vec::new();
    println!("\n--- eviction bias sweep (phase threshold fixed at 0.02) ---");
    for bias in biases {
        let ptp = sweep_chunks.next().unwrap();
        rows.push(vec![
            format!("bias {bias:.2}"),
            pct(geomean_speedup(ptp, base)),
        ]);
    }
    print_table(&["config", "PTP geomean speedup"], &rows);

    let mut rows = Vec::new();
    println!("\n--- phase-threshold sweep (bias fixed at 0.99) ---");
    for threshold in thresholds {
        let ptp = sweep_chunks.next().unwrap();
        rows.push(vec![
            format!("threshold {threshold:.3}"),
            pct(geomean_speedup(ptp, base)),
        ]);
    }
    print_table(&["config", "PTP geomean speedup"], &rows);

    println!();
    println!("Expectations: bias 0 = plain LRU (no gain); gains grow with the bias");
    println!("and saturate near the paper's 0.99; bias 1.0 is close to 0.99 (the");
    println!("set-has-only-PT-lines fallback keeps it safe). Thresholds past the");
    println!("suite's miss rates disable PTP for more benchmarks and shrink gains.");
    flatwalk_bench::finish("ablation_ptp");
}
