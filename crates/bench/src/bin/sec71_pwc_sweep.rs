//! §7.1 — PWC sensitivity: sweeping the 18-bit ("L3") PSC from 1 to 16
//! entries on GUPS, versus the benefit of flattening; plus the L2-PWC
//! size that would be needed to match flattening's single-access walks.

use flatwalk_bench::{pct, print_table, run_cells, GridCell, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::TranslationConfig;
use flatwalk_tlb::PwcConfig;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.1 — PWC sweep on GUPS ({})", mode.banner());

    let spec = WorkloadSpec::gups();
    let scenario = FragmentationScenario::NONE;

    // The whole sweep is one batch: every point varies only its
    // SimOptions (PWC geometry) or config, which ride in the cell.
    let mut labels: Vec<String> = Vec::new();
    let mut cells: Vec<GridCell> = Vec::new();
    for entries in [1usize, 2, 4, 8, 16] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l3_entries(entries);
        labels.push(format!("base, L3-PSC={entries}"));
        cells.push(GridCell::new(
            spec.clone(),
            TranslationConfig::baseline(),
            scenario,
            o,
        ));
    }
    // Flattening reference on the stock PSC budget.
    labels.push("FPT (stock PSC)".to_string());
    cells.push(GridCell::new(
        spec.clone(),
        TranslationConfig::flattened(),
        scenario,
        opts.clone(),
    ));
    // Large L2 ("27-bit") PWC equivalence point.
    for entries in [256usize, 1024, 4096] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l2_entries(entries);
        labels.push(format!("base, L2-PSC={entries}"));
        cells.push(GridCell::new(
            spec.clone(),
            TranslationConfig::baseline(),
            scenario,
            o,
        ));
    }
    let reports = run_cells("sec71_pwc", cells);
    let base4_ipc = reports[2].ipc();

    let table: Vec<Vec<String>> = labels
        .iter()
        .zip(&reports)
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.2}", r.walk.accesses_per_walk()),
                format!("{:.4}", r.ipc()),
                pct(r.ipc() / base4_ipc),
            ]
        })
        .collect();
    print_table(&["config", "acc/walk", "ipc", "vs 4-entry base"], &table);
    println!();
    println!("Paper reference: sweeping the L3 PSC 1→16 entries moves GUPS by");
    println!("-1.5%..+2.4%; flattening gives +8.9%; matching it needs a ~4096-entry");
    println!("L2 PSC.");
    flatwalk_bench::finish("sec71_pwc_sweep");
}
