//! §7.1 — PWC sensitivity: sweeping the 18-bit ("L3") PSC from 1 to 16
//! entries on GUPS, versus the benefit of flattening; plus the L2-PWC
//! size that would be needed to match flattening's single-access walks.

use flatwalk_bench::{grids, pct, print_table, run_cells, Mode};

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.1 — PWC sweep on GUPS ({})", mode.banner());

    if flatwalk_bench::run_scheme_filtered("sec71_pwc", || grids::sec71_pwc(mode, &opts)) {
        flatwalk_bench::finish("sec71_pwc_sweep");
        return;
    }

    // The whole sweep is one batch: every point varies only its
    // SimOptions (PWC geometry) or config, which ride in the cell.
    let grid = grids::sec71_pwc(mode, &opts);
    let labels = grid.labels;
    let reports = run_cells("sec71_pwc", grid.cells);
    let base4_ipc = reports[2].ipc();

    let table: Vec<Vec<String>> = labels
        .iter()
        .zip(&reports)
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.2}", r.walk.accesses_per_walk()),
                format!("{:.4}", r.ipc()),
                pct(r.ipc() / base4_ipc),
            ]
        })
        .collect();
    print_table(&["config", "acc/walk", "ipc", "vs 4-entry base"], &table);
    println!();
    println!("Paper reference: sweeping the L3 PSC 1→16 entries moves GUPS by");
    println!("-1.5%..+2.4%; flattening gives +8.9%; matching it needs a ~4096-entry");
    println!("L2 PSC.");
    flatwalk_bench::finish("sec71_pwc_sweep");
}
