//! §7.1 — PWC sensitivity: sweeping the 18-bit ("L3") PSC from 1 to 16
//! entries on GUPS, versus the benefit of flattening; plus the L2-PWC
//! size that would be needed to match flattening's single-access walks.

use flatwalk_bench::{pct, print_table, run_native, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::TranslationConfig;
use flatwalk_tlb::PwcConfig;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("§7.1 — PWC sweep on GUPS ({})", mode.banner());

    let spec = WorkloadSpec::gups();
    let scenario = FragmentationScenario::NONE;

    let mut base4_ipc = 0.0f64;
    let mut rows = Vec::new();
    for entries in [1usize, 2, 4, 8, 16] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l3_entries(entries);
        let r = run_native(&spec, &TranslationConfig::baseline(), &o, scenario);
        if entries == 4 {
            base4_ipc = r.ipc();
        }
        rows.push((format!("base, L3-PSC={entries}"), r));
    }
    // Flattening reference on the stock PSC budget.
    let flat = run_native(&spec, &TranslationConfig::flattened(), &opts, scenario);
    rows.push(("FPT (stock PSC)".to_string(), flat));
    // Large L2 ("27-bit") PWC equivalence point.
    for entries in [256usize, 1024, 4096] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l2_entries(entries);
        let r = run_native(&spec, &TranslationConfig::baseline(), &o, scenario);
        rows.push((format!("base, L2-PSC={entries}"), r));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.2}", r.walk.accesses_per_walk()),
                format!("{:.4}", r.ipc()),
                pct(r.ipc() / base4_ipc),
            ]
        })
        .collect();
    print_table(&["config", "acc/walk", "ipc", "vs 4-entry base"], &table);
    println!();
    println!("Paper reference: sweeping the L3 PSC 1→16 entries moves GUPS by");
    println!("-1.5%..+2.4%; flattening gives +8.9%; matching it needs a ~4096-entry");
    println!("L2 PSC.");
}
