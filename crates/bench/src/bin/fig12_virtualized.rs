//! Figure 12 — virtualized execution: flattening the host table (HF),
//! the guest table (GF), or both, with and without prioritization,
//! against the 2-D baseline. Pass `--accesses` to also print the §4.1
//! memory-accesses-per-walk table (naive 24 → baseline ≈4.4 → GF+HF
//! ≈2.8).

use flatwalk_bench::{pct, print_table, run_jobs, Mode};
use flatwalk_sim::{SimReport, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let show_accesses = std::env::args().any(|a| a == "--accesses");
    let opts = mode.server_options();
    println!("Figure 12 — virtualized IPC ({})", mode.banner());

    let suite = if mode == Mode::Quick {
        vec![
            WorkloadSpec::bfs(),
            WorkloadSpec::dc(),
            WorkloadSpec::mcf(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::gups(),
        ]
    } else {
        WorkloadSpec::suite()
    };
    let configs = VirtConfig::fig12_set();

    // One batch over the whole (config × workload) grid; the first
    // config is the 2-D baseline.
    let jobs: Vec<(VirtConfig, WorkloadSpec)> = configs
        .iter()
        .flat_map(|cfg| suite.iter().map(|w| (*cfg, w.clone())))
        .collect();
    let all: Vec<SimReport> = run_jobs(
        "fig12",
        jobs,
        opts.warmup_ops + opts.measure_ops,
        |(cfg, w)| VirtualizedSimulation::build(w, cfg, &opts).run(),
    );
    for r in &all {
        flatwalk_bench::emit::record_report("fig12", r);
    }
    let base = &all[..suite.len()];

    let mut rows = Vec::new();
    let mut acc_rows = Vec::new();
    for (cfg, reports) in configs.iter().zip(all.chunks(suite.len())) {
        let speedups: Vec<f64> = reports
            .iter()
            .zip(base)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let g = geometric_mean(&speedups).unwrap();
        let mut row = vec![cfg.label.to_string()];
        row.extend(speedups.iter().map(|s| pct(*s)));
        row.push(pct(g));
        rows.push(row);

        let accs: Vec<f64> = reports.iter().map(|r| r.walk.accesses_per_walk()).collect();
        let mean_acc = accs.iter().sum::<f64>() / accs.len() as f64;
        let mut arow = vec![cfg.label.to_string()];
        arow.extend(accs.iter().map(|a| format!("{a:.2}")));
        arow.push(format!("{mean_acc:.2}"));
        acc_rows.push(arow);
    }

    let mut headers: Vec<&str> = vec!["config"];
    let names: Vec<String> = suite.iter().map(|w| w.name.to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    headers.push("GEOMEAN");
    print_table(&headers, &rows);

    if show_accesses {
        println!();
        println!("--- memory accesses per 2-D walk (§4.1) ---");
        let mut h2 = headers.clone();
        *h2.last_mut().unwrap() = "MEAN";
        print_table(&h2, &acc_rows);
    }

    println!();
    println!("Paper reference: HF +1.1%, GF +4.9%, GF+HF +7.1%; with PTP:");
    println!("+7.5% / +11.6% / +14.0%. Accesses/walk: 4.4 baseline → 2.8 GF+HF");
    println!("(gups/random ≈9.6/9.4 baseline).");
    flatwalk_bench::finish("fig12_virtualized");
}
