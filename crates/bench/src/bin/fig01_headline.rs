//! Figure 1 — the headline: for a high-TLB-miss benchmark (gups) and a
//! low one (dc), show (left) memory requests per page walk with and
//! without flattening, (center) page-walk latency with and without
//! prioritization, and (right) dynamic cache/DRAM energy of the
//! combination.

use flatwalk_bench::{grids, pct, print_table, run_cells, Mode};

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("Figure 1 — headline effects ({})", mode.banner());

    if flatwalk_bench::run_scheme_filtered("fig01", || grids::fig01(mode, &opts)) {
        flatwalk_bench::finish("fig01_headline");
        return;
    }

    let per_spec = grids::fig01_configs().len();
    let all = run_cells("fig01", grids::fig01(mode, &opts).cells);

    let mut rows = Vec::new();
    for reports in all.chunks(per_spec) {
        let base = &reports[0];
        for r in reports {
            rows.push(vec![
                r.workload.clone(),
                r.config.to_string(),
                format!("{:.2}", r.walk.accesses_per_walk()),
                format!("{:.1}", r.walk.latency_per_walk()),
                pct(r.cache_energy_vs(base)),
                pct(r.dram_energy_vs(base)),
                pct(r.speedup_vs(base)),
            ]);
        }
    }
    print_table(
        &[
            "bench",
            "config",
            "acc/walk",
            "walk-lat",
            "Δcache-E",
            "ΔDRAM-acc",
            "speedup",
        ],
        &rows,
    );
    println!();
    println!("Paper reference: flattening → 1.0 accesses/walk; prioritization cuts");
    println!("gups walk latency dramatically; combination saves cache+DRAM energy.");
    flatwalk_bench::finish("fig01_headline");
}
