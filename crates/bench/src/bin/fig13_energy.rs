//! Figure 13 — dynamic energy of the cache hierarchy and DRAM for data
//! plus page walks, native (left/center) and virtualized (right),
//! normalized to the respective baselines. 0 % LP scenario.

use flatwalk_baselines::{AsapScheme, EchScheme, PomTlbScheme, SchemeSimulation};
use flatwalk_bench::{pct, print_table, run_cells, run_jobs, GridCell, Mode};
use flatwalk_os::FragmentationScenario;
use flatwalk_sim::{SimReport, TranslationConfig, VirtConfig, VirtualizedSimulation};
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::WorkloadSpec;

fn geo_energy(reports: &[SimReport], base: &[SimReport]) -> (f64, f64) {
    let cache: Vec<f64> = reports
        .iter()
        .zip(base)
        .map(|(r, b)| r.cache_energy_vs(b))
        .collect();
    let dram: Vec<f64> = reports
        .iter()
        .zip(base)
        .map(|(r, b)| r.dram_energy_vs(b))
        .collect();
    (
        geometric_mean(&cache).unwrap(),
        geometric_mean(&dram).unwrap(),
    )
}

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!("Figure 13 — dynamic energy, 0% LP ({})", mode.banner());

    let suite = if mode == Mode::Quick {
        vec![
            WorkloadSpec::bfs(),
            WorkloadSpec::dc(),
            WorkloadSpec::mcf(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::gups(),
        ]
    } else {
        WorkloadSpec::suite()
    };
    let scenario = FragmentationScenario::NONE;

    // --- native: baseline plus our three configs, one batch ---
    let native_configs = [
        TranslationConfig::baseline(),
        TranslationConfig::flattened(),
        TranslationConfig::prioritized(),
        TranslationConfig::flattened_prioritized(),
    ];
    let native_cells: Vec<GridCell> = native_configs
        .iter()
        .flat_map(|cfg| {
            suite
                .iter()
                .map(|w| GridCell::new(w.clone(), cfg.clone(), scenario, opts.clone()))
        })
        .collect();
    let native = run_cells("fig13:native", native_cells);
    let base = &native[..suite.len()];

    let mut rows = Vec::new();
    for (cfg, reports) in native_configs[1..]
        .iter()
        .zip(native[suite.len()..].chunks(suite.len()))
    {
        let (c, d) = geo_energy(reports, base);
        rows.push(vec!["native".into(), cfg.label.to_string(), pct(c), pct(d)]);
    }

    // --- prior schemes ---
    let scheme_jobs: Vec<(&str, WorkloadSpec)> = ["ASAP", "ECH", "CSALT"]
        .iter()
        .flat_map(|s| suite.iter().map(|w| (*s, w.clone())))
        .collect();
    let scheme_reports = run_jobs(
        "fig13:schemes",
        scheme_jobs,
        opts.warmup_ops + opts.measure_ops,
        |(scheme, w)| {
            let o = opts.clone().with_scenario(scenario);
            let scaled = w.clone().scaled_down(o.footprint_divisor);
            match scheme {
                "ASAP" => {
                    SchemeSimulation::build(w.clone(), AsapScheme::new(o.pwc.clone()), &o).run()
                }
                "ECH" => {
                    SchemeSimulation::build(w.clone(), EchScheme::new(scaled.footprint, false), &o)
                        .run()
                }
                _ => SchemeSimulation::build(
                    w.clone(),
                    PomTlbScheme::new(16 << 20, o.pwc.clone()).csalt(),
                    &o,
                )
                .run(),
            }
        },
    );
    for r in &scheme_reports {
        flatwalk_bench::emit::record_report("fig13:schemes", r);
    }
    for (scheme, reports) in ["ASAP", "ECH", "CSALT"]
        .iter()
        .zip(scheme_reports.chunks(suite.len()))
    {
        let (c, d) = geo_energy(reports, base);
        rows.push(vec!["native".into(), scheme.to_string(), pct(c), pct(d)]);
    }

    // --- virtualized: baseline plus the two GF+HF variants ---
    let vconfigs: Vec<VirtConfig> = [0usize, 3, 7]
        .iter()
        .map(|&i| VirtConfig::fig12_set()[i])
        .collect();
    let vjobs: Vec<(VirtConfig, WorkloadSpec)> = vconfigs
        .iter()
        .flat_map(|cfg| suite.iter().map(|w| (*cfg, w.clone())))
        .collect();
    let virt = run_jobs(
        "fig13:virt",
        vjobs,
        opts.warmup_ops + opts.measure_ops,
        |(cfg, w)| VirtualizedSimulation::build(w, cfg, &opts).run(),
    );
    for r in &virt {
        flatwalk_bench::emit::record_report("fig13:virt", r);
    }
    let vbase = &virt[..suite.len()];
    for (cfg, reports) in vconfigs[1..]
        .iter()
        .zip(virt[suite.len()..].chunks(suite.len()))
    {
        let (c, d) = geo_energy(reports, vbase);
        rows.push(vec![
            "virtualized".into(),
            cfg.label.to_string(),
            pct(c),
            pct(d),
        ]);
    }

    print_table(
        &["system", "config", "Δcache energy", "ΔDRAM accesses"],
        &rows,
    );
    println!();
    println!("Paper reference (native): FPT -2.8% cache; PTP -2.5% cache / -4.6% DRAM;");
    println!("FPT+PTP -5.1% / -4.7%. ASAP raises L1D traffic; ECH +32% cache / +14% DRAM.");
    println!("Virtualized: GF+HF -6.7% cache; GF+HF+PTP -8.7% cache / -4.7% DRAM.");
    flatwalk_bench::finish("fig13_energy");
}
