//! Rival schemes × NUMA topologies: Victima (L2-resident TLB entries,
//! MICRO 2023) and Mitosis (per-node page-table replicas, ASPLOS 2020)
//! against this simulator's native FPT+PTP and an unreplicated
//! NUMA-Base column, on 1-node (identity), 2-node full-mesh, and
//! 4-node ring topologies.
//!
//! Per cell: IPC, walk anatomy, and the per-node `numa.*` placement
//! counters (blank on the 1-node identity topology, which by
//! construction reports exactly what the pre-NUMA simulator reported).
//! `--scheme <name>` re-runs one column in isolation.

use flatwalk_bench::{
    apply_scheme_filter, geomean_speedup, grids, pct, print_table, run_cells, Mode,
};
use flatwalk_sim::SimReport;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.server_options();
    println!(
        "NUMA rivals — Victima / Mitosis vs native FPT+PTP ({})",
        mode.banner()
    );

    let mut grid = grids::numa_rivals(mode, &opts);
    apply_scheme_filter("numa_rivals", &mut grid);
    let labels = grid.labels.clone();
    let reports = run_cells("numa_rivals", grid.cells);

    let mut rows = Vec::new();
    for (label, r) in labels.iter().zip(&reports) {
        let numa = &r.hier.numa;
        let (local, remote, hops) = if numa.multi_node() {
            (
                numa.local().to_string(),
                numa.remote().to_string(),
                numa.hops().to_string(),
            )
        } else {
            ("-".to_string(), "-".to_string(), "-".to_string())
        };
        rows.push(vec![
            label.clone(),
            format!("{:.4}", r.ipc()),
            format!("{:.2}", r.walk.accesses_per_walk()),
            format!("{:.1}", r.walk.latency_per_walk()),
            local,
            remote,
            hops,
        ]);
    }
    print_table(
        &[
            "cell", "IPC", "acc/walk", "walk-lat", "local", "remote", "hops",
        ],
        &rows,
    );

    // Geomean speedups per (topology, scheme) column against that
    // topology's NUMA-Base column — only when the full grid ran (a
    // --scheme filter leaves nothing to normalize against).
    let suite = grids::numa_rivals_suite(mode);
    let columns = grids::numa_rival_columns();
    let per_topo = columns.len() * suite.len();
    if reports.len() == grids::numa_topologies().len() * per_topo {
        println!();
        let mut rows = Vec::new();
        for (t, (tlabel, _)) in grids::numa_topologies().iter().enumerate() {
            let topo_reports = &reports[t * per_topo..(t + 1) * per_topo];
            let base: &[SimReport] = &topo_reports[suite.len()..2 * suite.len()];
            for (c, (slabel, _)) in columns.iter().enumerate() {
                if *slabel == "NUMA-Base" {
                    continue;
                }
                let col = &topo_reports[c * suite.len()..(c + 1) * suite.len()];
                rows.push(vec![
                    format!("{tlabel}/{slabel}"),
                    pct(geomean_speedup(col, base)),
                ]);
            }
        }
        print_table(&["column", "geomean vs NUMA-Base"], &rows);
        println!();
        println!("Expectations: on 1-node all columns see zero NUMA traffic; Mitosis");
        println!("matches NUMA-Base there (replication is a no-op with one replica).");
        println!("On 2/4 nodes Mitosis walks go fully local while NUMA-Base pays hop");
        println!("latency on remote steps; Victima trades walk latency for L2 space.");
    }
    flatwalk_bench::finish("numa_rivals");
}
