//! Figure 14 / Table 3 — the mobile case study: a Speedometer-2.0-like
//! browser mix on the Table 3 high-end mobile configuration under
//! virtualization (pKVM-style), sweeping which levels of the guest (and
//! host) tables are flattened. Normalized to the 2-D baseline.

use flatwalk_bench::{pct, print_table, run_jobs, Mode};
use flatwalk_pt::Layout;
use flatwalk_sim::{SimReport, VirtConfig, VirtualizedSimulation};
use flatwalk_workloads::WorkloadSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = mode.mobile_options();
    println!(
        "Figure 14 — mobile (Table 3) virtualized flattening ({})",
        mode.banner()
    );
    println!(
        "Table 3 config: L1D {} KB, L2 {} KB, L3 {} MB, DRAM {} cycles",
        opts.hierarchy.l1.size_bytes >> 10,
        opts.hierarchy.l2.size_bytes >> 10,
        opts.hierarchy.l3.size_bytes >> 20,
        opts.hierarchy.dram_latency,
    );

    // Flattening options: (label, guest layout, host layout).
    let variants: Vec<(&'static str, Layout, Layout)> = vec![
        ("Base-2D", Layout::conventional4(), Layout::conventional4()),
        ("g:L4+L3", Layout::flat_l4l3(), Layout::conventional4()),
        ("g:L3+L2", Layout::flat_l3l2(), Layout::conventional4()),
        ("g:L2+L1", Layout::flat_l2l1(), Layout::conventional4()),
        (
            "g:L4+L3,L2+L1",
            Layout::flat_l4l3_l2l1(),
            Layout::conventional4(),
        ),
        (
            "g+h:L4+L3,L2+L1",
            Layout::flat_l4l3_l2l1(),
            Layout::flat_l4l3_l2l1(),
        ),
    ];

    let jobs: Vec<(u32, &'static str, Layout, Layout)> = [1u32, 5]
        .iter()
        .flat_map(|&iteration| {
            variants
                .iter()
                .map(move |(label, guest, host)| (iteration, *label, guest.clone(), host.clone()))
        })
        .collect();
    let all: Vec<SimReport> = run_jobs(
        "fig14",
        jobs,
        opts.warmup_ops + opts.measure_ops,
        |(iteration, label, guest, host)| {
            let cfg = VirtConfig {
                label,
                guest_flat: guest != Layout::conventional4(),
                host_flat: host != Layout::conventional4(),
                ptp: false,
            };
            VirtualizedSimulation::build_custom(
                WorkloadSpec::browser_mix(iteration),
                cfg,
                guest,
                host,
                &opts,
            )
            .run()
        },
    );

    for r in &all {
        flatwalk_bench::emit::record_report("fig14", r);
    }

    let mut rows = Vec::new();
    for (&iteration, group) in [1u32, 5].iter().zip(all.chunks(variants.len())) {
        let mut base_ipc = 0.0f64;
        for ((label, _, _), r) in variants.iter().zip(group) {
            if *label == "Base-2D" {
                base_ipc = r.ipc();
            }
            rows.push(vec![
                format!("iter{iteration}"),
                label.to_string(),
                format!("{:.4}", r.ipc()),
                pct(r.ipc() / base_ipc),
                format!("{:.2}", r.walk.accesses_per_walk()),
            ]);
        }
    }
    print_table(
        &["iteration", "flattening", "ipc", "vs Base-2D", "acc/walk"],
        &rows,
    );
    println!();
    println!("Paper reference: flattening closer to the leaves helps most; both");
    println!("L4+L3 and L2+L1 flattened gives +3.8% (iter1) / +4.3% (iter5).");
    flatwalk_bench::finish("fig14_mobile");
}
