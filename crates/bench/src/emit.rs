//! Machine-readable experiment reports (`--json <path>` /
//! `FLATWALK_JSON=<path>`).
//!
//! Every experiment binary calls [`record_cells`] (grid batches) or
//! [`record_report`] (ad-hoc jobs) as results arrive and [`finish`]
//! once before exiting. With the flag and variable unset all of it is a
//! no-op — stdout stays byte-identical to a build without JSON
//! reporting.
//!
//! Output schema (`flatwalk-report-v1`), stable key order:
//!
//! ```text
//! {"schema":"flatwalk-report-v1",
//!  "experiment":"sec71_pwc_sweep",
//!  "manifest":{"threads":…,"setup_cache_hits":…,"setup_cache_misses":…,
//!              "setup_nanos":…,"run_nanos":…,"cells_recorded":…,
//!              "cell_wall_count":…,"cell_wall_p50":…,"cell_wall_p90":…,
//!              "cell_wall_p99":…,"cell_wall_p999":…},
//!  "cells":[{"label":…,"index":…,"status":"ok"|"retried"|"failed",
//!            "setup_nanos":…,"run_nanos":…,
//!            "report":{…SimReport::to_json…}},…],
//!  "metrics":{…merged registry, name-sorted…}}
//! ```
//!
//! Cells recorded via [`record_report`] carry no `status` /
//! `setup_nanos` / `run_nanos` keys (their phase split is not
//! attributable — the process-wide totals in the manifest still
//! include them). Failed cells carry `error` and `retries` instead of
//! timings and a report; retried-but-successful cells carry `retries`
//! alongside the usual keys. When a fault plan is installed the
//! manifest additionally records `faults_seed` and `faults_profile`.

use std::sync::{Mutex, OnceLock};

use flatwalk_obs::{metrics, Json};
use flatwalk_sim::runner::CellOutcome;
use flatwalk_sim::SimReport;
use flatwalk_types::stats::LatencyHistogram;

/// The sink path: `--json <path>` / `--json=<path>` from the command
/// line, else `FLATWALK_JSON`. Parsed once.
fn path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        let mut args = std::env::args();
        let mut found = None;
        while let Some(a) = args.next() {
            if a == "--json" {
                found = args.next();
            } else if let Some(v) = a.strip_prefix("--json=") {
                found = Some(v.to_string());
            }
        }
        found.or_else(|| {
            std::env::var("FLATWALK_JSON")
                .ok()
                .filter(|v| !v.is_empty())
        })
    })
    .as_deref()
}

/// Whether JSON reporting is enabled for this invocation.
pub fn enabled() -> bool {
    path().is_some()
}

fn cells() -> &'static Mutex<Vec<Json>> {
    static CELLS: OnceLock<Mutex<Vec<Json>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(Vec::new()))
}

/// End-to-end wall time (setup + run) of every completed grid cell
/// this process ran, in the HDR histogram the manifest's
/// `cell_wall_*` percentiles come from. Recorded whether or not JSON
/// reporting is on — the percentiles also land in the global metrics
/// registry as `bench.cell_wall.*` gauges at [`publish_run_telemetry`].
fn cell_wall() -> &'static Mutex<LatencyHistogram> {
    static WALL: OnceLock<Mutex<LatencyHistogram>> = OnceLock::new();
    WALL.get_or_init(|| Mutex::new(LatencyHistogram::default()))
}

fn cell_wall_snapshot() -> LatencyHistogram {
    *cell_wall().lock().unwrap_or_else(|e| e.into_inner())
}

/// Records a finished grid batch (one JSON cell per [`CellOutcome`],
/// including its setup/run wall-time split). The runner has already
/// merged these reports' metrics into the global registry.
pub fn record_cells(label: &str, outcomes: &[CellOutcome]) {
    {
        let mut wall = cell_wall().lock().unwrap_or_else(|e| e.into_inner());
        for outcome in outcomes {
            if let CellOutcome::Ok {
                setup_nanos,
                run_nanos,
                ..
            } = outcome
            {
                wall.record(setup_nanos + run_nanos);
            }
        }
    }
    if !enabled() {
        return;
    }
    let mut sink = cells().lock().unwrap_or_else(|e| e.into_inner());
    for (index, outcome) in outcomes.iter().enumerate() {
        let mut o = Json::obj();
        o.push("label", label).push("index", index);
        match outcome {
            CellOutcome::Ok {
                report,
                setup_nanos,
                run_nanos,
                retries,
            } => {
                o.push("status", if *retries > 0 { "retried" } else { "ok" });
                if *retries > 0 {
                    o.push("retries", *retries as u64);
                }
                o.push("setup_nanos", *setup_nanos)
                    .push("run_nanos", *run_nanos)
                    .push("report", report.to_json());
            }
            CellOutcome::Failed { error, retries } => {
                o.push("status", "failed")
                    .push("error", error.as_str())
                    .push("retries", *retries as u64);
            }
        }
        sink.push(o);
    }
}

/// Records one report produced outside [`record_cells`] (multicore
/// cores, scheme comparisons, virtualized jobs) and merges its metrics
/// into the global registry.
pub fn record_report(label: &str, report: &SimReport) {
    metrics::merge_global(&report.metrics());
    if !enabled() {
        return;
    }
    let mut sink = cells().lock().unwrap_or_else(|e| e.into_inner());
    let index = sink.len();
    let mut o = Json::obj();
    o.push("label", label)
        .push("index", index)
        .push("report", report.to_json());
    sink.push(o);
}

/// End-of-run telemetry publication, JSON sink or not: pushes the
/// cell-wall latency percentiles into the global metrics registry as
/// `bench.cell_wall.*` gauges, and — when `FLATWALK_SPANS_FOLDED=<path>`
/// is set — writes the process's folded span aggregation as
/// flamegraph-collapsed text to that path. Called by
/// `flatwalk_bench::finish` before the JSON dump so the gauges land in
/// the report's metrics object.
pub fn publish_run_telemetry() {
    let wall = cell_wall_snapshot();
    if wall.count() > 0 {
        metrics::gauge_global("bench.cell_wall.count", wall.count() as f64);
        metrics::gauge_global("bench.cell_wall.p50_nanos", wall.p50() as f64);
        metrics::gauge_global("bench.cell_wall.p90_nanos", wall.p90() as f64);
        metrics::gauge_global("bench.cell_wall.p99_nanos", wall.p99() as f64);
        metrics::gauge_global("bench.cell_wall.p999_nanos", wall.p999() as f64);
    }
    if let Ok(path) = std::env::var("FLATWALK_SPANS_FOLDED") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, flatwalk_obs::span::render_folded()) {
                eprintln!("FLATWALK_SPANS_FOLDED: cannot write {path:?}: {e}");
            }
        }
    }
}

/// Writes the collected cells, run manifest, and merged metrics to the
/// sink path (no-op when JSON reporting is off). Call once, after all
/// results are recorded; I/O errors are reported on stderr, never
/// panicked — a failed report must not kill a finished experiment.
pub fn finish(experiment: &str) {
    let Some(path) = path() else {
        return;
    };
    let recorded = std::mem::take(&mut *cells().lock().unwrap_or_else(|e| e.into_inner()));
    let stats = flatwalk_sim::setup::setup_stats();
    let mut manifest = Json::obj();
    manifest
        .push("threads", crate::threads())
        .push("setup_cache_hits", stats.hits)
        .push("setup_cache_misses", stats.misses)
        .push("setup_nanos", stats.setup_nanos)
        .push("run_nanos", stats.run_nanos)
        .push("cells_recorded", recorded.len());
    let wall = cell_wall_snapshot();
    if wall.count() > 0 {
        manifest
            .push("cell_wall_count", wall.count())
            .push("cell_wall_p50", wall.p50())
            .push("cell_wall_p90", wall.p90())
            .push("cell_wall_p99", wall.p99())
            .push("cell_wall_p999", wall.p999());
    }
    if let Some(plan) = flatwalk_faults::active() {
        manifest
            .push("faults_seed", plan.seed)
            .push("faults_profile", plan.profile.name());
    }
    let mut o = Json::obj();
    o.push("schema", "flatwalk-report-v1")
        .push("experiment", experiment)
        .push("manifest", manifest)
        .push("cells", Json::Array(recorded))
        .push("metrics", metrics::global_snapshot().to_json());
    let mut text = o.to_string();
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("--json: cannot write {path:?}: {e}");
    }
}
