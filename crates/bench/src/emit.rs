//! Machine-readable experiment reports (`--json <path>` /
//! `FLATWALK_JSON=<path>`).
//!
//! Every experiment binary calls [`record_cells`] (grid batches) or
//! [`record_report`] (ad-hoc jobs) as results arrive and [`finish`]
//! once before exiting. With the flag and variable unset all of it is a
//! no-op — stdout stays byte-identical to a build without JSON
//! reporting.
//!
//! Output schema (`flatwalk-report-v1`), stable key order:
//!
//! ```text
//! {"schema":"flatwalk-report-v1",
//!  "experiment":"sec71_pwc_sweep",
//!  "manifest":{"threads":…,"setup_cache_hits":…,"setup_cache_misses":…,
//!              "setup_nanos":…,"run_nanos":…,"cells_recorded":…},
//!  "cells":[{"label":…,"index":…,"status":"ok"|"retried"|"failed",
//!            "setup_nanos":…,"run_nanos":…,
//!            "report":{…SimReport::to_json…}},…],
//!  "metrics":{…merged registry, name-sorted…}}
//! ```
//!
//! Cells recorded via [`record_report`] carry no `status` /
//! `setup_nanos` / `run_nanos` keys (their phase split is not
//! attributable — the process-wide totals in the manifest still
//! include them). Failed cells carry `error` and `retries` instead of
//! timings and a report; retried-but-successful cells carry `retries`
//! alongside the usual keys. When a fault plan is installed the
//! manifest additionally records `faults_seed` and `faults_profile`.

use std::sync::{Mutex, OnceLock};

use flatwalk_obs::{metrics, Json};
use flatwalk_sim::runner::CellOutcome;
use flatwalk_sim::SimReport;

/// The sink path: `--json <path>` / `--json=<path>` from the command
/// line, else `FLATWALK_JSON`. Parsed once.
fn path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        let mut args = std::env::args();
        let mut found = None;
        while let Some(a) = args.next() {
            if a == "--json" {
                found = args.next();
            } else if let Some(v) = a.strip_prefix("--json=") {
                found = Some(v.to_string());
            }
        }
        found.or_else(|| {
            std::env::var("FLATWALK_JSON")
                .ok()
                .filter(|v| !v.is_empty())
        })
    })
    .as_deref()
}

/// Whether JSON reporting is enabled for this invocation.
pub fn enabled() -> bool {
    path().is_some()
}

fn cells() -> &'static Mutex<Vec<Json>> {
    static CELLS: OnceLock<Mutex<Vec<Json>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records a finished grid batch (one JSON cell per [`CellOutcome`],
/// including its setup/run wall-time split). The runner has already
/// merged these reports' metrics into the global registry.
pub fn record_cells(label: &str, outcomes: &[CellOutcome]) {
    if !enabled() {
        return;
    }
    let mut sink = cells().lock().unwrap_or_else(|e| e.into_inner());
    for (index, outcome) in outcomes.iter().enumerate() {
        let mut o = Json::obj();
        o.push("label", label).push("index", index);
        match outcome {
            CellOutcome::Ok {
                report,
                setup_nanos,
                run_nanos,
                retries,
            } => {
                o.push("status", if *retries > 0 { "retried" } else { "ok" });
                if *retries > 0 {
                    o.push("retries", *retries as u64);
                }
                o.push("setup_nanos", *setup_nanos)
                    .push("run_nanos", *run_nanos)
                    .push("report", report.to_json());
            }
            CellOutcome::Failed { error, retries } => {
                o.push("status", "failed")
                    .push("error", error.as_str())
                    .push("retries", *retries as u64);
            }
        }
        sink.push(o);
    }
}

/// Records one report produced outside [`record_cells`] (multicore
/// cores, scheme comparisons, virtualized jobs) and merges its metrics
/// into the global registry.
pub fn record_report(label: &str, report: &SimReport) {
    metrics::merge_global(&report.metrics());
    if !enabled() {
        return;
    }
    let mut sink = cells().lock().unwrap_or_else(|e| e.into_inner());
    let index = sink.len();
    let mut o = Json::obj();
    o.push("label", label)
        .push("index", index)
        .push("report", report.to_json());
    sink.push(o);
}

/// Writes the collected cells, run manifest, and merged metrics to the
/// sink path (no-op when JSON reporting is off). Call once, after all
/// results are recorded; I/O errors are reported on stderr, never
/// panicked — a failed report must not kill a finished experiment.
pub fn finish(experiment: &str) {
    let Some(path) = path() else {
        return;
    };
    let recorded = std::mem::take(&mut *cells().lock().unwrap_or_else(|e| e.into_inner()));
    let stats = flatwalk_sim::setup::setup_stats();
    let mut manifest = Json::obj();
    manifest
        .push("threads", crate::threads())
        .push("setup_cache_hits", stats.hits)
        .push("setup_cache_misses", stats.misses)
        .push("setup_nanos", stats.setup_nanos)
        .push("run_nanos", stats.run_nanos)
        .push("cells_recorded", recorded.len());
    if let Some(plan) = flatwalk_faults::active() {
        manifest
            .push("faults_seed", plan.seed)
            .push("faults_profile", plan.profile.name());
    }
    let mut o = Json::obj();
    o.push("schema", "flatwalk-report-v1")
        .push("experiment", experiment)
        .push("manifest", manifest)
        .push("cells", Json::Array(recorded))
        .push("metrics", metrics::global_snapshot().to_json());
    let mut text = o.to_string();
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("--json: cannot write {path:?}: {e}");
    }
}
