//! Reusable grid descriptions: the experiment binaries' cell-grid
//! construction, factored out so other executors — most importantly the
//! `flatwalk-serve` daemon — can build exactly the same grids by name.
//!
//! Each [`GridDef`] is a named, pure builder `fn(Mode, &SimOptions) ->
//! Grid`: given the mode and the (mode-resolved, possibly overridden)
//! base options it returns the cells **in the binary's declaration
//! order**, which is what makes a served cell's `(index, total)`
//! position — and therefore its poison-fault profile and its report —
//! byte-identical to the same cell inside the batch binary's run.
//!
//! Binaries keep their presentation logic (tables, normalization,
//! paper-reference footers) and call these builders for the cells.

use flatwalk_mem::{Interconnect, NumaTopology};
use flatwalk_os::FragmentationScenario;
use flatwalk_pt::Layout;
use flatwalk_sim::runner::Cell;
use flatwalk_sim::{RivalKind, SimOptions, TranslationConfig};
use flatwalk_tlb::PwcConfig;
use flatwalk_workloads::WorkloadSpec;

use crate::{scenarios, Mode};

/// A built experiment grid: cells in declaration order plus one
/// human-readable label per cell (used by tables and service replies).
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// One display label per cell, index-aligned with `cells`.
    pub labels: Vec<String>,
    /// The cells, in the order the batch binary declares them.
    pub cells: Vec<Cell>,
}

impl Grid {
    /// Appends one labelled cell.
    pub fn push(&mut self, label: String, cell: Cell) {
        self.labels.push(label);
        self.cells.push(cell);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Keeps only the cells whose label contains `needle`
    /// (case-insensitive) — the `--scheme <name>` filter. Label/cell
    /// alignment is preserved; declaration order of the survivors is
    /// unchanged, so their reports stay byte-identical to the same
    /// cells inside the unfiltered run (poison-fault positions shift,
    /// which is why `--faults` and `--scheme` are rejected together by
    /// the binaries' shared parsing).
    pub fn retain_matching(&mut self, needle: &str) {
        let needle = needle.to_ascii_lowercase();
        let keep: Vec<bool> = self
            .labels
            .iter()
            .map(|l| l.to_ascii_lowercase().contains(&needle))
            .collect();
        let mut k = keep.iter();
        self.labels.retain(|_| *k.next().unwrap());
        let mut k = keep.iter();
        self.cells.retain(|_| *k.next().unwrap());
    }
}

/// A named grid builder the server (or any other executor) can run.
#[derive(Debug, Clone, Copy)]
pub struct GridDef {
    /// Registry name (matches the batch binary's grid label).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Builds the grid for a mode and base options. The options are
    /// expected to already carry the mode's scaling (e.g. from
    /// [`Mode::server_options`]), possibly with caller overrides.
    pub build: fn(Mode, &SimOptions) -> Grid,
}

/// Every registered grid.
pub const GRIDS: &[GridDef] = &[
    GridDef {
        name: "sec71_pwc",
        about: "§7.1 PWC sensitivity sweep on GUPS (9 cells)",
        build: sec71_pwc,
    },
    GridDef {
        name: "sec71_ratio",
        about: "§7.1 PT:LLC ratio sweep (shrinks × base/PTP × suite)",
        build: sec71_ratio,
    },
    GridDef {
        name: "fig01",
        about: "Figure 1 headline effects (gups+dc × 4 configs)",
        build: fig01,
    },
    GridDef {
        name: "fig04",
        about: "Figure 4 large pages vs NF regions",
        build: fig04,
    },
    GridDef {
        name: "fig09_base",
        about: "Figure 9 normalization baselines (suite at 0% LP)",
        build: fig09_base,
    },
    GridDef {
        name: "fig09_native",
        about: "Figure 9 native grid (scenarios × fig9 set × suite)",
        build: fig09_native,
    },
    GridDef {
        name: "fig10",
        about: "Figure 10 walk anatomy (fig9 set × full suite)",
        build: fig10,
    },
    GridDef {
        name: "sec75_native",
        about: "§7.5 flattening other levels, native part",
        build: sec75_native,
    },
    GridDef {
        name: "ablation_ptp",
        about: "PTP eviction-bias and phase-threshold ablation",
        build: ablation_ptp,
    },
    GridDef {
        name: "numa_rivals",
        about: "Rival schemes × NUMA topologies (FPT+PTP, NUMA-Base, Mitosis, Victima)",
        build: numa_rivals,
    },
];

/// Looks a grid up by registry name.
pub fn by_name(name: &str) -> Option<&'static GridDef> {
    GRIDS.iter().find(|g| g.name == name)
}

/// All registry names, in declaration order.
pub fn names() -> Vec<&'static str> {
    GRIDS.iter().map(|g| g.name).collect()
}

/// The conventional "workload/config/scenario" cell label.
fn cell_label(
    w: &WorkloadSpec,
    cfg: &TranslationConfig,
    scenario: FragmentationScenario,
) -> String {
    format!("{}/{}/{}", w.name, cfg.label, scenario.label())
}

/// §7.1 PWC sweep (see `sec71_pwc_sweep`): the L3-PSC 1→16 sweep, the
/// flattening reference on the stock budget, and the large-L2-PSC
/// equivalence points — all on GUPS at 0 % LP.
pub fn sec71_pwc(_mode: Mode, opts: &SimOptions) -> Grid {
    let spec = WorkloadSpec::gups();
    let scenario = FragmentationScenario::NONE;
    let mut grid = Grid::default();
    for entries in [1usize, 2, 4, 8, 16] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l3_entries(entries);
        grid.push(
            format!("base, L3-PSC={entries}"),
            Cell::new(spec.clone(), TranslationConfig::baseline(), scenario, o),
        );
    }
    grid.push(
        "FPT (stock PSC)".to_string(),
        Cell::new(
            spec.clone(),
            TranslationConfig::flattened(),
            scenario,
            opts.clone(),
        ),
    );
    for entries in [256usize, 1024, 4096] {
        let mut o = opts.clone();
        o.pwc = PwcConfig::server_with_l2_entries(entries);
        grid.push(
            format!("base, L2-PSC={entries}"),
            Cell::new(spec.clone(), TranslationConfig::baseline(), scenario, o),
        );
    }
    grid
}

/// The §7.1 ratio-sweep workload suite for a mode.
pub fn sec71_ratio_suite(mode: Mode) -> Vec<WorkloadSpec> {
    if mode == Mode::Quick {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::mcf(),
        ]
    } else {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::mcf(),
            WorkloadSpec::graph500(),
            WorkloadSpec::hashjoin(),
            WorkloadSpec::liblinear_higgs(),
        ]
    }
}

/// The LLC shrink factors of the §7.1 ratio sweep.
pub const SEC71_RATIO_SHRINKS: [u64; 5] = [1, 2, 4, 8, 16];

/// §7.1 PT:LLC ratio sweep (see `sec71_ratio_sweep`): per shrink
/// factor, the baseline suite then the PTP suite.
pub fn sec71_ratio(mode: Mode, opts: &SimOptions) -> Grid {
    let suite = sec71_ratio_suite(mode);
    let scenario = FragmentationScenario::NONE;
    let llc_full = opts.hierarchy.l3.size_bytes;
    let mut grid = Grid::default();
    for &shrink in &SEC71_RATIO_SHRINKS {
        let mut o = opts.clone();
        o.hierarchy = o.hierarchy.with_llc_bytes((llc_full / shrink).max(1 << 20));
        for cfg in [
            TranslationConfig::baseline(),
            TranslationConfig::prioritized(),
        ] {
            for w in &suite {
                grid.push(
                    format!("{shrink}x/{}/{}", cfg.label, w.name),
                    Cell::new(w.clone(), cfg.clone(), scenario, o.clone()),
                );
            }
        }
    }
    grid
}

/// The four translation configs of Figure 1.
pub fn fig01_configs() -> [TranslationConfig; 4] {
    [
        TranslationConfig::baseline(),
        TranslationConfig::flattened(),
        TranslationConfig::prioritized(),
        TranslationConfig::flattened_prioritized(),
    ]
}

/// Figure 1 headline grid (see `fig01_headline`): gups and dc under
/// the four configs at 0 % LP.
pub fn fig01(_mode: Mode, opts: &SimOptions) -> Grid {
    let mut grid = Grid::default();
    for spec in [WorkloadSpec::gups(), WorkloadSpec::dc()] {
        for cfg in fig01_configs() {
            grid.push(
                cell_label(&spec, &cfg, FragmentationScenario::NONE),
                Cell::new(spec.clone(), cfg, FragmentationScenario::NONE, opts.clone()),
            );
        }
    }
    grid
}

/// Figure 4's labelled config set.
pub fn fig04_configs() -> [(&'static str, TranslationConfig); 3] {
    [
        ("THP", TranslationConfig::baseline()),
        ("FPT (no NF)", TranslationConfig::flattened_no_nf()),
        ("FPT+NF", TranslationConfig::flattened()),
    ]
}

/// Figure 4's workload suite.
pub fn fig04_suite() -> [WorkloadSpec; 4] {
    [
        WorkloadSpec::gups(),
        WorkloadSpec::xsbench(),
        WorkloadSpec::graph500(),
        WorkloadSpec::hashjoin(),
    ]
}

/// Figure 4 grid (see `fig04_large_pages`): per workload, its 0 % LP
/// baseline then (50 %, 100 % LP) × (THP, FPT-no-NF, FPT+NF).
pub fn fig04(_mode: Mode, opts: &SimOptions) -> Grid {
    let lp_scenarios = [
        (FragmentationScenario::HALF, "50% LP"),
        (FragmentationScenario::FULL, "100% LP"),
    ];
    let mut grid = Grid::default();
    for spec in fig04_suite() {
        grid.push(
            format!("{}/THP/0% LP", spec.name),
            Cell::new(
                spec.clone(),
                TranslationConfig::baseline(),
                FragmentationScenario::NONE,
                opts.clone(),
            ),
        );
        for (scenario, slabel) in lp_scenarios {
            for (clabel, cfg) in fig04_configs() {
                grid.push(
                    format!("{}/{}/{}", spec.name, clabel, slabel),
                    Cell::new(spec.clone(), cfg, scenario, opts.clone()),
                );
            }
        }
    }
    grid
}

/// The Figure 9 workload suite for a mode (quick runs a representative
/// subset).
pub fn fig09_suite(mode: Mode) -> Vec<WorkloadSpec> {
    if mode == Mode::Quick {
        vec![
            WorkloadSpec::bfs(),
            WorkloadSpec::dc(),
            WorkloadSpec::hashjoin(),
            WorkloadSpec::mcf(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
        ]
    } else {
        WorkloadSpec::suite()
    }
}

/// Figure 9 normalization baselines: the suite under the conventional
/// table at 0 % LP.
pub fn fig09_base(mode: Mode, opts: &SimOptions) -> Grid {
    let mut grid = Grid::default();
    for w in fig09_suite(mode) {
        grid.push(
            cell_label(
                &w,
                &TranslationConfig::baseline(),
                FragmentationScenario::NONE,
            ),
            Cell::new(
                w,
                TranslationConfig::baseline(),
                FragmentationScenario::NONE,
                opts.clone(),
            ),
        );
    }
    grid
}

/// Figure 9 native grid: scenarios × fig9 config set × suite.
pub fn fig09_native(mode: Mode, opts: &SimOptions) -> Grid {
    let suite = fig09_suite(mode);
    let mut grid = Grid::default();
    for (scenario, _) in scenarios() {
        for cfg in TranslationConfig::fig9_set() {
            for w in &suite {
                grid.push(
                    cell_label(w, &cfg, scenario),
                    Cell::new(w.clone(), cfg.clone(), scenario, opts.clone()),
                );
            }
        }
    }
    grid
}

/// Figure 10 grid (see `fig10_walk_anatomy`): the fig9 config set over
/// the full suite at 0 % LP.
pub fn fig10(_mode: Mode, opts: &SimOptions) -> Grid {
    let suite = WorkloadSpec::suite();
    let mut grid = Grid::default();
    for cfg in TranslationConfig::fig9_set() {
        for w in &suite {
            grid.push(
                cell_label(w, &cfg, FragmentationScenario::NONE),
                Cell::new(
                    w.clone(),
                    cfg.clone(),
                    FragmentationScenario::NONE,
                    opts.clone(),
                ),
            );
        }
    }
    grid
}

/// The §7.5 workload suite for a mode.
pub fn sec75_suite(mode: Mode) -> Vec<WorkloadSpec> {
    if mode == Mode::Quick {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::bfs(),
            WorkloadSpec::hashjoin(),
        ]
    } else {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::bfs(),
            WorkloadSpec::mcf(),
            WorkloadSpec::hashjoin(),
            WorkloadSpec::graph500(),
            WorkloadSpec::liblinear(),
        ]
    }
}

/// The §7.5 native config set: baseline, then the three flattening
/// layout choices.
pub fn sec75_native_configs() -> [TranslationConfig; 4] {
    [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_l3l2(),
        TranslationConfig {
            label: "FPT(1GB L4+L3+L2)",
            layout: Layout::flat_l4l3l2(),
            ptp: false,
            nf_threshold: None,
        },
        TranslationConfig::flattened(),
    ]
}

/// §7.5 native grid (see `sec75_flatten_levels`): per scenario, the
/// baseline suite then each flattening.
pub fn sec75_native(mode: Mode, opts: &SimOptions) -> Grid {
    let suite = sec75_suite(mode);
    let mut grid = Grid::default();
    for (scenario, _) in scenarios() {
        for cfg in sec75_native_configs() {
            for w in &suite {
                grid.push(
                    cell_label(w, &cfg, scenario),
                    Cell::new(w.clone(), cfg.clone(), scenario, opts.clone()),
                );
            }
        }
    }
    grid
}

/// The PTP ablation's workload suite for a mode.
pub fn ablation_ptp_suite(mode: Mode) -> Vec<WorkloadSpec> {
    if mode == Mode::Quick {
        vec![WorkloadSpec::gups(), WorkloadSpec::xsbench()]
    } else {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::graph500(),
            WorkloadSpec::mcf(),
            WorkloadSpec::dc(),
        ]
    }
}

/// Eviction-bias sweep points of the PTP ablation.
pub const ABLATION_PTP_BIASES: [f64; 5] = [0.0, 0.5, 0.9, 0.99, 1.0];
/// Phase-threshold sweep points of the PTP ablation.
pub const ABLATION_PTP_THRESHOLDS: [f64; 5] = [0.0, 0.005, 0.02, 0.1, 0.5];

/// PTP ablation grid (see `ablation_ptp`): the shared baseline suite,
/// then the eviction-bias sweep, then the phase-threshold sweep.
pub fn ablation_ptp(mode: Mode, opts: &SimOptions) -> Grid {
    let suite = ablation_ptp_suite(mode);
    let scenario = FragmentationScenario::NONE;
    let mut grid = Grid::default();
    for w in &suite {
        grid.push(
            format!("base/{}", w.name),
            Cell::new(
                w.clone(),
                TranslationConfig::baseline(),
                scenario,
                opts.clone(),
            ),
        );
    }
    for bias in ABLATION_PTP_BIASES {
        let mut o = opts.clone();
        o.ptp_bias = bias;
        for w in &suite {
            grid.push(
                format!("bias {bias:.2}/{}", w.name),
                Cell::new(
                    w.clone(),
                    TranslationConfig::prioritized(),
                    scenario,
                    o.clone(),
                ),
            );
        }
    }
    for threshold in ABLATION_PTP_THRESHOLDS {
        let mut o = opts.clone();
        o.phase_threshold = threshold;
        for w in &suite {
            grid.push(
                format!("threshold {threshold:.3}/{}", w.name),
                Cell::new(
                    w.clone(),
                    TranslationConfig::prioritized(),
                    scenario,
                    o.clone(),
                ),
            );
        }
    }
    grid
}

/// The NUMA topologies the rival grid sweeps, with display labels. The
/// 1-node entry is the identity topology — its cells must report
/// exactly what the pre-NUMA simulator reported.
pub fn numa_topologies() -> [(&'static str, NumaTopology); 3] {
    [
        ("1-node", NumaTopology::single()),
        ("2-node", NumaTopology::nodes(2)),
        (
            "4-node-ring",
            NumaTopology::nodes(4).with_interconnect(Interconnect::Ring),
        ),
    ]
}

/// The rival-scheme columns of the NUMA grid: display label plus the
/// [`RivalKind`] the runner dispatches on (`None` = the native
/// simulator's FPT+PTP column).
pub fn numa_rival_columns() -> [(&'static str, Option<RivalKind>); 4] {
    [
        ("FPT+PTP", None),
        ("NUMA-Base", Some(RivalKind::Mitosis { replicate: false })),
        ("Mitosis", Some(RivalKind::Mitosis { replicate: true })),
        ("Victima", Some(RivalKind::Victima)),
    ]
}

/// The NUMA-rival workload suite for a mode.
pub fn numa_rivals_suite(mode: Mode) -> Vec<WorkloadSpec> {
    if mode == Mode::Quick {
        vec![WorkloadSpec::gups(), WorkloadSpec::xsbench()]
    } else {
        vec![
            WorkloadSpec::gups(),
            WorkloadSpec::random_access(),
            WorkloadSpec::xsbench(),
            WorkloadSpec::graph500(),
            WorkloadSpec::hashjoin(),
        ]
    }
}

/// Cross-scheme × topology grid (see `numa_rivals` binary): per
/// topology, the native FPT+PTP column then the rival columns
/// (NUMA-Base, Mitosis, Victima), each over the suite at 0 % LP.
/// Rival cells run through [`flatwalk_baselines::run_rival`], so the
/// server serves them with the same cache/retry machinery as native
/// cells.
pub fn numa_rivals(mode: Mode, opts: &SimOptions) -> Grid {
    let suite = numa_rivals_suite(mode);
    let scenario = FragmentationScenario::NONE;
    let mut grid = Grid::default();
    for (tlabel, topo) in numa_topologies() {
        let mut o = opts.clone();
        o.hierarchy = o.hierarchy.with_numa(topo.clone());
        for (slabel, kind) in numa_rival_columns() {
            for w in &suite {
                let label = format!("{tlabel}/{slabel}/{}", w.name);
                let cell = match kind {
                    None => Cell::new(
                        w.clone(),
                        TranslationConfig::flattened_prioritized(),
                        scenario,
                        o.clone(),
                    ),
                    Some(kind) => Cell::rival(
                        w.clone(),
                        TranslationConfig::baseline(),
                        scenario,
                        o.clone(),
                        kind,
                        flatwalk_baselines::run_rival,
                    ),
                };
                grid.push(label, cell);
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        for name in &names {
            assert!(by_name(name).is_some(), "{name} resolves");
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "no duplicate names");
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn grids_build_with_aligned_labels() {
        let opts = Mode::Quick.server_options();
        for def in GRIDS {
            let grid = (def.build)(Mode::Quick, &opts);
            assert!(!grid.is_empty(), "{} builds cells", def.name);
            assert_eq!(
                grid.labels.len(),
                grid.cells.len(),
                "{} labels align",
                def.name
            );
        }
    }

    #[test]
    fn sec71_pwc_shape_is_stable() {
        // The e2e service test and the CI smoke both submit this grid;
        // pin its size and label layout.
        let opts = Mode::Quick.server_options();
        let grid = sec71_pwc(Mode::Quick, &opts);
        assert_eq!(grid.len(), 9);
        assert_eq!(grid.labels[0], "base, L3-PSC=1");
        assert_eq!(grid.labels[5], "FPT (stock PSC)");
        assert_eq!(grid.labels[8], "base, L2-PSC=4096");
    }

    #[test]
    fn numa_rivals_shape_and_topologies() {
        let opts = Mode::Quick.server_options();
        let grid = numa_rivals(Mode::Quick, &opts);
        // 3 topologies × 4 columns × 2 quick workloads.
        assert_eq!(grid.len(), 24);
        assert_eq!(grid.labels[0], "1-node/FPT+PTP/gups");
        assert!(grid.cells[0].rival.is_none(), "native column");
        assert!(grid.cells[2].rival.is_some(), "rival columns carry runners");
        // The 1-node block runs on the identity topology; the later
        // blocks carry distinct topology signatures into the cells.
        assert!(grid.cells[0].opts.hierarchy.numa.is_single());
        let sig2 = grid.cells[8].opts.hierarchy.numa.signature();
        let sig4 = grid.cells[16].opts.hierarchy.numa.signature();
        assert_ne!(sig2, sig4);
        assert_ne!(grid.cells[0].opts.hierarchy.numa.signature(), sig2);
    }

    #[test]
    fn retain_matching_filters_labels_and_cells_together() {
        let opts = Mode::Quick.server_options();
        let mut grid = numa_rivals(Mode::Quick, &opts);
        grid.retain_matching("victima");
        assert_eq!(grid.len(), 6, "3 topologies × 2 quick workloads");
        assert_eq!(grid.labels.len(), grid.cells.len());
        assert!(grid.labels.iter().all(|l| l.contains("Victima")));
        assert!(grid.cells.iter().all(|c| c.rival.is_some()));
        grid.retain_matching("no-such-scheme");
        assert!(grid.is_empty());
    }

    #[test]
    fn mode_scaling_reaches_cells() {
        let quick = sec71_pwc(Mode::Quick, &Mode::Quick.server_options());
        let std = sec71_pwc(Mode::Std, &Mode::Std.server_options());
        assert!(
            quick.cells[0].opts.measure_ops < std.cells[0].opts.measure_ops,
            "quick cells simulate fewer ops"
        );
    }
}
