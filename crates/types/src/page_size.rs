//! Translation granularities.

use crate::Level;

/// The three translation granularities of the x86-64/Armv8 page tables.
///
/// # Examples
///
/// ```
/// use flatwalk_types::PageSize;
///
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size4K.shift(), 12);
/// assert!(PageSize::Size1G > PageSize::Size2M);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// A standard 4 KB page (translated at `L1`).
    Size4K,
    /// A 2 MB large page (translated at `L2`); also the size of a
    /// flattened page-table node (paper §3.2).
    Size2M,
    /// A 1 GB large page (translated at `L3`).
    Size1G,
}

impl PageSize {
    /// log2 of the page size in bytes.
    #[inline]
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// The page size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Mask selecting the page-offset bits of an address.
    #[inline]
    pub fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// The page-table level whose entries translate pages of this size.
    #[inline]
    pub fn translating_level(self) -> Level {
        match self {
            PageSize::Size4K => Level::L1,
            PageSize::Size2M => Level::L2,
            PageSize::Size1G => Level::L3,
        }
    }

    /// The page size translated by entries at `level`, if any.
    #[inline]
    pub fn of_level(level: Level) -> Option<PageSize> {
        match level {
            Level::L1 => Some(PageSize::Size4K),
            Level::L2 => Some(PageSize::Size2M),
            Level::L3 => Some(PageSize::Size1G),
            _ => None,
        }
    }

    /// Rounds `addr` down to the start of its page.
    #[inline]
    pub fn align_down(self, addr: u64) -> u64 {
        addr & !self.offset_mask()
    }

    /// Rounds `addr` up to the next page boundary.
    ///
    /// # Panics
    ///
    /// Panics on overflow (address beyond `u64::MAX - page size`).
    #[inline]
    pub fn align_up(self, addr: u64) -> u64 {
        self.align_down(
            addr.checked_add(self.offset_mask())
                .expect("align_up overflow"),
        )
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size2M => write!(f, "2MB"),
            PageSize::Size1G => write!(f, "1GB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 1 << 21);
        assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
    }

    #[test]
    fn level_mapping_roundtrip() {
        for ps in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            assert_eq!(PageSize::of_level(ps.translating_level()), Some(ps));
        }
        assert_eq!(PageSize::of_level(Level::L4), None);
        assert_eq!(PageSize::of_level(Level::L5), None);
    }

    #[test]
    fn alignment() {
        let ps = PageSize::Size2M;
        assert_eq!(ps.align_down(ps.bytes() + 5), ps.bytes());
        assert_eq!(ps.align_up(ps.bytes() + 5), 2 * ps.bytes());
        assert_eq!(ps.align_up(ps.bytes()), ps.bytes());
        assert_eq!(ps.align_down(0), 0);
    }

    #[test]
    fn ordering_by_size() {
        assert!(PageSize::Size4K < PageSize::Size2M);
        assert!(PageSize::Size2M < PageSize::Size1G);
    }
}
