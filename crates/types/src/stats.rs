//! Numeric summaries used in experiment reports.

/// Geometric mean of a set of (positive) values.
///
/// The paper reports geometric-mean performance across benchmarks
/// (e.g. Fig. 9/12 "Geomean" bars). Returns `None` for an empty input or
/// any non-positive element.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(geometric_mean(&[]), None);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean. Returns `None` for an empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Weighted speedup of a multiprogrammed mix (paper §7.1 multicore):
/// `sum_i (IPC_shared_i / IPC_alone_i) / n`, normalized so 1.0 means
/// "same as each program running alone on the baseline".
///
/// Returns `None` if the slices differ in length, are empty, or any
/// `alone` entry is non-positive.
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> Option<f64> {
    if shared_ipc.len() != alone_ipc.len() || shared_ipc.is_empty() {
        return None;
    }
    if alone_ipc.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let total: f64 = shared_ipc.iter().zip(alone_ipc).map(|(&s, &a)| s / a).sum();
    Some(total / shared_ipc.len() as f64)
}

/// A running tally of hit/miss style events.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::HitMiss;
///
/// let mut hm = HitMiss::default();
/// hm.hit();
/// hm.miss();
/// hm.miss();
/// assert_eq!(hm.total(), 3);
/// assert!((hm.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of hits recorded.
    pub hits: u64,
    /// Number of misses recorded.
    pub misses: u64,
}

impl HitMiss {
    /// Records one hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a hit if `was_hit`, otherwise a miss.
    #[inline]
    pub fn record(&mut self, was_hit: bool) {
        if was_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Total events recorded.
    #[inline]
    pub fn total(self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of events that missed; 0.0 when empty.
    #[inline]
    pub fn miss_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Fraction of events that hit; 0.0 when empty.
    #[inline]
    pub fn hit_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Adds another tally into this one.
    #[inline]
    pub fn merge(&mut self, other: HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Accumulates a mean over streamed samples without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Number of samples pushed.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean, or `None` if no samples were pushed.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.5, 0.8, 2.0];
        assert!((weighted_speedup(&ipc, &ipc).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_rejects_bad_input() {
        assert_eq!(weighted_speedup(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(weighted_speedup(&[], &[]), None);
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), None);
    }

    #[test]
    fn hit_miss_ratios() {
        let mut hm = HitMiss::default();
        assert_eq!(hm.miss_ratio(), 0.0);
        hm.record(true);
        hm.record(false);
        hm.record(false);
        hm.record(false);
        assert_eq!(hm.hits, 1);
        assert_eq!(hm.misses, 3);
        assert!((hm.miss_ratio() - 0.75).abs() < 1e-12);
        assert!((hm.hit_ratio() - 0.25).abs() < 1e-12);

        let mut other = HitMiss::default();
        other.hit();
        other.merge(hm);
        assert_eq!(other.total(), 5);
    }

    #[test]
    fn running_mean() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), None);
        rm.push(10.0);
        rm.push(20.0);
        assert_eq!(rm.count(), 2);
        assert!((rm.mean().unwrap() - 15.0).abs() < 1e-12);
    }
}

/// A fixed-size power-of-two latency histogram (buckets by `log2`,
/// saturating at 2¹⁵ cycles), `Copy`-able so statistics structs can
/// embed it.
///
/// The paper reports *mean* walk latencies; distributions are what show
/// the headline claim directly — under FPT+PTP the *median* walk is a
/// single cache hit.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [4, 4, 4, 200] {
///     h.record(v);
/// }
/// assert!(h.percentile(0.50) <= 7);   // median bucket covers 4..8
/// assert!(h.percentile(0.99) >= 128); // tail sees the DRAM access
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 16],
    count: u64,
}

impl LatencyHistogram {
    /// Number of power-of-two buckets; bucket `i` covers
    /// `[2^i, 2^(i+1))` cycles and the last bucket absorbs everything
    /// above it.
    pub const BUCKETS: usize = 16;

    /// The saturating upper bound reported for the last bucket
    /// (`2^BUCKETS - 1` cycles). Any sample at or above `2^(BUCKETS-1)`
    /// lands in the last bucket, so no percentile ever reports more than
    /// this — the single place that defines the histogram's range.
    pub const MAX_BOUND: u64 = (1u64 << Self::BUCKETS) - 1;

    /// Inclusive upper bound (cycles) of bucket `i`.
    #[inline]
    const fn bucket_bound(i: usize) -> u64 {
        (1u64 << (i + 1)) - 1
    }

    /// Records one latency sample (cycles).
    #[inline]
    pub fn record(&mut self, cycles: u64) {
        let bucket = (64 - cycles.max(1).leading_zeros() as usize - 1).min(Self::BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))`).
    #[inline]
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Upper bound (cycles) of the bucket containing the `p`-quantile
    /// (`0.0 < p <= 1.0`); 0 when empty and never more than
    /// [`MAX_BOUND`](Self::MAX_BOUND). Bucket `i` covers
    /// `[2^i, 2^(i+1))`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Self::bucket_bound(i);
            }
        }
        Self::MAX_BOUND
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn median_and_tail_separate() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(5); // bucket [4,8)
        }
        h.record(200); // bucket [128,256)
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 255);
    }

    #[test]
    fn saturates_large_values() {
        let mut h = LatencyHistogram::default();
        h.record(1_000_000);
        assert_eq!(h.percentile(1.0), (1 << 16) - 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(4);
        b.record(4);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(0.5), 7);
    }

    #[test]
    fn max_bound_matches_last_bucket() {
        assert_eq!(LatencyHistogram::MAX_BOUND, (1u64 << 16) - 1);
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile(1.0), LatencyHistogram::MAX_BOUND);
        assert_eq!(h.buckets()[LatencyHistogram::BUCKETS - 1], 1);
    }

    #[test]
    fn zero_latency_goes_to_first_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        assert_eq!(h.percentile(1.0), 1);
    }
}
