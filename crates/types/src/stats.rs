//! Numeric summaries used in experiment reports.

/// Geometric mean of a set of (positive) values.
///
/// The paper reports geometric-mean performance across benchmarks
/// (e.g. Fig. 9/12 "Geomean" bars). Returns `None` for an empty input or
/// any non-positive element.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(geometric_mean(&[]), None);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean. Returns `None` for an empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Weighted speedup of a multiprogrammed mix (paper §7.1 multicore):
/// `sum_i (IPC_shared_i / IPC_alone_i) / n`, normalized so 1.0 means
/// "same as each program running alone on the baseline".
///
/// Returns `None` if the slices differ in length, are empty, or any
/// `alone` entry is non-positive.
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> Option<f64> {
    if shared_ipc.len() != alone_ipc.len() || shared_ipc.is_empty() {
        return None;
    }
    if alone_ipc.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let total: f64 = shared_ipc.iter().zip(alone_ipc).map(|(&s, &a)| s / a).sum();
    Some(total / shared_ipc.len() as f64)
}

/// A running tally of hit/miss style events.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::HitMiss;
///
/// let mut hm = HitMiss::default();
/// hm.hit();
/// hm.miss();
/// hm.miss();
/// assert_eq!(hm.total(), 3);
/// assert!((hm.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of hits recorded.
    pub hits: u64,
    /// Number of misses recorded.
    pub misses: u64,
}

impl HitMiss {
    /// Records one hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a hit if `was_hit`, otherwise a miss.
    #[inline]
    pub fn record(&mut self, was_hit: bool) {
        if was_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Total events recorded.
    #[inline]
    pub fn total(self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of events that missed; 0.0 when empty.
    #[inline]
    pub fn miss_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Fraction of events that hit; 0.0 when empty.
    #[inline]
    pub fn hit_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Adds another tally into this one.
    #[inline]
    pub fn merge(&mut self, other: HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Accumulates a mean over streamed samples without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Number of samples pushed.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean, or `None` if no samples were pushed.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.5, 0.8, 2.0];
        assert!((weighted_speedup(&ipc, &ipc).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_rejects_bad_input() {
        assert_eq!(weighted_speedup(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(weighted_speedup(&[], &[]), None);
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), None);
    }

    #[test]
    fn hit_miss_ratios() {
        let mut hm = HitMiss::default();
        assert_eq!(hm.miss_ratio(), 0.0);
        hm.record(true);
        hm.record(false);
        hm.record(false);
        hm.record(false);
        assert_eq!(hm.hits, 1);
        assert_eq!(hm.misses, 3);
        assert!((hm.miss_ratio() - 0.75).abs() < 1e-12);
        assert!((hm.hit_ratio() - 0.25).abs() < 1e-12);

        let mut other = HitMiss::default();
        other.hit();
        other.merge(hm);
        assert_eq!(other.total(), 5);
    }

    #[test]
    fn running_mean() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), None);
        rm.push(10.0);
        rm.push(20.0);
        assert_eq!(rm.count(), 2);
        assert!((rm.mean().unwrap() - 15.0).abs() < 1e-12);
    }
}

/// An HDR-style log-linear latency histogram: each power-of-two octave
/// is split into 2³ = 8 sub-buckets, bounding the relative error of any
/// reported quantile at 12.5% (values below 8 are recorded exactly).
/// `Copy`-able so statistics structs can embed it.
///
/// The range covers `0..2³⁸` — enough for modeled walk latencies
/// (cycles) and wall-clock cell/request latencies (nanoseconds, up to
/// ~4.5 minutes). Samples above [`MAX_BOUND`](Self::MAX_BOUND) are
/// tallied in an explicit [`overflow`](Self::overflow) counter (they
/// still count toward [`count`](Self::count) and the exact maximum is
/// retained), so tail percentiles stay honest instead of silently
/// collapsing into a saturated last bucket.
///
/// The paper reports *mean* walk latencies; distributions are what show
/// the headline claim directly — under FPT+PTP the *median* walk is a
/// single cache hit.
///
/// # Examples
///
/// ```
/// use flatwalk_types::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [4, 4, 4, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(0.50), 4);  // values below 8 are exact
/// assert!(h.percentile(0.99) >= 192); // tail sees the DRAM access
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    overflow: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            overflow: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Sub-bucket resolution: each octave `[2^m, 2^(m+1))` is split into
    /// `2^SUB_BITS` equal-width buckets, so any in-range value is
    /// reported within `2^-SUB_BITS` (12.5%) of its true magnitude.
    pub const SUB_BITS: u32 = 3;

    /// Sub-buckets per octave (`2^SUB_BITS`).
    pub const SUBS: usize = 1 << Self::SUB_BITS;

    /// One octave past the largest distinguishable one: values with
    /// their most-significant bit at or above this exponent overflow.
    const MAX_EXP: u32 = 38;

    /// Total buckets: `SUBS` exact buckets for values `0..SUBS`, then
    /// `SUBS` log-linear buckets per octave for exponents
    /// `SUB_BITS..MAX_EXP`.
    pub const BUCKETS: usize = Self::SUBS * (Self::MAX_EXP - Self::SUB_BITS + 1) as usize;

    /// Largest in-range value (`2^MAX_EXP - 1`). Samples above it are
    /// counted in [`overflow`](Self::overflow) rather than binned.
    pub const MAX_BOUND: u64 = (1u64 << Self::MAX_EXP) - 1;

    /// Bucket index for an in-range value.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < Self::SUBS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let octave = (msb - Self::SUB_BITS) as usize;
        let sub = ((value >> (msb - Self::SUB_BITS)) as usize) & (Self::SUBS - 1);
        Self::SUBS + octave * Self::SUBS + sub
    }

    /// Inclusive upper bound of bucket `i` — the value a quantile
    /// landing in that bucket reports.
    #[inline]
    pub fn bucket_bound(i: usize) -> u64 {
        if i < Self::SUBS {
            return i as u64;
        }
        let octave = ((i - Self::SUBS) / Self::SUBS) as u32;
        let sub = ((i - Self::SUBS) % Self::SUBS) as u64;
        let low = (1u64 << (octave + Self::SUB_BITS)) + (sub << octave);
        low + (1u64 << octave) - 1
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        if value > self.max {
            self.max = value;
        }
        if value > Self::MAX_BOUND {
            self.overflow += 1;
        } else {
            self.buckets[Self::bucket_index(value)] += 1;
        }
    }

    /// Number of samples recorded (overflowed samples included).
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples above [`MAX_BOUND`](Self::MAX_BOUND), kept out of the
    /// buckets so in-range percentiles stay exact.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Largest sample ever recorded (0 when empty); exact even for
    /// overflowed samples.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts (bucket `i` covers values up to
    /// [`bucket_bound(i)`](Self::bucket_bound)).
    #[inline]
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Iterates the non-empty buckets as `(upper_bound, count)` pairs —
    /// the sparse form reports serialize.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 < p <= 1.0`) by exact rank count; 0 when empty. A rank
    /// that falls among overflowed samples reports the exact
    /// [`max`](Self::max) instead of a saturated bound.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_bound(i);
            }
        }
        self.max
    }

    /// Median sample.
    #[inline]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile sample.
    #[inline]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile sample.
    #[inline]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile sample.
    #[inline]
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.overflow += other.overflow;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::default();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(LatencyHistogram::bucket_bound(v as usize), v);
            assert_eq!(h.buckets()[v as usize], 1);
        }
        assert_eq!(h.percentile(1.0 / 8.0), 0);
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn median_and_tail_separate() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(5);
        }
        h.record(200); // octave [128,256), sub-bucket [192,208)
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.percentile(1.0), 207);
    }

    #[test]
    fn relative_error_bounded() {
        // Every bucket's reported bound is within 12.5% above any value
        // that maps into it.
        let mut probe = 1u64;
        while probe < LatencyHistogram::MAX_BOUND / 2 {
            for v in [probe, probe + probe / 3, probe * 2 - 1] {
                let bound = LatencyHistogram::bucket_bound(LatencyHistogram::bucket_index(v));
                assert!(bound >= v, "bound {bound} below sample {v}");
                assert!(
                    (bound - v) as f64 <= v as f64 * 0.125 + 1.0,
                    "bound {bound} too far above sample {v}"
                );
            }
            probe *= 2;
        }
    }

    #[test]
    fn overflow_is_counted_and_max_exact() {
        let mut h = LatencyHistogram::default();
        h.record(10);
        h.record(u64::MAX - 3);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), u64::MAX - 3);
        // The overflowed rank reports the exact max, not a bucket bound.
        assert_eq!(h.percentile(1.0), u64::MAX - 3);
        assert_eq!(h.percentile(0.5), 10);
        // The in-range buckets hold exactly the in-range sample.
        assert_eq!(h.buckets().iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(4);
        b.record(4);
        b.record(300);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.percentile(0.5), 4);
    }

    #[test]
    fn max_bound_is_last_bucket_bound() {
        assert_eq!(
            LatencyHistogram::bucket_bound(LatencyHistogram::BUCKETS - 1),
            LatencyHistogram::MAX_BOUND
        );
        let mut h = LatencyHistogram::default();
        h.record(LatencyHistogram::MAX_BOUND);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.buckets()[LatencyHistogram::BUCKETS - 1], 1);
        h.record(LatencyHistogram::MAX_BOUND + 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_consistent() {
        let mut prev = None;
        for i in 0..LatencyHistogram::BUCKETS {
            let bound = LatencyHistogram::bucket_bound(i);
            if let Some(p) = prev {
                assert!(bound > p, "bounds must strictly increase at {i}");
            }
            // The bound itself maps back into its own bucket.
            assert_eq!(LatencyHistogram::bucket_index(bound), i);
            prev = Some(bound);
        }
    }

    #[test]
    fn nonzero_buckets_are_sparse_pairs() {
        let mut h = LatencyHistogram::default();
        h.record(3);
        h.record(3);
        h.record(100);
        let pairs: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (3, 2));
        assert_eq!(pairs[1].1, 1);
        assert!(pairs[1].0 >= 100 && pairs[1].0 <= 112);
    }

    #[test]
    fn percentile_accessors_order() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
        // Exact-count semantics: p50 of 1..=1000 is the bucket holding
        // rank 500, within 12.5% of 500.
        assert!(h.p50() >= 500 && h.p50() <= 563);
    }
}
