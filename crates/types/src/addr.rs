//! Virtual and physical address newtypes.

use crate::{Level, PageSize, CACHE_LINE_BYTES};

/// A virtual address.
///
/// Provides the index-field decompositions a hardware page-table walker
/// performs: conventional 9-bit per-level indices, and the 18-bit indices
/// used when two levels have been flattened into one 2 MB node
/// (paper §3.2), or 27-bit indices for a 1 GB triple-flattened node.
///
/// # Examples
///
/// ```
/// use flatwalk_types::{VirtAddr, Level, PageSize};
///
/// let va = VirtAddr::new((3 << 39) | (5 << 30) | (7 << 21) | (9 << 12) | 0xabc);
/// assert_eq!(va.index(Level::L4), 3);
/// assert_eq!(va.index(Level::L3), 5);
/// assert_eq!(va.index(Level::L2), 7);
/// assert_eq!(va.index(Level::L1), 9);
/// assert_eq!(va.offset(PageSize::Size4K), 0xabc);
///
/// // Flattened L4+L3 node: 18 bits starting at the L4 position.
/// assert_eq!(va.flat_index(Level::L4), (3 << 9) | 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(u64);

/// A physical address.
///
/// In virtualized configurations the *guest-physical* address produced by
/// the guest page table is re-interpreted as the input of the host page
/// table; use [`PhysAddr::as_nested_input`] for that conversion so intent
/// is visible at the call site (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(u64);

macro_rules! common_addr_impls {
    ($ty:ident) => {
        impl $ty {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw 64-bit address value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The cache-line number of this address (address / 64).
            #[inline]
            pub fn line(self) -> u64 {
                self.0 / CACHE_LINE_BYTES
            }

            /// The page offset under the given page size.
            #[inline]
            pub fn offset(self, size: PageSize) -> u64 {
                self.0 & size.offset_mask()
            }

            /// Shorthand for the 12-bit 4 KB offset.
            #[inline]
            pub fn offset_4k(self) -> u64 {
                self.offset(PageSize::Size4K)
            }

            /// Rounds down to the containing page boundary.
            #[inline]
            pub fn align_down(self, size: PageSize) -> Self {
                Self(size.align_down(self.0))
            }

            /// This address plus `delta` bytes.
            ///
            /// # Panics
            ///
            /// Panics on 64-bit overflow.
            #[inline]
            #[allow(clippy::should_implement_trait)] // deliberate: panics, unlike `+`
            pub fn add(self, delta: u64) -> Self {
                Self(self.0.checked_add(delta).expect("address overflow"))
            }

            /// The page frame number under the given page size.
            #[inline]
            pub fn frame(self, size: PageSize) -> u64 {
                self.0 >> size.shift()
            }
        }

        impl From<u64> for $ty {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            fn from(addr: $ty) -> u64 {
                addr.0
            }
        }

        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl std::fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

common_addr_impls!(VirtAddr);
common_addr_impls!(PhysAddr);

impl VirtAddr {
    /// The conventional 9-bit page-table index for `level`.
    #[inline]
    pub fn index(self, level: Level) -> usize {
        ((self.0 >> level.index_shift()) & 0x1ff) as usize
    }

    /// The 18-bit index used when `top` and its child level are flattened
    /// into a single 2 MB node (paper §3.2).
    ///
    /// `top` is the *upper* of the two merged levels; e.g. for a flattened
    /// L4+L3 node pass [`Level::L4`], and the index spans VA bits
    /// `[47:30]`.
    ///
    /// # Panics
    ///
    /// Panics if `top` is `L1` (it has no child to merge with).
    #[inline]
    pub fn flat_index(self, top: Level) -> usize {
        let child = top.child().expect("L1 cannot head a flattened node");
        ((self.0 >> child.index_shift()) & 0x3ffff) as usize
    }

    /// The 27-bit index used when three levels starting at `top` are
    /// flattened into a single 1 GB node (paper §3.2 mentions L4+L3+L2).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels exist below `top`.
    #[inline]
    pub fn flat3_index(self, top: Level) -> usize {
        let grandchild = top
            .child()
            .and_then(Level::child)
            .expect("need two levels below the top of a 1 GB flattened node");
        ((self.0 >> grandchild.index_shift()) & 0x7ff_ffff) as usize
    }

    /// The virtual page number under the given page size.
    #[inline]
    pub fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Replaces the top 9-bit index field at `level` with `index`
    /// (used to synthesize recursive page-table access addresses, §3.5).
    #[inline]
    pub fn with_index(self, level: Level, index: usize) -> VirtAddr {
        debug_assert!(index < 512);
        let shift = level.index_shift();
        let mask = 0x1ffu64 << shift;
        VirtAddr((self.0 & !mask) | ((index as u64) << shift))
    }
}

impl PhysAddr {
    /// Re-interprets this (guest-)physical address as the virtual-address
    /// input of the *host* page table for a nested (2-D) walk.
    #[inline]
    pub fn as_nested_input(self) -> VirtAddr {
        VirtAddr(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compose(l4: u64, l3: u64, l2: u64, l1: u64, off: u64) -> VirtAddr {
        VirtAddr::new((l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << 12) | off)
    }

    #[test]
    fn nine_bit_indices() {
        let va = compose(511, 0, 256, 1, 42);
        assert_eq!(va.index(Level::L4), 511);
        assert_eq!(va.index(Level::L3), 0);
        assert_eq!(va.index(Level::L2), 256);
        assert_eq!(va.index(Level::L1), 1);
        assert_eq!(va.offset_4k(), 42);
    }

    #[test]
    fn flat_indices_concatenate_two_levels() {
        let va = compose(3, 5, 7, 9, 0);
        assert_eq!(va.flat_index(Level::L4), (3 << 9) | 5);
        assert_eq!(va.flat_index(Level::L3), (5 << 9) | 7);
        assert_eq!(va.flat_index(Level::L2), (7 << 9) | 9);
    }

    #[test]
    fn flat3_index_concatenates_three_levels() {
        let va = compose(3, 5, 7, 9, 0);
        assert_eq!(va.flat3_index(Level::L4), (3 << 18) | (5 << 9) | 7);
    }

    #[test]
    #[should_panic(expected = "L1 cannot head")]
    fn flat_index_rejects_l1() {
        let _ = VirtAddr::new(0).flat_index(Level::L1);
    }

    #[test]
    fn with_index_replaces_field() {
        let va = compose(1, 2, 3, 4, 5);
        let modified = va.with_index(Level::L3, 77);
        assert_eq!(modified.index(Level::L3), 77);
        assert_eq!(modified.index(Level::L4), 1);
        assert_eq!(modified.index(Level::L2), 3);
        assert_eq!(modified.offset_4k(), 5);
    }

    #[test]
    fn line_and_frame() {
        let pa = PhysAddr::new(0x1_0040);
        assert_eq!(pa.line(), 0x1_0040 / 64);
        assert_eq!(pa.frame(PageSize::Size4K), 0x10);
        assert_eq!(pa.offset(PageSize::Size4K), 0x40);
    }

    #[test]
    fn nested_input_preserves_bits() {
        let gpa = PhysAddr::new(0xdead_b000);
        assert_eq!(gpa.as_nested_input().raw(), 0xdead_b000);
    }

    #[test]
    fn conversions_and_display() {
        let va: VirtAddr = 0x1234u64.into();
        let raw: u64 = va.into();
        assert_eq!(raw, 0x1234);
        assert_eq!(va.to_string(), "0x1234");
        assert_eq!(format!("{va:x}"), "1234");
    }

    #[test]
    fn page_number_by_size() {
        let va = VirtAddr::new(5 * PageSize::Size2M.bytes() + 123);
        assert_eq!(va.page_number(PageSize::Size2M), 5);
        assert_eq!(va.page_number(PageSize::Size4K), 5 * 512);
    }
}
