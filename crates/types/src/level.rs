//! Page-table level labels.

/// A level of the radix page table, labelled **root-to-leaf** exactly as in
/// the paper: a conventional x86-64 4-level table is `L4 → L3 → L2 → L1`,
/// and 5-level paging adds `L5` above `L4`.
///
/// `L1` entries translate 4 KB pages; an `L2` entry may directly translate a
/// 2 MB page and an `L3` entry a 1 GB page.
///
/// # Examples
///
/// ```
/// use flatwalk_types::Level;
///
/// assert_eq!(Level::L1.index_shift(), 12);
/// assert_eq!(Level::L4.index_shift(), 39);
/// assert_eq!(Level::L3.child(), Some(Level::L2));
/// assert_eq!(Level::L1.child(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Leaf level; each entry translates one 4 KB page.
    L1,
    /// Second level; entries point to L1 nodes or translate 2 MB pages.
    L2,
    /// Third level; entries point to L2 nodes or translate 1 GB pages.
    L3,
    /// Fourth level (the root of a 4-level table).
    L4,
    /// Fifth level (the root of a 5-level table, paper §3.6).
    L5,
}

impl Level {
    /// All levels of a 4-level table in *walk order* (root first).
    pub const WALK_4: [Level; 4] = [Level::L4, Level::L3, Level::L2, Level::L1];

    /// All levels of a 5-level table in *walk order* (root first).
    pub const WALK_5: [Level; 5] = [Level::L5, Level::L4, Level::L3, Level::L2, Level::L1];

    /// Numeric rank of this level (`L1` → 1, …, `L5` → 5).
    #[inline]
    pub fn rank(self) -> u8 {
        match self {
            Level::L1 => 1,
            Level::L2 => 2,
            Level::L3 => 3,
            Level::L4 => 4,
            Level::L5 => 5,
        }
    }

    /// Builds a level from its numeric rank.
    ///
    /// Returns `None` unless `1 <= rank <= 5`.
    #[inline]
    pub fn from_rank(rank: u8) -> Option<Level> {
        match rank {
            1 => Some(Level::L1),
            2 => Some(Level::L2),
            3 => Some(Level::L3),
            4 => Some(Level::L4),
            5 => Some(Level::L5),
            _ => None,
        }
    }

    /// Bit position within a virtual address where this level's 9-bit index
    /// field starts: 12 for `L1`, 21 for `L2`, …, 48 for `L5`.
    #[inline]
    pub fn index_shift(self) -> u32 {
        12 + 9 * (self.rank() as u32 - 1)
    }

    /// The next level *down* (towards the leaf), or `None` for `L1`.
    #[inline]
    pub fn child(self) -> Option<Level> {
        Level::from_rank(self.rank() - 1)
    }

    /// The next level *up* (towards the root), or `None` for `L5`.
    #[inline]
    pub fn parent(self) -> Option<Level> {
        Level::from_rank(self.rank() + 1)
    }

    /// Bytes of virtual address space covered by **one entry** at this
    /// level: 4 KB at `L1`, 2 MB at `L2`, 1 GB at `L3`, 512 GB at `L4`,
    /// 256 TB at `L5`.
    #[inline]
    pub fn entry_coverage(self) -> u64 {
        1u64 << self.index_shift()
    }

    /// Bytes of virtual address space covered by one **node** at this level
    /// (512 entries).
    #[inline]
    pub fn node_coverage(self) -> u64 {
        self.entry_coverage() << 9
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_match_x86_layout() {
        assert_eq!(Level::L1.index_shift(), 12);
        assert_eq!(Level::L2.index_shift(), 21);
        assert_eq!(Level::L3.index_shift(), 30);
        assert_eq!(Level::L4.index_shift(), 39);
        assert_eq!(Level::L5.index_shift(), 48);
    }

    #[test]
    fn child_parent_roundtrip() {
        for l in Level::WALK_5 {
            if let Some(c) = l.child() {
                assert_eq!(c.parent(), Some(l));
            }
            if let Some(p) = l.parent() {
                assert_eq!(p.child(), Some(l));
            }
        }
        assert_eq!(Level::L1.child(), None);
        assert_eq!(Level::L5.parent(), None);
    }

    #[test]
    fn coverage_values() {
        assert_eq!(Level::L1.entry_coverage(), 4096);
        assert_eq!(Level::L2.entry_coverage(), 2 * 1024 * 1024);
        assert_eq!(Level::L3.entry_coverage(), 1024 * 1024 * 1024);
        assert_eq!(Level::L1.node_coverage(), Level::L2.entry_coverage());
        assert_eq!(Level::L2.node_coverage(), Level::L3.entry_coverage());
    }

    #[test]
    fn walk_orders_are_root_first() {
        assert_eq!(Level::WALK_4.first(), Some(&Level::L4));
        assert_eq!(Level::WALK_4.last(), Some(&Level::L1));
        assert_eq!(Level::WALK_5.first(), Some(&Level::L5));
    }

    #[test]
    fn display() {
        assert_eq!(Level::L3.to_string(), "L3");
    }
}
