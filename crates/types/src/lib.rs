//! Foundational types shared by every `flatwalk` crate.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * [`VirtAddr`] / [`PhysAddr`] — 64-bit address newtypes with radix
//!   page-table index extraction, including the 18-bit indices used by
//!   *flattened* page-table nodes (paper §3.2).
//! * [`Level`] — the page-table levels `L1` (leaf) through `L5`, labelled
//!   root-to-leaf as in the paper (footnote 1: "We label the page table L4,
//!   L3, L2 and L1 from root to leaf").
//! * [`PageSize`] — 4 KB / 2 MB / 1 GB translation granularities.
//! * [`AccessKind`] and [`OwnerId`] — classification of memory-system
//!   accesses (data vs. page-table; which core/process) used by the cache
//!   replacement policies of paper §5/§6.1.
//! * [`rng`] — small deterministic random-number generators so every
//!   experiment is exactly reproducible.
//! * [`stats`] — numeric summaries (geometric mean, weighted speedup)
//!   used when reporting experiment results.
//!
//! # Examples
//!
//! ```
//! use flatwalk_types::{VirtAddr, Level};
//!
//! // 0x7f12_3456_7000 decomposes into four 9-bit indices + 12-bit offset.
//! let va = VirtAddr::new(0x7f12_3456_7000);
//! assert_eq!(va.index(Level::L4), ((0x7f12_3456_7000u64 >> 39) & 0x1ff) as usize);
//! assert_eq!(va.offset_4k(), 0x0);
//!
//! // A flattened L4+L3 node consumes 18 bits at once.
//! assert_eq!(
//!     va.flat_index(Level::L4),
//!     ((0x7f12_3456_7000u64 >> 30) & 0x3ffff) as usize,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod level;
mod page_size;
pub mod rng;
pub mod stats;

pub use addr::{PhysAddr, VirtAddr};
pub use level::Level;
pub use page_size::PageSize;

/// Number of entries in one conventional (4 KB) page-table node.
pub const ENTRIES_PER_NODE: usize = 512;

/// Number of entries in one flattened (2 MB) page-table node.
pub const ENTRIES_PER_FLAT_NODE: usize = ENTRIES_PER_NODE * ENTRIES_PER_NODE;

/// Size in bytes of one page-table entry.
pub const PTE_BYTES: u64 = 8;

/// Cache-line size used throughout the memory hierarchy (Table 1/3: 64 B).
pub const CACHE_LINE_BYTES: u64 = 64;

/// What a memory-system access is fetching.
///
/// The cache prioritization mechanism of paper §5 discriminates between
/// ordinary data lines and page-table lines using a per-line tag bit
/// (§6.1); this enum is that bit in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A regular program data (or instruction) access.
    Data,
    /// An access made by a hardware page-table walker to a page-table node.
    PageTable,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::PageTable`].
    #[inline]
    pub fn is_page_table(self) -> bool {
        matches!(self, AccessKind::PageTable)
    }
}

/// Identifies which core/process an access belongs to.
///
/// Mirrors the MPAM-style partition identifiers of paper §6.1, used in the
/// multicore evaluation to prevent one process' data from evicting
/// another's page-table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OwnerId(pub u8);

impl OwnerId {
    /// Owner used by single-core simulations.
    pub const SINGLE: OwnerId = OwnerId(0);
}

impl std::fmt::Display for OwnerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "owner{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(ENTRIES_PER_NODE as u64 * PTE_BYTES, 4096);
        assert_eq!(
            ENTRIES_PER_FLAT_NODE as u64 * PTE_BYTES,
            2 * 1024 * 1024,
            "a flattened node must fill exactly one 2 MB page"
        );
    }

    #[test]
    fn access_kind_page_table_flag() {
        assert!(AccessKind::PageTable.is_page_table());
        assert!(!AccessKind::Data.is_page_table());
    }

    #[test]
    fn owner_display() {
        assert_eq!(OwnerId(3).to_string(), "owner3");
        assert_eq!(OwnerId::SINGLE, OwnerId::default());
    }
}
