//! Small deterministic pseudo-random generators.
//!
//! Every stochastic decision in the simulator (workload address streams,
//! the 99 %/1 % replacement coin of paper §6.1, fragmentation injection)
//! draws from seeded generators defined here so that all experiments and
//! tests are bit-for-bit reproducible without depending on the `rand`
//! crate's version-dependent stream definitions.

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014); also used to seed xoshiro generators.
///
/// # Examples
///
/// ```
/// use flatwalk_types::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); slight modulo bias is
    /// irrelevant at simulator scales but this method avoids it anyway.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be non-zero");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (for splitting one seed into
    /// per-component streams).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// One round of the SplitMix64 finalizer: a cheap, well-mixing 64-bit
/// permutation (Stafford's "Mix13" variant).
#[inline]
pub const fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`std::hash::Hasher`] built on [`splitmix_mix`].
///
/// SipHash (the `HashMap` default) burns most of a small-key lookup on
/// DoS-resistant mixing the simulator does not need: its map keys are
/// frame numbers it generated itself. One finalizer round per written
/// word is plenty, and the fixed seed keeps behaviour identical across
/// runs and processes.
#[derive(Debug, Clone)]
pub struct SplitMixHasher {
    state: u64,
}

impl std::hash::Hasher for SplitMixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.write_u64(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(word) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.state = splitmix_mix(
            self.state
                .wrapping_add(value)
                .wrapping_add(0x9E37_79B9_7F4A_7C15),
        );
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// [`std::hash::BuildHasher`] producing seeded [`SplitMixHasher`]s.
#[derive(Debug, Clone, Copy)]
pub struct SplitMixBuildHasher {
    seed: u64,
}

impl SplitMixBuildHasher {
    /// A build-hasher whose hashers start from `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMixBuildHasher { seed }
    }
}

impl Default for SplitMixBuildHasher {
    fn default() -> Self {
        SplitMixBuildHasher::new(0x5EED_F1A7_3A17_A5E5)
    }
}

impl std::hash::BuildHasher for SplitMixBuildHasher {
    type Hasher = SplitMixHasher;

    #[inline]
    fn build_hasher(&self) -> SplitMixHasher {
        SplitMixHasher { state: self.seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn hasher_is_deterministic_and_sensitive() {
        let bh = SplitMixBuildHasher::default();
        let hash_of = |v: u64| bh.hash_one(v);
        assert_eq!(hash_of(42), hash_of(42));
        assert_ne!(hash_of(42), hash_of(43));
        assert_ne!(hash_of(0), hash_of(1 << 32));
    }

    #[test]
    fn hasher_handles_unaligned_byte_tails() {
        let bh = SplitMixBuildHasher::new(7);
        let hash_bytes = |b: &[u8]| {
            let mut h = bh.build_hasher();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
        assert_eq!(hash_bytes(b"12345678"), hash_bytes(b"12345678"));
    }

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_range(10) < 10);
        }
        for _ in 0..100 {
            assert_eq!(r.next_range(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn range_zero_panics() {
        SplitMix64::new(0).next_range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_rate_is_roughly_right() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.99)).count();
        assert!(
            (98_500..=99_500).contains(&hits),
            "99% coin produced {hits}/100000"
        );
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle should not be identity");
    }
}
