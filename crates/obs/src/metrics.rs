//! Named metrics: per-cell snapshots merged into a process-global
//! registry.
//!
//! The simulator's hot paths already accumulate every interesting count
//! in their existing statistics structs (that is what keeps them
//! allocation-free); this module gives those counts *names* —
//! `tlb.l2.miss`, `pwc.p27.hit`, `ptp.phase_flips`,
//! `cache.l2.pt_victims`, `setup.cache.hit` — in a mergeable
//! [`MetricsSnapshot`]. Each experiment cell derives its snapshot from
//! its finished report; the runner merges them into the global registry
//! as cells complete (feeding the live progress line) and the JSON
//! emitter dumps the aggregate at exit.
//!
//! Counters add under merge; gauges keep the last merged value.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulating count (adds under merge).
    Counter(u64),
    /// A point-in-time measurement (last merge wins).
    Gauge(f64),
}

/// An ordered name → value map of metrics.
///
/// Backed by a `BTreeMap`, so iteration (and the JSON dump) is sorted
/// by name regardless of registration or merge order — parallel runners
/// merging cells in any order produce the identical dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.entries
            .insert(name.to_string(), MetricValue::Counter(value));
        self
    }

    /// Sets (or replaces) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
        self
    }

    /// Adds `delta` to a counter, creating it at `delta` if absent.
    pub fn add(&mut self, name: &str, delta: u64) -> &mut Self {
        match self.entries.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += delta,
            _ => {
                self.entries
                    .insert(name.to_string(), MetricValue::Counter(delta));
            }
        }
        self
    }

    /// The counter's value (0 if absent or a gauge).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges overwrite.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            match (self.entries.get_mut(name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (_, v) => {
                    self.entries.insert(name.clone(), *v);
                }
            }
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the snapshot as a JSON object (name-sorted keys).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => o.push(name, *v),
                MetricValue::Gauge(v) => o.push(name, *v),
            };
        }
        o
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): a `# TYPE` line then a sample per metric, in
    /// name order. Metric names are prefixed with `prefix` and
    /// sanitized (every character outside `[A-Za-z0-9_]` becomes `_`,
    /// so `tlb.l2.miss` exposes as `<prefix>tlb_l2_miss`). Counters
    /// render as `counter`, gauges as `gauge`; non-finite gauge values
    /// are skipped (Prometheus has no NaN counters worth scraping).
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            let exposed = sanitize_metric_name(&format!("{prefix}{name}"));
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {exposed} counter\n{exposed} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        out.push_str(&format!("# TYPE {exposed} gauge\n{exposed} {v:?}\n"));
                    }
                }
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus name grammar:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with `.` and every other outside
/// character folded to `_` and a leading digit guarded by `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphabetic() || ch == '_' || (ch.is_ascii_digit() && i > 0);
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn global() -> &'static Mutex<MetricsSnapshot> {
    static GLOBAL: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(MetricsSnapshot::new()))
}

/// Merges a per-cell snapshot into the process-global registry (the
/// runner calls this as each cell completes).
pub fn merge_global(snapshot: &MetricsSnapshot) {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .merge(snapshot);
}

/// Adds `delta` to one global counter directly (for events outside any
/// cell, e.g. setup-cache traffic).
pub fn add_global(name: &str, delta: u64) {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .add(name, delta);
}

/// Sets one global gauge directly (for point-in-time process-wide
/// measurements, e.g. end-of-run latency percentiles).
pub fn gauge_global(name: &str, value: f64) {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .gauge(name, value);
}

/// A copy of the process-global registry.
pub fn global_snapshot() -> MetricsSnapshot {
    global().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// One global counter's current value (0 if absent).
pub fn global_counter(name: &str) -> u64 {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .counter_value(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_gauges_overwrite_under_merge() {
        let mut a = MetricsSnapshot::new();
        a.counter("tlb.l2.miss", 10).gauge("ipc", 0.5);
        let mut b = MetricsSnapshot::new();
        b.counter("tlb.l2.miss", 5)
            .counter("tlb.l2.hit", 1)
            .gauge("ipc", 0.75);
        a.merge(&b);
        assert_eq!(a.counter_value("tlb.l2.miss"), 15);
        assert_eq!(a.counter_value("tlb.l2.hit"), 1);
        assert_eq!(
            a.iter().find(|(k, _)| *k == "ipc").map(|(_, v)| *v),
            Some(MetricValue::Gauge(0.75))
        );
    }

    #[test]
    fn json_dump_is_name_sorted() {
        let mut m = MetricsSnapshot::new();
        m.counter("z.last", 1)
            .counter("a.first", 2)
            .gauge("m.mid", 0.25);
        assert_eq!(
            m.to_json().to_string(),
            r#"{"a.first":2,"m.mid":0.25,"z.last":1}"#
        );
    }

    #[test]
    fn add_accumulates() {
        let mut m = MetricsSnapshot::new();
        m.add("walks", 3).add("walks", 4);
        assert_eq!(m.counter_value("walks"), 7);
        assert_eq!(m.counter_value("absent"), 0);
    }

    #[test]
    fn prometheus_exposition_sanitizes_and_types() {
        let mut m = MetricsSnapshot::new();
        m.counter("tlb.l2.miss", 15)
            .gauge("energy.l1-nj", 2.5)
            .gauge("bad", f64::NAN);
        let text = m.to_prometheus("flatwalk_");
        assert!(text.contains("# TYPE flatwalk_tlb_l2_miss counter\n"));
        assert!(text.contains("flatwalk_tlb_l2_miss 15\n"));
        assert!(text.contains("# TYPE flatwalk_energy_l1_nj gauge\n"));
        assert!(text.contains("flatwalk_energy_l1_nj 2.5\n"));
        assert!(!text.contains("bad"), "NaN gauges are skipped");
        assert_eq!(sanitize_metric_name("9lives.x"), "_lives_x");
    }

    #[test]
    fn global_registry_accumulates() {
        // Other tests share the process-global registry, so assert on a
        // key unique to this test.
        add_global("test.metrics.global_registry", 2);
        add_global("test.metrics.global_registry", 3);
        assert!(global_counter("test.metrics.global_registry") >= 5);
        assert!(global_snapshot().counter_value("test.metrics.global_registry") >= 5);
    }
}
