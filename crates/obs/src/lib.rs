//! Observability layer: metrics registry, event tracing, and a
//! hand-rolled JSON writer.
//!
//! The paper's headline claim — under FPT+PTP the *common-case* walk is
//! a single cache hit — is a claim about event-level behaviour, so this
//! crate makes the event level inspectable without perturbing it:
//!
//! * [`json`] — an ordered-key JSON value with a writer (and a small
//!   parser for round-trip tests). No external dependencies; the build
//!   environment is offline.
//! * [`metrics`] — allocation-light named counters/gauges merged per
//!   experiment cell into a process-global registry and dumped at exit.
//! * [`trace`] — a [`trace::Tracer`] trait with a no-op default (one
//!   relaxed atomic load when disabled) and a JSONL file sink enabled
//!   via `FLATWALK_TRACE=walks[,phase,repl,spans]:path`.
//! * [`span`] — hierarchical profiling spans (scoped RAII timers with
//!   per-thread stacks) feeding the `spans` trace channel and a
//!   process-global folded-stack (flamegraph) aggregation.
//! * [`analyze`] — the walk/span JSONL analysis behind the
//!   `flatwalk-trace` CLI: depth × serving-level matrices, PSC-skip and
//!   fallback breakdowns, per-span time attribution.
//!
//! Hard contract shared by all of them: with tracing, spans, and JSON
//! reporting off, simulation output (stdout *and* every statistic that
//! feeds it) is byte-identical to a build without this crate in the
//! loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use json::Json;
pub use metrics::MetricsSnapshot;
pub use trace::Tracer;
