//! A minimal JSON value with an ordered-key writer and parser.
//!
//! The build environment is offline (no serde), so machine-readable
//! reports are emitted through this hand-rolled writer. Two properties
//! matter for stable, diffable schemas:
//!
//! * **Key order is insertion order** — objects are backed by a
//!   `Vec<(String, Json)>`, so a report renders its fields in the order
//!   the code added them, every run, on every platform.
//! * **No NaN/Inf leakage** — JSON has no encoding for non-finite
//!   numbers; [`Json::f64`] maps them to `null` instead of emitting
//!   text that `jq`/`python` would reject.

use std::fmt::Write as _;

/// A JSON value. Construct objects with [`Json::obj`] and extend them
/// with [`Json::push`]; numbers via [`Json::f64`]/`From` impls.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (u64 counters dominate this workload's
    /// reports; kept exact rather than rounded through f64).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (use [`Json::f64`], which filters non-finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// A float value; NaN and ±Inf become `null` (JSON cannot encode
    /// them, and a leaked `NaN` token breaks every downstream parser).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Float(v)
        } else {
            Json::Null
        }
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push on non-object Json: {other:?}"),
        }
        self
    }

    /// Looks up a key in an object (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Serializes into `out` (compact, deterministic).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{v:?}` round-trips f64 exactly and always carries
                    // a decimal point or exponent, keeping floats
                    // distinguishable from integers after re-parsing.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact, deterministic serialization; `to_string()` comes via
/// `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::f64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (used by round-trip tests and the CI smoke;
/// the writer is the production path).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &'static str) -> ParseError {
    ParseError { offset, message }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8, message: &'static str) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, message))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':'")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 char (input is a &str, so this is
                // always a valid boundary walk).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s
                    .chars()
                    .next()
                    .ok_or_else(|| err(*pos, "unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::f64)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_insertion_order() {
        let mut o = Json::obj();
        o.push("zebra", 1u64).push("apple", 2u64).push("mid", 3u64);
        assert_eq!(o.to_string(), r#"{"zebra":1,"apple":2,"mid":3}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Json::obj();
        o.push("nan", f64::NAN)
            .push("inf", f64::INFINITY)
            .push("ninf", f64::NEG_INFINITY)
            .push("ok", 1.5f64);
        let s = o.to_string();
        assert_eq!(s, r#"{"nan":null,"inf":null,"ninf":null,"ok":1.5}"#);
        assert!(!s.contains("NaN") && !s.contains("Infinity"));
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn round_trips_composite_values() {
        let mut inner = Json::obj();
        inner
            .push("pi", 3.25f64)
            .push("n", u64::MAX)
            .push("neg", -7i64);
        let mut o = Json::obj();
        o.push("name", "walk✓")
            .push("flags", Json::Array(vec![Json::Bool(true), Json::Null]))
            .push("inner", inner);
        let parsed = parse(&o.to_string()).unwrap();
        assert_eq!(parsed, o);
        // And the re-rendered text is byte-identical (stable schema).
        assert_eq!(parsed.to_string(), o.to_string());
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        let v = parse(" { \"a\" : [ 1 , 2.5 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(parse("{}x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn float_rendering_round_trips_exactly() {
        for v in [0.1f64, 1e-12, 123456.789, 1.0] {
            let s = Json::f64(v).to_string();
            match parse(&s).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "{s}"),
                other => panic!("expected float from {s}, got {other:?}"),
            }
        }
    }

    #[test]
    fn accessors() {
        let mut o = Json::obj();
        o.push("n", 3u64);
        assert_eq!(o.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(o.get("missing"), None);
        assert_eq!(Json::Int(5).as_u64(), Some(5));
        assert_eq!(Json::Int(-5).as_u64(), None);
    }
}
