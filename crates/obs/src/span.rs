//! Hierarchical profiling spans: scoped, nestable wall-clock timers.
//!
//! A span is opened with [`enter`] and closed when the returned guard
//! drops, so nesting is well-formed by construction — every exit
//! matches the enter that produced its guard, in LIFO order per thread.
//! Each thread keeps its own span stack; the `;`-joined stack path
//! (`"cell;cell.attempt;engine.measure"`) identifies a span's full
//! ancestry, following the folded-stack convention flamegraph tooling
//! expects.
//!
//! Closing a span does two things:
//!
//! * appends the `(path, duration)` pair to a process-global folded
//!   aggregation, rendered by [`render_folded`] into
//!   flamegraph-compatible text (`path self_nanos` per line), and
//! * emits a [`trace::SpanRecord`] on the `spans` trace channel, so a
//!   [`trace::JsonlTracer`] sink interleaves span lines with walk
//!   records for `flatwalk-trace` to attribute time across.
//!
//! The disabled path costs exactly one relaxed atomic load per
//! [`enter`] (the same budget as the event tracer's guards — see the
//! `obs/span_disabled_check` bench): the returned guard is unarmed and
//! its drop is a no-op. No clocks are read, no thread-locals touched,
//! and spans never feed back into modeled state, so simulation output
//! is byte-identical with spans on or off.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::trace;

/// One frame of a thread's open-span stack.
#[derive(Debug)]
struct Frame {
    name: &'static str,
    start: Instant,
    /// Length of the thread's path string *before* this frame was
    /// pushed, so closing truncates back exactly.
    path_len: usize,
}

#[derive(Debug, Default)]
struct ThreadSpans {
    frames: Vec<Frame>,
    path: String,
}

thread_local! {
    static SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

/// Whether spans are being collected (one relaxed load) — the guard
/// [`enter`] takes before touching any state.
#[inline]
pub fn enabled() -> bool {
    trace::spans_enabled()
}

/// An open span; the span closes when this guard drops. Obtain one via
/// [`enter`]. Must drop on the thread that opened it (guards are
/// scoped values in practice, so this is automatic).
#[derive(Debug)]
#[must_use = "a span measures the scope of its guard; dropping it immediately closes the span"]
pub struct Span {
    armed: bool,
}

/// Opens a span named `name` nested under the thread's innermost open
/// span. With spans disabled this is one relaxed atomic load and the
/// returned guard is inert.
#[inline]
pub fn enter(name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: false };
    }
    SPANS.with(|s| {
        let mut s = s.borrow_mut();
        let path_len = s.path.len();
        if path_len != 0 {
            s.path.push(';');
        }
        s.path.push_str(name);
        s.frames.push(Frame {
            name,
            start: Instant::now(),
            path_len,
        });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            close();
        }
    }
}

/// Closes the innermost open span: pops its frame, aggregates its
/// duration under its stack path, and emits a span trace record.
fn close() {
    let (name, path, depth, nanos) = SPANS.with(|s| {
        let mut s = s.borrow_mut();
        let frame = s
            .frames
            .pop()
            .expect("span guard dropped with no open span on this thread");
        let nanos = frame.start.elapsed().as_nanos() as u64;
        debug_assert!(
            s.path.ends_with(frame.name),
            "span stack path out of sync: {:?} does not end with {:?}",
            s.path,
            frame.name
        );
        let path = s.path.clone();
        let depth = s.frames.len() as u64 + 1;
        s.path.truncate(frame.path_len);
        (frame.name, path, depth, nanos)
    });
    aggregate(&path, nanos);
    // The channel may have been switched off while the span was open;
    // the stack bookkeeping above must still run (the guard was armed),
    // but a record only goes out if someone is listening now.
    if enabled() {
        trace::emit_span(&trace::SpanRecord {
            name,
            path: &path,
            depth,
            nanos,
        });
    }
}

/// Records an externally timed duration as a one-off, top-level span —
/// for intervals that cross threads and so cannot be a scoped guard
/// (e.g. a serve job's queue wait, timed from enqueue on the listener
/// thread to dequeue on a worker). No-op unless spans are enabled.
pub fn record(name: &'static str, nanos: u64) {
    if !enabled() {
        return;
    }
    aggregate(name, nanos);
    trace::emit_span(&trace::SpanRecord {
        name,
        path: name,
        depth: 1,
        nanos,
    });
}

/// Number of open spans on the current thread (0 once every guard has
/// dropped — what well-formedness tests assert).
pub fn depth() -> u64 {
    SPANS.with(|s| s.borrow().frames.len() as u64)
}

/// Accumulated count and wall time for one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Spans closed under this path.
    pub count: u64,
    /// Total (inclusive) nanoseconds across those spans.
    pub nanos: u64,
}

/// Process-global folded aggregation: stack path → totals. Spans close
/// at micro-to-millisecond cadence, far off the modeled hot loops, and
/// only ever when the channel is enabled.
fn folded() -> &'static Mutex<BTreeMap<String, SpanAgg>> {
    // lock-ok: span-close aggregation, only reached with spans enabled
    static FOLDED: OnceLock<Mutex<BTreeMap<String, SpanAgg>>> = OnceLock::new();
    FOLDED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn aggregate(path: &str, nanos: u64) {
    let mut map = folded().lock().unwrap_or_else(|e| e.into_inner());
    let agg = map.entry(path.to_string()).or_default();
    agg.count += 1;
    agg.nanos += nanos;
}

/// Snapshot of the folded aggregation, path-sorted.
pub fn folded_snapshot() -> Vec<(String, SpanAgg)> {
    let map = folded().lock().unwrap_or_else(|e| e.into_inner());
    map.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears the folded aggregation (tests and per-run resets).
pub fn reset() {
    folded().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Renders the process-global folded aggregation as
/// flamegraph-collapsed text — see [`fold_text`].
pub fn render_folded() -> String {
    fold_text(&folded_snapshot())
}

/// Renders a path-sorted `(path, totals)` aggregation as
/// flamegraph-collapsed text: one `path self_nanos` line per stack
/// path, where self time is the path's inclusive time minus its direct
/// children's inclusive time. Zero-self paths (pure parents) are
/// omitted, as collapse tools do. Shared by [`render_folded`] and the
/// `flatwalk-trace` CLI's `--folded` output.
pub fn fold_text(snap: &[(String, SpanAgg)]) -> String {
    let mut out = String::new();
    for (path, agg) in snap {
        let prefix = format!("{path};");
        let child_sum: u64 = snap
            .iter()
            .filter(|(p, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains(';'))
            .map(|(_, a)| a.nanos)
            .sum();
        let self_nanos = agg.nanos.saturating_sub(child_sum);
        if self_nanos > 0 {
            out.push_str(path);
            out.push(' ');
            out.push_str(&self_nanos.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Default)]
    struct CollectingTracer {
        spans: Mutex<Vec<(String, String, u64, u64)>>,
    }

    impl trace::Tracer for CollectingTracer {
        fn span(&self, _cell: &str, r: &trace::SpanRecord<'_>) {
            self.spans.lock().unwrap_or_else(|e| e.into_inner()).push((
                r.name.to_string(),
                r.path.to_string(),
                r.depth,
                r.nanos,
            ));
        }
    }

    #[test]
    fn disabled_enter_is_inert() {
        let _g = trace::test_lock().lock().unwrap_or_else(|e| e.into_inner());
        trace::uninstall();
        reset();
        {
            let _a = enter("outer");
            let _b = enter("inner");
            assert_eq!(depth(), 0, "disabled spans must not touch the stack");
        }
        assert!(folded_snapshot().is_empty());
    }

    #[test]
    fn nested_spans_aggregate_and_emit_with_paths() {
        let _g = trace::test_lock().lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(CollectingTracer::default());
        trace::install(
            sink.clone(),
            trace::Channels {
                spans: true,
                ..Default::default()
            },
        );
        reset();
        {
            let _a = enter("outer");
            assert_eq!(depth(), 1);
            {
                let _b = enter("inner");
                assert_eq!(depth(), 2);
            }
            {
                let _b = enter("inner");
            }
        }
        record("oneoff", 123);
        trace::uninstall();
        assert_eq!(depth(), 0, "every enter must have matched an exit");

        let snap = folded_snapshot();
        let get = |p: &str| {
            snap.iter()
                .find(|(k, _)| k == p)
                .map(|(_, a)| *a)
                .unwrap_or_else(|| panic!("missing folded path {p:?} in {snap:?}"))
        };
        assert_eq!(get("outer").count, 1);
        assert_eq!(get("outer;inner").count, 2);
        assert_eq!(
            get("oneoff"),
            SpanAgg {
                count: 1,
                nanos: 123
            }
        );
        assert!(
            get("outer").nanos >= get("outer;inner").nanos,
            "a parent's inclusive time covers its children"
        );

        let records = sink.spans.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(records.len(), 4);
        // Children close before parents.
        assert_eq!(records[0].1, "outer;inner");
        assert_eq!(records[0].2, 2);
        assert_eq!(
            records[2],
            ("outer".into(), "outer".into(), 1, records[2].3)
        );
        // Every record's depth matches its path's segment count and its
        // name is the last segment.
        for (name, path, depth, _) in records.iter() {
            assert_eq!(*depth, path.split(';').count() as u64);
            assert_eq!(path.split(';').next_back(), Some(name.as_str()));
        }
        drop(records);

        let text = render_folded();
        assert!(text.contains("outer;inner "));
        assert!(text.contains("oneoff 123\n"));
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').unwrap();
            let _: u64 = value.parse().expect("folded value is integral nanos");
        }
        reset();
    }

    #[test]
    fn folded_self_time_subtracts_children() {
        let _g = trace::test_lock().lock().unwrap_or_else(|e| e.into_inner());
        trace::uninstall();
        reset();
        aggregate("a", 100);
        aggregate("a;b", 30);
        aggregate("a;b;c", 10);
        aggregate("a;d", 25);
        let text = render_folded();
        assert!(text.contains("a 45\n"), "100 - 30 - 25, got:\n{text}");
        assert!(text.contains("a;b 20\n"), "30 - 10, got:\n{text}");
        assert!(text.contains("a;b;c 10\n"));
        assert!(text.contains("a;d 25\n"));
        reset();
    }
}
