//! Event tracing: per-walk, phase-transition, and replacement-victim
//! records behind a [`Tracer`] trait.
//!
//! The disabled path must cost nothing measurable: every emit site
//! guards on one relaxed atomic load ([`walks_enabled`] /
//! [`phase_enabled`] / [`repl_enabled`]) before it builds a record, so
//! with tracing off the hot loops pay a single predictable branch (see
//! the `obs` group in the `hot_paths` bench).
//!
//! Enable the JSONL sink with
//! `FLATWALK_TRACE=<channels>:<path>` where `<channels>` is a
//! comma-separated subset of `walks`, `phase`, `repl`, `faults`,
//! `serve`, `spans`, `numa` — e.g. `FLATWALK_TRACE=walks,phase:/tmp/trace.jsonl`. Each record is one
//! JSON object per line; see [`JsonlTracer`] for the schema. Tests
//! install collecting tracers programmatically via [`install`].
//!
//! The "cell" field of every record is a thread-local context string
//! (workload/config/scenario) set by the simulation at the start of its
//! run — each experiment cell runs wholly on one worker thread, so the
//! context is unambiguous.

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::json::Json;

/// Which event channels a tracer subscribes to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Channels {
    /// Per-walk records (one per completed page walk).
    pub walks: bool,
    /// PTP phase-detector transitions.
    pub phase: bool,
    /// Cache replacement-victim choices.
    pub repl: bool,
    /// Injected-fault events (mid-run shootdowns and friends).
    pub faults: bool,
    /// `flatwalk-serve` request lifecycle events (submit, cell done,
    /// cache hit, reject, drain).
    pub serve: bool,
    /// Hierarchical profiling spans ([`crate::span`]): one record per
    /// closed span.
    pub spans: bool,
    /// Per-node NUMA placement summaries (one record per node per
    /// multi-node cell).
    pub numa: bool,
}

impl Channels {
    /// All channels on.
    pub fn all() -> Channels {
        Channels {
            walks: true,
            phase: true,
            repl: true,
            faults: true,
            serve: true,
            spans: true,
            numa: true,
        }
    }

    /// Parses a comma-separated channel list (`"walks,phase"`).
    /// Unknown names yield `None`.
    pub fn parse(list: &str) -> Option<Channels> {
        let mut ch = Channels::default();
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match name {
                "walks" => ch.walks = true,
                "phase" => ch.phase = true,
                "repl" => ch.repl = true,
                "faults" => ch.faults = true,
                "serve" => ch.serve = true,
                "spans" => ch.spans = true,
                "numa" => ch.numa = true,
                _ => return None,
            }
        }
        Some(ch)
    }

    fn bits(self) -> u8 {
        (self.walks as u8)
            | (self.phase as u8) << 1
            | (self.repl as u8) << 2
            | (self.faults as u8) << 3
            | (self.serve as u8) << 4
            | (self.spans as u8) << 5
            | (self.numa as u8) << 6
    }
}

/// Where one page-walk step was served, as a trace label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStepRecord {
    /// How many 9-bit index fields the node merged (1 = conventional,
    /// 2–3 = flattened).
    pub depth: u8,
    /// Hierarchy level that served the entry read (`"L1"`, `"L2"`,
    /// `"L3"`, `"DRAM"`).
    pub level: &'static str,
}

/// One completed page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRecord<'a> {
    /// The translated virtual address.
    pub va: u64,
    /// Memory accesses the walk performed (after PSC skipping).
    pub accesses: u64,
    /// Total walk latency in cycles (PSC lookup + entry reads).
    pub latency: u64,
    /// Steps skipped via a paging-structure-cache hit.
    pub psc_skipped: u8,
    /// Whether any executed step read a flattened (depth > 1) node.
    /// `false` with multiple depth-1 steps under a flattened layout
    /// means the walk went through fallback (unflattened) nodes.
    pub flattened: bool,
    /// The executed steps in walk order.
    pub steps: &'a [WalkStepRecord],
}

/// One PTP phase-detector transition (evaluated per window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// The new phase (true = high-TLB-miss, prioritization active).
    pub active: bool,
    /// Total transitions so far on this detector, this one included.
    pub flips: u64,
    /// The detector's window length (translations per evaluation).
    pub window: u64,
    /// The miss rate of the window that triggered the transition.
    pub miss_rate: f64,
}

/// One replacement-victim choice (emitted on every eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplRecord<'a> {
    /// Cache name (`"L2"`, `"L3"`, …).
    pub cache: &'a str,
    /// The evicted line address (address / 64).
    pub victim_line: u64,
    /// What the victim held: `"data"` or `"pt"`.
    pub victim_kind: &'static str,
    /// Whether the PTP priority bias steered this choice.
    pub biased: bool,
}

/// One injected mid-run fault (address-space mutation + shootdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault kind (`"unmap"`, `"remap"`, `"thp_splinter"`, `"demote"`).
    pub kind: &'static str,
    /// Stream position (op index) at which the fault fired.
    pub op: u64,
    /// Translation-structure entries flushed by the shootdown.
    pub flushed: u64,
    /// Modeled shootdown cost in cycles.
    pub cost: u64,
}

/// One `flatwalk-serve` request-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRecord<'a> {
    /// What happened (`"submit"`, `"cell"`, `"cache_hit"`,
    /// `"coalesced"`, `"reject"`, `"drain"`, `"shutdown"`, …).
    pub op: &'a str,
    /// Server-assigned job id (0 when the event precedes assignment).
    pub job: u64,
    /// Free-form detail (grid name, cell label, reject reason, …).
    pub detail: &'a str,
}

/// One closed profiling span (see [`crate::span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord<'a> {
    /// The span's own name (the last `path` segment).
    pub name: &'a str,
    /// `;`-joined ancestry from the thread's outermost open span down
    /// to this one (folded-stack convention).
    pub path: &'a str,
    /// Nesting depth (`path.split(';').count()`; 1 = top level).
    pub depth: u64,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// One per-node NUMA placement summary (emitted once per node at the
/// end of a multi-node cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaRecord {
    /// Home node these tallies belong to.
    pub node: u32,
    /// DRAM accesses served locally at this node.
    pub local: u64,
    /// DRAM accesses homed here but issued from another node.
    pub remote: u64,
    /// Interconnect hops those remote accesses paid in total.
    pub hops: u64,
}

/// A trace event consumer. All methods default to no-ops so sinks
/// subscribe to only the channels they care about.
pub trait Tracer: Send + Sync {
    /// One completed page walk.
    fn walk(&self, _cell: &str, _record: &WalkRecord<'_>) {}
    /// One phase-detector transition.
    fn phase(&self, _cell: &str, _record: &PhaseRecord) {}
    /// One replacement-victim choice.
    fn repl(&self, _cell: &str, _record: &ReplRecord<'_>) {}
    /// One injected fault event.
    fn fault(&self, _cell: &str, _record: &FaultRecord) {}
    /// One server request-lifecycle event.
    fn serve(&self, _cell: &str, _record: &ServeRecord<'_>) {}
    /// One closed profiling span.
    fn span(&self, _cell: &str, _record: &SpanRecord<'_>) {}
    /// One per-node NUMA placement summary.
    fn numa(&self, _cell: &str, _record: &NumaRecord) {}
    /// Flushes any buffered records; called by [`uninstall`] before the
    /// sink is dropped.
    fn flush(&self) {}
}

/// Enabled-channel bitmask; 0 when tracing is off. The only tracing
/// state hot paths ever touch.
static CHANNELS: AtomicU8 = AtomicU8::new(0);

/// Serializes unit tests (here and in [`crate::span`]) that touch the
/// process-global tracer, so the harness's parallel test threads cannot
/// observe each other's installs.
#[cfg(test)]
pub(crate) fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn sink() -> &'static RwLock<Option<Arc<dyn Tracer>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn Tracer>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

thread_local! {
    static CONTEXT: RefCell<String> = const { RefCell::new(String::new()) };
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard returned by [`suppress`]; trace emission on this thread
/// resumes when it drops.
#[derive(Debug)]
pub struct SuppressGuard(());

/// Silences all trace emission on the current thread until the returned
/// guard drops. Debug-build cross-checks replay work on cloned state to
/// compare against the live run; without this the replayed walks would
/// be traced a second time and per-walk record counts would no longer
/// match the walker's own statistics. Guards nest.
pub fn suppress() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard(())
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Whether per-walk records are being traced (one relaxed load).
#[inline]
pub fn walks_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 1 != 0
}

/// Whether phase transitions are being traced (one relaxed load).
#[inline]
pub fn phase_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 2 != 0
}

/// Whether replacement victims are being traced (one relaxed load).
#[inline]
pub fn repl_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 4 != 0
}

/// Whether injected-fault events are being traced (one relaxed load).
#[inline]
pub fn faults_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 8 != 0
}

/// Whether server lifecycle events are being traced (one relaxed load).
#[inline]
pub fn serve_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 16 != 0
}

/// Whether profiling spans are being traced (one relaxed load).
#[inline]
pub fn spans_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 32 != 0
}

/// Whether per-node NUMA summaries are being traced (one relaxed load).
#[inline]
pub fn numa_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) & 64 != 0
}

/// Whether any channel is being traced.
#[inline]
pub fn any_enabled() -> bool {
    CHANNELS.load(Ordering::Relaxed) != 0
}

/// Sets this thread's cell-context string, attached to every record the
/// thread emits. Cheap no-op style guard: callers should skip it when
/// [`any_enabled`] is false.
pub fn set_context(cell: &str) {
    CONTEXT.with(|c| {
        let mut c = c.borrow_mut();
        c.clear();
        c.push_str(cell);
    });
}

/// Installs `tracer` on the given channels (replacing any previous
/// tracer). Emit guards observe the channel mask only after the sink is
/// in place.
pub fn install(tracer: Arc<dyn Tracer>, channels: Channels) {
    let mut guard = sink().write().unwrap_or_else(|e| e.into_inner());
    *guard = Some(tracer);
    CHANNELS.store(channels.bits(), Ordering::Release);
}

/// Records silently lost since process start: emits that raced an
/// [`uninstall`] (the channel mask said "on" but the sink was already
/// gone — late records during a serve drain land here) plus sink write
/// failures. Surfaced as the `trace.records_dropped` metric when the
/// tracer is uninstalled.
static DROPPED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Trace records lost so far (drain races and sink write errors).
pub fn records_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Removes the tracer and disables every channel. The outgoing tracer
/// is flushed first, and any records dropped on its watch are pushed
/// into the metrics registry as `trace.records_dropped`.
pub fn uninstall() {
    CHANNELS.store(0, Ordering::Release);
    let tracer = {
        let mut guard = sink().write().unwrap_or_else(|e| e.into_inner());
        guard.take()
    };
    if let Some(t) = tracer {
        t.flush();
    }
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    if dropped > 0 {
        crate::metrics::add_global("trace.records_dropped", dropped);
        eprintln!("trace: {dropped} record(s) dropped (late emits or sink errors)");
    }
}

/// Installs a [`JsonlTracer`] if `FLATWALK_TRACE=<channels>:<path>` is
/// set (e.g. `walks,phase:/tmp/trace.jsonl`). Malformed values are
/// reported on stderr and ignored — experiments must not die to a typo
/// in an observability variable.
pub fn init_from_env() {
    let Ok(spec) = std::env::var("FLATWALK_TRACE") else {
        return;
    };
    if spec.is_empty() {
        return;
    }
    match parse_trace_spec(&spec) {
        Some((channels, path)) => match JsonlTracer::create(path) {
            Ok(tracer) => install(Arc::new(tracer), channels),
            Err(e) => eprintln!("FLATWALK_TRACE: cannot open {path:?}: {e}"),
        },
        None => eprintln!(
            "FLATWALK_TRACE: expected <channels>:<path> with channels from walks,phase,repl,faults,serve,spans,numa; got {spec:?}"
        ),
    }
}

/// Splits a `FLATWALK_TRACE` value into channels and sink path.
pub fn parse_trace_spec(spec: &str) -> Option<(Channels, &str)> {
    let (list, path) = spec.split_once(':')?;
    if path.is_empty() {
        return None;
    }
    let channels = Channels::parse(list)?;
    if channels == Channels::default() {
        return None;
    }
    Some((channels, path))
}

fn with_sink(f: impl FnOnce(&dyn Tracer, &str)) {
    if SUPPRESS.with(Cell::get) != 0 {
        return;
    }
    let guard = sink().read().unwrap_or_else(|e| e.into_inner());
    match guard.as_deref() {
        Some(tracer) => CONTEXT.with(|c| f(tracer, &c.borrow())),
        // The caller saw the channel enabled but the sink is already
        // gone: an emit racing uninstall (e.g. a worker finishing while
        // the server drains). Count it instead of losing it silently.
        None => {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Emits one walk record (call only when [`walks_enabled`]).
pub fn emit_walk(record: &WalkRecord<'_>) {
    with_sink(|t, cell| t.walk(cell, record));
}

/// Emits one phase-transition record (call only when [`phase_enabled`]).
pub fn emit_phase(record: &PhaseRecord) {
    with_sink(|t, cell| t.phase(cell, record));
}

/// Emits one replacement record (call only when [`repl_enabled`]).
pub fn emit_repl(record: &ReplRecord<'_>) {
    with_sink(|t, cell| t.repl(cell, record));
}

/// Emits one injected-fault record. Guards internally on
/// [`faults_enabled`] so fault-injection sites can call it
/// unconditionally — faults are rare enough that the extra load is
/// irrelevant.
pub fn emit_fault(kind: &'static str, op: u64, flushed: u64, cost: u64) {
    if !faults_enabled() {
        return;
    }
    let record = FaultRecord {
        kind,
        op,
        flushed,
        cost,
    };
    with_sink(|t, cell| t.fault(cell, &record));
}

/// Emits one closed-span record (call only when [`spans_enabled`];
/// [`crate::span`] guards for you).
pub fn emit_span(record: &SpanRecord<'_>) {
    with_sink(|t, cell| t.span(cell, record));
}

/// Emits one server-lifecycle record. Guards internally on
/// [`serve_enabled`] — request handling is far off any simulation hot
/// path, so the extra load is irrelevant.
pub fn emit_serve(op: &str, job: u64, detail: &str) {
    if !serve_enabled() {
        return;
    }
    let record = ServeRecord { op, job, detail };
    with_sink(|t, cell| t.serve(cell, &record));
}

/// Emits one per-node NUMA summary record. Guards internally on
/// [`numa_enabled`] — the summaries are emitted once per cell, far off
/// any hot path.
pub fn emit_numa(record: &NumaRecord) {
    if !numa_enabled() {
        return;
    }
    with_sink(|t, cell| t.numa(cell, record));
}

/// A line-per-record JSON sink.
///
/// Record schemas (stable key order):
///
/// ```text
/// {"event":"walk","cell":…,"va":…,"accesses":…,"latency":…,
///  "psc_skipped":…,"flattened":…,"steps":[{"depth":…,"level":…},…]}
/// {"event":"phase","cell":…,"active":…,"flips":…,"window":…,"miss_rate":…}
/// {"event":"repl","cell":…,"cache":…,"victim_line":…,"victim_kind":…,"biased":…}
/// {"event":"span","cell":…,"name":…,"path":…,"depth":…,"nanos":…}
/// ```
///
/// Records are buffered through a `BufWriter` (a full run can emit
/// millions of lines) and each line lands as one `write_all`, so lines
/// from concurrent worker threads never interleave mid-record. The
/// buffer is flushed when the tracer drops or [`uninstall`] runs; a
/// failed write bumps the process-wide [`records_dropped`] counter
/// instead of failing the run.
#[derive(Debug)]
pub struct JsonlTracer {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlTracer {
    /// Creates (truncates) the sink file.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: &str) -> std::io::Result<JsonlTracer> {
        Ok(JsonlTracer {
            out: Mutex::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        })
    }

    fn write_line(&self, json: &Json) {
        let mut line = json.to_string();
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.write_all(line.as_bytes()).is_err() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlTracer {
    fn drop(&mut self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

impl Tracer for JsonlTracer {
    fn walk(&self, cell: &str, record: &WalkRecord<'_>) {
        let steps: Vec<Json> = record
            .steps
            .iter()
            .map(|s| {
                let mut o = Json::obj();
                o.push("depth", s.depth as u64).push("level", s.level);
                o
            })
            .collect();
        let mut o = Json::obj();
        o.push("event", "walk")
            .push("cell", cell)
            .push("va", record.va)
            .push("accesses", record.accesses)
            .push("latency", record.latency)
            .push("psc_skipped", record.psc_skipped as u64)
            .push("flattened", record.flattened)
            .push("steps", Json::Array(steps));
        self.write_line(&o);
    }

    fn phase(&self, cell: &str, record: &PhaseRecord) {
        let mut o = Json::obj();
        o.push("event", "phase")
            .push("cell", cell)
            .push("active", record.active)
            .push("flips", record.flips)
            .push("window", record.window)
            .push("miss_rate", record.miss_rate);
        self.write_line(&o);
    }

    fn repl(&self, cell: &str, record: &ReplRecord<'_>) {
        let mut o = Json::obj();
        o.push("event", "repl")
            .push("cell", cell)
            .push("cache", record.cache)
            .push("victim_line", record.victim_line)
            .push("victim_kind", record.victim_kind)
            .push("biased", record.biased);
        self.write_line(&o);
    }

    fn fault(&self, cell: &str, record: &FaultRecord) {
        let mut o = Json::obj();
        o.push("event", "fault")
            .push("cell", cell)
            .push("kind", record.kind)
            .push("op", record.op)
            .push("flushed", record.flushed)
            .push("cost", record.cost);
        self.write_line(&o);
    }

    fn serve(&self, cell: &str, record: &ServeRecord<'_>) {
        let mut o = Json::obj();
        o.push("event", "serve")
            .push("cell", cell)
            .push("op", record.op)
            .push("job", record.job)
            .push("detail", record.detail);
        self.write_line(&o);
    }

    fn span(&self, cell: &str, record: &SpanRecord<'_>) {
        let mut o = Json::obj();
        o.push("event", "span")
            .push("cell", cell)
            .push("name", record.name)
            .push("path", record.path)
            .push("depth", record.depth)
            .push("nanos", record.nanos);
        self.write_line(&o);
    }

    fn numa(&self, cell: &str, record: &NumaRecord) {
        let mut o = Json::obj();
        o.push("event", "numa")
            .push("cell", cell)
            .push("node", u64::from(record.node))
            .push("local", record.local)
            .push("remote", record.remote)
            .push("hops", record.hops);
        self.write_line(&o);
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.flush().is_err() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_parsing() {
        assert_eq!(
            Channels::parse("walks"),
            Some(Channels {
                walks: true,
                ..Default::default()
            })
        );
        assert_eq!(
            Channels::parse("walks,phase,repl,faults,serve,spans,numa"),
            Some(Channels::all())
        );
        assert_eq!(
            Channels::parse("numa"),
            Some(Channels {
                numa: true,
                ..Default::default()
            })
        );
        assert_eq!(
            Channels::parse("spans"),
            Some(Channels {
                spans: true,
                ..Default::default()
            })
        );
        assert_eq!(
            Channels::parse("serve"),
            Some(Channels {
                serve: true,
                ..Default::default()
            })
        );
        assert_eq!(
            Channels::parse("walks, repl"),
            Some(Channels {
                walks: true,
                repl: true,
                ..Default::default()
            })
        );
        assert_eq!(Channels::parse("bogus"), None);
    }

    #[test]
    fn trace_spec_parsing() {
        let (ch, path) = parse_trace_spec("walks,phase:/tmp/t.jsonl").unwrap();
        assert!(ch.walks && ch.phase && !ch.repl);
        assert_eq!(path, "/tmp/t.jsonl");
        // Windows-style paths keep everything after the first colon.
        assert_eq!(
            parse_trace_spec("walks:C:/t.jsonl").unwrap().1,
            "C:/t.jsonl"
        );
        assert_eq!(parse_trace_spec("walks"), None, "no path");
        assert_eq!(parse_trace_spec("walks:"), None, "empty path");
        assert_eq!(parse_trace_spec(":p"), None, "no channels");
        assert_eq!(parse_trace_spec("nope:p"), None, "unknown channel");
    }

    #[test]
    fn disabled_by_default_and_flags_follow_install() {
        // Serialized against the span tests, which also install on the
        // global tracer.
        let _g = test_lock().lock().unwrap_or_else(|e| e.into_inner());
        struct Nop;
        impl Tracer for Nop {}
        uninstall();
        assert!(!any_enabled());
        install(
            Arc::new(Nop),
            Channels {
                phase: true,
                ..Default::default()
            },
        );
        assert!(phase_enabled() && !walks_enabled() && !repl_enabled());
        uninstall();
        assert!(!any_enabled());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_context() {
        let path = std::env::temp_dir().join("flatwalk_obs_trace_test.jsonl");
        let path = path.to_str().unwrap();
        let tracer = JsonlTracer::create(path).unwrap();
        // Emit directly against the sink (not via the global), so this
        // test cannot race the install/uninstall test above.
        set_context("gups/FPT+PTP");
        tracer.walk(
            "gups/FPT+PTP",
            &WalkRecord {
                va: 0x5000_1000,
                accesses: 1,
                latency: 5,
                psc_skipped: 1,
                flattened: true,
                steps: &[WalkStepRecord {
                    depth: 2,
                    level: "L1",
                }],
            },
        );
        tracer.phase(
            "gups/FPT+PTP",
            &PhaseRecord {
                active: true,
                flips: 3,
                window: 4096,
                miss_rate: 0.125,
            },
        );
        tracer.repl(
            "gups/FPT+PTP",
            &ReplRecord {
                cache: "L2",
                victim_line: 42,
                victim_kind: "data",
                biased: true,
            },
        );
        tracer.fault(
            "gups/FPT+PTP",
            &FaultRecord {
                kind: "thp_splinter",
                op: 4096,
                flushed: 17,
                cost: 670,
            },
        );
        tracer.serve(
            "gups/FPT+PTP",
            &ServeRecord {
                op: "cache_hit",
                job: 3,
                detail: "sec71_pwc cell 2",
            },
        );
        drop(tracer);
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(
                v.get("cell").cloned(),
                Some(Json::Str("gups/FPT+PTP".into()))
            );
        }
        let serve = crate::json::parse(lines[4]).unwrap();
        assert_eq!(serve.get("event").cloned(), Some(Json::Str("serve".into())));
        assert_eq!(serve.get("job").unwrap().as_u64(), Some(3));
        let walk = crate::json::parse(lines[0]).unwrap();
        assert_eq!(walk.get("event").cloned(), Some(Json::Str("walk".into())));
        assert_eq!(walk.get("accesses").unwrap().as_u64(), Some(1));
        assert_eq!(walk.get("steps").unwrap().as_array().unwrap().len(), 1);
        let fault = crate::json::parse(lines[3]).unwrap();
        assert_eq!(fault.get("event").cloned(), Some(Json::Str("fault".into())));
        assert_eq!(
            fault.get("kind").cloned(),
            Some(Json::Str("thp_splinter".into()))
        );
        assert_eq!(fault.get("cost").unwrap().as_u64(), Some(670));
        let _ = std::fs::remove_file(path);
    }
}
