//! `flatwalk-trace`: analyze walk/span JSONL traces captured with
//! `FLATWALK_TRACE=walks,spans:<path>`.
//!
//! Usage:
//!
//! ```text
//! flatwalk-trace <trace.jsonl> [more.jsonl ...] [--json] [--folded]
//! ```
//!
//! Default output is the human-readable report: walk-depth ×
//! serving-cache-level matrix, PSC-skip and fallback breakdowns, and
//! per-span time attribution. `--json` emits the same summary as one
//! ordered JSON object; `--folded` emits flamegraph-collapsed span
//! lines (`path self_nanos`) instead.

use flatwalk_obs::{analyze, span};

fn usage() -> ! {
    eprintln!("usage: flatwalk-trace <trace.jsonl> [more.jsonl ...] [--json] [--folded]");
    std::process::exit(2);
}

fn main() {
    let mut files = Vec::new();
    let mut json = false;
    let mut folded = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--folded" => folded = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("flatwalk-trace: unknown flag {arg:?}");
                usage();
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        usage();
    }

    let mut text = String::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(t) => text.push_str(&t),
            Err(e) => {
                eprintln!("flatwalk-trace: cannot read {file:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    let summary = analyze::analyze(text.lines());

    if folded {
        print!("{}", span::fold_text(&summary.span_snapshot()));
    } else if json {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.render_text());
    }
}
