//! Walk/span trace analysis: the library behind the `flatwalk-trace`
//! CLI.
//!
//! Ingests the JSONL stream a [`crate::trace::JsonlTracer`] writes
//! (`FLATWALK_TRACE=walks,spans:<path>`) and rebuilds the paper's
//! "every walk's a hit" evidence tables from it:
//!
//! * a **walk-depth × serving-cache-level matrix** — for each executed
//!   walk step, how many 9-bit index fields the node merged (depth 1 =
//!   conventional, 2–3 = flattened) against which hierarchy level
//!   served the entry read. Under FPT+PTP the mass concentrates in one
//!   high-depth, L1-served cell; the column totals equal
//!   `WalkerStats::step_hits` exactly.
//! * **PSC-skip and fallback breakdowns** — how many steps
//!   paging-structure caches skipped per walk, and how many walks went
//!   through unflattened fallback nodes.
//! * **per-span time attribution** — inclusive wall time per span stack
//!   path (setup vs engine vs serve), renderable as flamegraph-folded
//!   text via [`crate::span::fold_text`].

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{self, Json};
use crate::span::SpanAgg;

/// Accumulated NUMA traffic for one node across a trace (`numa`
/// channel records, one per node per multi-node cell).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumaAgg {
    /// DRAM accesses resolved on the node itself.
    pub local: u64,
    /// DRAM accesses this node served for remote requesters.
    pub remote: u64,
    /// Interconnect hops those remote accesses travelled.
    pub hops: u64,
}

/// The serving-level columns of the depth × level matrix, in hierarchy
/// order.
pub const LEVELS: [&str; 4] = ["L1", "L2", "L3", "DRAM"];

/// Aggregated view of one trace file. Build with [`analyze`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Records per `event` type (`walk`, `span`, `fault`, …).
    pub events: BTreeMap<String, u64>,
    /// Lines that failed to parse or had no `event` key.
    pub parse_errors: u64,
    /// Distinct `cell` context strings seen.
    pub cells: BTreeSet<String>,
    /// Completed walks.
    pub walks: u64,
    /// Total memory accesses across all walks.
    pub accesses: u64,
    /// Total modeled walk latency (cycles).
    pub latency: u64,
    /// Walks that needed exactly one memory access.
    pub single_access_walks: u64,
    /// Walks whose single executed step was served by the L1 — the
    /// paper's headline "a single-access cache hit".
    pub single_step_l1_walks: u64,
    /// Walks that touched at least one flattened (depth > 1) node.
    pub flattened_walks: u64,
    /// Walks that executed multiple steps without touching a flattened
    /// node — fallback (unflattened) paths under a flattened layout.
    pub fallback_walks: u64,
    /// PSC-skip breakdown: steps skipped per walk → walk count.
    pub psc_skips: BTreeMap<u64, u64>,
    /// The matrix: step depth → serving level → executed-step count.
    pub depth_level: BTreeMap<u64, BTreeMap<String, u64>>,
    /// Span attribution: stack path → accumulated count and wall time.
    pub spans: BTreeMap<String, SpanAgg>,
    /// NUMA traffic per node (`numa` channel); empty for single-node
    /// runs, which never emit the channel.
    pub numa: BTreeMap<u64, NumaAgg>,
}

impl TraceSummary {
    /// Executed steps served by `level` across all depths — the column
    /// total that must match `WalkerStats::step_hits` for that level.
    pub fn level_total(&self, level: &str) -> u64 {
        self.depth_level
            .values()
            .filter_map(|row| row.get(level))
            .sum()
    }

    /// Executed steps of merged-depth `depth` across all levels.
    pub fn depth_total(&self, depth: u64) -> u64 {
        self.depth_level
            .get(&depth)
            .map(|row| row.values().sum())
            .unwrap_or(0)
    }

    /// Total executed steps in the matrix.
    pub fn step_total(&self) -> u64 {
        self.depth_level.values().flat_map(|row| row.values()).sum()
    }

    /// The span aggregation as a path-sorted vector (the shape
    /// [`crate::span::fold_text`] takes).
    pub fn span_snapshot(&self) -> Vec<(String, SpanAgg)> {
        self.spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Renders the human-readable report the CLI prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let total_records: u64 = self.events.values().sum();
        let breakdown = self
            .events
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "records: {total_records} ({breakdown}), parse errors: {}\n",
            self.parse_errors
        ));
        out.push_str(&format!("cells: {}\n", self.cells.len()));

        if self.walks > 0 {
            out.push_str("\nwalk depth x serving level (executed steps)\n");
            out.push_str(&format!("  {:<7}", "depth"));
            for level in LEVELS {
                out.push_str(&format!("{level:>10}"));
            }
            out.push_str(&format!("{:>10}\n", "total"));
            for (depth, row) in &self.depth_level {
                out.push_str(&format!("  {depth:<7}"));
                for level in LEVELS {
                    out.push_str(&format!("{:>10}", row.get(level).copied().unwrap_or(0)));
                }
                out.push_str(&format!("{:>10}\n", self.depth_total(*depth)));
            }
            out.push_str(&format!("  {:<7}", "total"));
            for level in LEVELS {
                out.push_str(&format!("{:>10}", self.level_total(level)));
            }
            out.push_str(&format!("{:>10}\n", self.step_total()));

            let pct = |n: u64| 100.0 * n as f64 / self.walks as f64;
            out.push_str(&format!(
                "\nwalks: {}  accesses/walk: {:.3}  latency/walk: {:.1}\n",
                self.walks,
                self.accesses as f64 / self.walks as f64,
                self.latency as f64 / self.walks as f64,
            ));
            out.push_str(&format!(
                "single-access walks: {} ({:.1}%)   single-step L1 hits: {} ({:.1}%)\n",
                self.single_access_walks,
                pct(self.single_access_walks),
                self.single_step_l1_walks,
                pct(self.single_step_l1_walks),
            ));
            out.push_str(&format!(
                "flattened walks: {} ({:.1}%)   fallback walks: {} ({:.1}%)\n",
                self.flattened_walks,
                pct(self.flattened_walks),
                self.fallback_walks,
                pct(self.fallback_walks),
            ));
            let skips = self
                .psc_skips
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join("  ");
            out.push_str(&format!("psc steps skipped per walk: {skips}\n"));
        }

        if !self.numa.is_empty() {
            let local: u64 = self.numa.values().map(|a| a.local).sum();
            let remote: u64 = self.numa.values().map(|a| a.remote).sum();
            let hops: u64 = self.numa.values().map(|a| a.hops).sum();
            out.push_str(&format!(
                "\nnuma traffic ({} nodes): local {local}  remote {remote}  hops {hops}\n",
                self.numa.len()
            ));
            out.push_str(&format!(
                "  {:<6}{:>10}{:>10}{:>10}\n",
                "node", "local", "remote", "hops"
            ));
            for (node, agg) in &self.numa {
                out.push_str(&format!(
                    "  {:<6}{:>10}{:>10}{:>10}\n",
                    node, agg.local, agg.remote, agg.hops
                ));
            }
        }

        if !self.spans.is_empty() {
            out.push_str("\nspan time attribution (inclusive)\n");
            let width = self.spans.keys().map(|k| k.len()).max().unwrap_or(4).max(4);
            out.push_str(&format!(
                "  {:<width$}{:>10}{:>14}{:>12}\n",
                "path", "count", "total_ms", "mean_us"
            ));
            for (path, agg) in &self.spans {
                out.push_str(&format!(
                    "  {:<width$}{:>10}{:>14.3}{:>12.1}\n",
                    path,
                    agg.count,
                    agg.nanos as f64 / 1e6,
                    agg.nanos as f64 / 1e3 / agg.count.max(1) as f64,
                ));
            }
        }
        out
    }

    /// The summary as ordered JSON (`flatwalk-trace --json`).
    pub fn to_json(&self) -> Json {
        let mut events = Json::obj();
        for (k, v) in &self.events {
            events.push(k.as_str(), *v);
        }
        let matrix = Json::Array(
            self.depth_level
                .iter()
                .map(|(depth, row)| {
                    let mut o = Json::obj();
                    o.push("depth", *depth);
                    for level in LEVELS {
                        o.push(level, row.get(level).copied().unwrap_or(0));
                    }
                    o
                })
                .collect(),
        );
        let mut totals = Json::obj();
        for level in LEVELS {
            totals.push(level, self.level_total(level));
        }
        let mut skips = Json::obj();
        for (k, v) in &self.psc_skips {
            skips.push(k.to_string().as_str(), *v);
        }
        let spans = Json::Array(
            self.spans
                .iter()
                .map(|(path, agg)| {
                    let mut o = Json::obj();
                    o.push("path", path.as_str())
                        .push("count", agg.count)
                        .push("nanos", agg.nanos);
                    o
                })
                .collect(),
        );
        let numa = Json::Array(
            self.numa
                .iter()
                .map(|(node, agg)| {
                    let mut o = Json::obj();
                    o.push("node", *node)
                        .push("local", agg.local)
                        .push("remote", agg.remote)
                        .push("hops", agg.hops);
                    o
                })
                .collect(),
        );
        let mut o = Json::obj();
        o.push("schema", "flatwalk-trace-v1")
            .push("events", events)
            .push("parse_errors", self.parse_errors)
            .push("cells", self.cells.len())
            .push("walks", self.walks)
            .push("accesses", self.accesses)
            .push("latency", self.latency)
            .push("single_access_walks", self.single_access_walks)
            .push("single_step_l1_walks", self.single_step_l1_walks)
            .push("flattened_walks", self.flattened_walks)
            .push("fallback_walks", self.fallback_walks)
            .push("psc_skips", skips)
            .push("depth_level", matrix)
            .push("step_totals", totals)
            .push("spans", spans)
            .push("numa", numa);
        o
    }
}

/// Analyzes a trace line-by-line. Unknown event types are counted but
/// otherwise ignored, so traces with `faults`/`serve`/`repl` channels
/// enabled analyze fine.
pub fn analyze<'a>(lines: impl IntoIterator<Item = &'a str>) -> TraceSummary {
    let mut s = TraceSummary::default();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = json::parse(line) else {
            s.parse_errors += 1;
            continue;
        };
        let Some(event) = v.get("event").and_then(|e| match e {
            Json::Str(name) => Some(name.clone()),
            _ => None,
        }) else {
            s.parse_errors += 1;
            continue;
        };
        *s.events.entry(event.clone()).or_insert(0) += 1;
        if let Some(Json::Str(cell)) = v.get("cell") {
            if !cell.is_empty() {
                s.cells.insert(cell.clone());
            }
        }
        match event.as_str() {
            "walk" => ingest_walk(&mut s, &v),
            "span" => ingest_span(&mut s, &v),
            "numa" => ingest_numa(&mut s, &v),
            _ => {}
        }
    }
    s
}

fn ingest_walk(s: &mut TraceSummary, v: &Json) {
    let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
    s.walks += 1;
    let accesses = num("accesses");
    s.accesses += accesses;
    s.latency += num("latency");
    if accesses == 1 {
        s.single_access_walks += 1;
    }
    *s.psc_skips.entry(num("psc_skipped")).or_insert(0) += 1;
    let flattened = matches!(v.get("flattened"), Some(Json::Bool(true)));
    if flattened {
        s.flattened_walks += 1;
    }
    let steps = v.get("steps").and_then(Json::as_array).unwrap_or(&[]);
    if !flattened && steps.len() > 1 {
        s.fallback_walks += 1;
    }
    if steps.len() == 1 {
        let level = steps[0].get("level");
        if matches!(level, Some(Json::Str(l)) if l == "L1") {
            s.single_step_l1_walks += 1;
        }
    }
    for step in steps {
        let depth = step.get("depth").and_then(Json::as_u64).unwrap_or(0);
        let level = match step.get("level") {
            Some(Json::Str(l)) => l.clone(),
            _ => continue,
        };
        *s.depth_level
            .entry(depth)
            .or_default()
            .entry(level)
            .or_insert(0) += 1;
    }
}

fn ingest_numa(s: &mut TraceSummary, v: &Json) {
    let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
    let agg = s.numa.entry(num("node")).or_default();
    agg.local += num("local");
    agg.remote += num("remote");
    agg.hops += num("hops");
}

fn ingest_span(s: &mut TraceSummary, v: &Json) {
    let path = match v.get("path") {
        Some(Json::Str(p)) => p.clone(),
        _ => return,
    };
    let nanos = v.get("nanos").and_then(Json::as_u64).unwrap_or(0);
    let agg = s.spans.entry(path).or_default();
    agg.count += 1;
    agg.nanos += nanos;
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
{"event":"walk","cell":"gups/Base","va":1,"accesses":4,"latency":100,"psc_skipped":0,"flattened":false,"steps":[{"depth":1,"level":"DRAM"},{"depth":1,"level":"L2"},{"depth":1,"level":"L1"},{"depth":1,"level":"L1"}]}
{"event":"walk","cell":"gups/FPT+PTP","va":2,"accesses":1,"latency":4,"psc_skipped":1,"flattened":true,"steps":[{"depth":3,"level":"L1"}]}
{"event":"walk","cell":"gups/FPT+PTP","va":3,"accesses":1,"latency":4,"psc_skipped":1,"flattened":true,"steps":[{"depth":3,"level":"L1"}]}
{"event":"walk","cell":"gups/FPT","va":4,"accesses":2,"latency":40,"psc_skipped":0,"flattened":false,"steps":[{"depth":1,"level":"L2"},{"depth":1,"level":"L1"}]}
{"event":"fault","cell":"gups/Base","kind":"unmap","op":9,"flushed":3,"cost":100}
{"event":"span","cell":"gups/Base","name":"engine.measure","path":"cell;engine.measure","depth":2,"nanos":5000}
{"event":"span","cell":"gups/Base","name":"cell","path":"cell","depth":1,"nanos":9000}
{"event":"span","cell":"gups/FPT","name":"engine.measure","path":"cell;engine.measure","depth":2,"nanos":3000}
{"event":"numa","cell":"gups/Base","node":0,"local":120,"remote":8,"hops":8}
{"event":"numa","cell":"gups/Base","node":1,"local":90,"remote":30,"hops":42}
{"event":"numa","cell":"gups/FPT","node":0,"local":10,"remote":2,"hops":2}
not json at all
"#;

    #[test]
    fn matrix_and_breakdowns() {
        let s = analyze(SAMPLE.lines());
        assert_eq!(s.events.get("walk"), Some(&4));
        assert_eq!(s.events.get("span"), Some(&3));
        assert_eq!(s.events.get("fault"), Some(&1));
        assert_eq!(s.parse_errors, 1);
        assert_eq!(s.cells.len(), 3);

        assert_eq!(s.walks, 4);
        assert_eq!(s.accesses, 8);
        assert_eq!(s.latency, 148);
        assert_eq!(s.single_access_walks, 2);
        assert_eq!(s.single_step_l1_walks, 2);
        assert_eq!(s.flattened_walks, 2);
        assert_eq!(s.fallback_walks, 2);
        assert_eq!(s.psc_skips.get(&0), Some(&2));
        assert_eq!(s.psc_skips.get(&1), Some(&2));

        // Matrix: depth 1 row from the two unflattened walks, depth 3
        // from the flattened pair.
        assert_eq!(s.depth_level[&1]["L1"], 3);
        assert_eq!(s.depth_level[&1]["L2"], 2);
        assert_eq!(s.depth_level[&1]["DRAM"], 1);
        assert_eq!(s.depth_level[&3]["L1"], 2);
        assert_eq!(s.level_total("L1"), 5);
        assert_eq!(s.level_total("L2"), 2);
        assert_eq!(s.level_total("L3"), 0);
        assert_eq!(s.level_total("DRAM"), 1);
        assert_eq!(s.depth_total(1), 6);
        assert_eq!(s.depth_total(3), 2);
        assert_eq!(s.step_total(), 8);

        // Spans aggregate by path.
        assert_eq!(s.spans["cell;engine.measure"].count, 2);
        assert_eq!(s.spans["cell;engine.measure"].nanos, 8000);
        assert_eq!(s.spans["cell"].nanos, 9000);

        // NUMA records aggregate per node across cells.
        assert_eq!(s.events.get("numa"), Some(&3));
        assert_eq!(s.numa.len(), 2);
        assert_eq!(
            s.numa[&0],
            NumaAgg {
                local: 130,
                remote: 10,
                hops: 10
            }
        );
        assert_eq!(
            s.numa[&1],
            NumaAgg {
                local: 90,
                remote: 30,
                hops: 42
            }
        );
    }

    #[test]
    fn text_json_and_folded_render() {
        let s = analyze(SAMPLE.lines());
        let text = s.render_text();
        assert!(text.contains("walk depth x serving level"));
        assert!(text.contains("single-step L1 hits: 2 (50.0%)"));
        assert!(text.contains("span time attribution"));
        assert!(text.contains("numa traffic (2 nodes): local 220  remote 40  hops 52"));

        let j = s.to_json();
        let round = json::parse(&j.to_string()).unwrap();
        assert_eq!(round.get("walks").unwrap().as_u64(), Some(4));
        let matrix = round.get("depth_level").unwrap().as_array().unwrap();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[1].get("depth").unwrap().as_u64(), Some(3));
        assert_eq!(matrix[1].get("L1").unwrap().as_u64(), Some(2));
        assert_eq!(
            round
                .get("step_totals")
                .unwrap()
                .get("L1")
                .unwrap()
                .as_u64(),
            Some(5)
        );

        let numa = round.get("numa").unwrap().as_array().unwrap();
        assert_eq!(numa.len(), 2);
        assert_eq!(numa[1].get("node").unwrap().as_u64(), Some(1));
        assert_eq!(numa[1].get("hops").unwrap().as_u64(), Some(42));

        let folded = crate::span::fold_text(&s.span_snapshot());
        // cell self-time = 9000 - 5000 (only the gups/Base child is
        // under it in this aggregation; paths merge across cells).
        assert!(folded.contains("cell;engine.measure 8000\n"), "{folded}");
        assert!(folded.contains("cell 1000\n"), "{folded}");
    }

    #[test]
    fn empty_input_is_empty_summary() {
        let s = analyze(std::iter::empty());
        assert_eq!(s, TraceSummary::default());
        assert_eq!(
            s.render_text(),
            "records: 0 (), parse errors: 0\ncells: 0\n"
        );
    }
}
