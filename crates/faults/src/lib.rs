//! Deterministic fault injection for the flatwalk simulator.
//!
//! The paper's practicality argument rests on graceful degradation: on
//! fragmented, oversubscribed systems 0.5 %–12 % of 2 MB node
//! allocations fail (§3.2, §6.2) and the design must absorb every
//! failure through the 4 KB fallback path. This crate makes that
//! adversity reproducible. A seeded [`FaultPlan`] — SplitMix64-driven,
//! bit-for-bit deterministic across thread counts and processes —
//! injects three kinds of trouble:
//!
//! 1. **Allocation faults** ([`FaultyAllocator`]): transient refusals of
//!    2 MB / 1 GB requests and bounded fragmentation campaigns against
//!    the buddy allocator, forcing the fallback path *during* table
//!    growth rather than only from a pre-fragmented start state.
//! 2. **Mid-run mutations** ([`FaultPlan::mutation_events`]): scheduled
//!    unmap/remap, THP splinter/collapse, and flattened-node demotion
//!    events whose TLB/PWC shootdown cost ([`shootdown_cost`]) the sim
//!    drivers charge against the running cell and count in
//!    [`FaultStats`].
//! 3. **Poison cells** ([`FaultPlan::poisons`]): one designated grid
//!    cell that fails outright, for exercising the runner's fault
//!    domains.
//!
//! A plan can be installed at two levels. The 16 batch binaries install
//! one plan **process-wide** ([`install`] / [`clear`]) — the whole grid
//! runs under it. Concurrent services (the `flatwalk-serve` daemon)
//! instead install a **scoped** plan per job on the worker thread that
//! executes it ([`scoped`]); the scope overrides the process default
//! for its dynamic extent, so jobs with different seeds (or none) can
//! run side by side in one process. [`active`] resolves scoped-first,
//! and the plan's [`signature`](FaultPlan::signature) participates in
//! the setup-cache keys so faulted and fault-free snapshots never
//! alias.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, RwLock};

use flatwalk_pt::PhysAllocator;
use flatwalk_types::rng::{splitmix_mix, SplitMix64};
use flatwalk_types::{PageSize, PhysAddr};

/// Which kinds of faults a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Transient 2 MB / 1 GB allocation refusals (~10 %) during table
    /// growth — the §3.2 fallback path under allocation pressure.
    Alloc,
    /// A bounded fragmentation campaign against the buddy allocator
    /// before building, plus a lighter (~5 %) refusal rate — the §6.2
    /// fragmented-system stress.
    Frag,
    /// Mid-run address-space mutation events (unmap/remap, THP
    /// splinter/collapse, node demotion) with modeled shootdown costs.
    Mutate,
    /// [`Alloc`](FaultProfile::Alloc) and
    /// [`Mutate`](FaultProfile::Mutate) combined.
    Chaos,
    /// Poisons exactly one grid cell so it fails; everything else runs
    /// clean. Exercises the runner's fault domains.
    Poison,
    /// Slows exactly one grid cell down by a deterministic wall-clock
    /// delay per engine batch span; everything else runs clean. The
    /// delay is pure wall time — no modeled quantity changes, so the
    /// slowed cell's report stays byte-identical. Exercises deadline
    /// cancellation, stall supervision, and load shedding.
    Slow,
}

impl FaultProfile {
    /// The profile's name as written in `--faults seed:profile` and in
    /// the report manifest.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::Alloc => "alloc",
            FaultProfile::Frag => "frag",
            FaultProfile::Mutate => "mutate",
            FaultProfile::Chaos => "chaos",
            FaultProfile::Poison => "poison",
            FaultProfile::Slow => "slow",
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "alloc" => Ok(FaultProfile::Alloc),
            "frag" => Ok(FaultProfile::Frag),
            "mutate" => Ok(FaultProfile::Mutate),
            "chaos" => Ok(FaultProfile::Chaos),
            "poison" => Ok(FaultProfile::Poison),
            "slow" => Ok(FaultProfile::Slow),
            other => Err(format!(
                "unknown fault profile {other:?} (expected alloc|frag|mutate|chaos|poison|slow)"
            )),
        }
    }
}

/// One kind of mid-run address-space mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MidRunFault {
    /// A hot region is unmapped; every cached translation dies.
    Unmap,
    /// An unmapped region comes back at a new physical location.
    Remap,
    /// A transparent huge page is splintered into 4 KB pages.
    ThpSplinter,
    /// A flattened (2 MB) page-table node is demoted to 4 KB nodes.
    Demote,
}

impl MidRunFault {
    /// Short name used in trace records.
    pub fn name(self) -> &'static str {
        match self {
            MidRunFault::Unmap => "unmap",
            MidRunFault::Remap => "remap",
            MidRunFault::ThpSplinter => "thp_splinter",
            MidRunFault::Demote => "demote",
        }
    }

    /// Whether this mutation forces translations onto the 4 KB fallback
    /// path (splinter and demotion do; unmap/remap only invalidate).
    pub fn forces_fallback(self) -> bool {
        matches!(self, MidRunFault::ThpSplinter | MidRunFault::Demote)
    }

    fn from_index(i: u64) -> Self {
        match i % 4 {
            0 => MidRunFault::Unmap,
            1 => MidRunFault::Remap,
            2 => MidRunFault::ThpSplinter,
            _ => MidRunFault::Demote,
        }
    }
}

/// A seeded, fully deterministic fault-injection plan.
///
/// Everything a plan does is a pure function of `(seed, profile)` plus
/// stable inputs (address-space spec fields, workload names, operation
/// counts) — never of wall-clock time, thread interleaving, or process
/// randomness. Two runs with the same plan produce byte-identical
/// reports at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed; every derived stream mixes this with a purpose salt.
    pub seed: u64,
    /// Which faults to inject.
    pub profile: FaultProfile,
}

impl FaultPlan {
    /// Creates a plan from a seed and profile.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// Parses the `--faults` argument format: `seed` or `seed:profile`
    /// (e.g. `7`, `7:alloc`, `42:poison`). A bare seed defaults to the
    /// `alloc` profile.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed_text, profile) = match spec.split_once(':') {
            Some((s, p)) => (s, FaultProfile::parse(p)?),
            None => (spec, FaultProfile::Alloc),
        };
        let seed = seed_text
            .parse::<u64>()
            .map_err(|_| format!("bad fault seed {seed_text:?} (expected a u64)"))?;
        Ok(FaultPlan { seed, profile })
    }

    /// A non-zero fingerprint of the plan, used in setup-cache keys so
    /// snapshots built under different plans (or none) never alias.
    /// An absent plan is represented by `0` ([`signature_active`]).
    pub fn signature(self) -> u64 {
        let disc = match self.profile {
            FaultProfile::Alloc => 1u64,
            FaultProfile::Frag => 2,
            FaultProfile::Mutate => 3,
            FaultProfile::Chaos => 4,
            FaultProfile::Poison => 5,
            FaultProfile::Slow => 6,
        };
        splitmix_mix(self.seed ^ (disc << 57)) | 1
    }

    /// Whether this plan injects allocation faults at build time.
    pub fn alloc_faults(self) -> bool {
        matches!(
            self.profile,
            FaultProfile::Alloc | FaultProfile::Frag | FaultProfile::Chaos
        )
    }

    /// Probability that one 2 MB / 1 GB allocation is transiently
    /// refused (paper §6.2 measures 0.5 %–12 % on stressed systems).
    pub fn refusal_probability(self) -> f64 {
        match self.profile {
            FaultProfile::Alloc | FaultProfile::Chaos => 0.10,
            FaultProfile::Frag => 0.05,
            FaultProfile::Mutate | FaultProfile::Poison | FaultProfile::Slow => 0.0,
        }
    }

    /// Fragmentation campaign parameters `(hold_fraction, max_bytes)`
    /// to run against the buddy allocator before building, or `None`.
    pub fn frag_campaign(self) -> Option<(f64, u64)> {
        match self.profile {
            FaultProfile::Frag => Some((0.30, 256 << 20)),
            _ => None,
        }
    }

    /// Whether this plan schedules mid-run mutation events.
    pub fn mutations(self) -> bool {
        matches!(self.profile, FaultProfile::Mutate | FaultProfile::Chaos)
    }

    /// The deterministic mid-run event schedule for one cell: a sorted
    /// list of `(operation index, fault kind)` pairs, unique by index.
    /// `salt` must identify the cell from stable inputs only (see
    /// [`mix_str`]); `total_ops` is the cell's full operation count
    /// (warm-up included).
    pub fn mutation_events(self, salt: u64, total_ops: u64) -> Vec<(u64, MidRunFault)> {
        if !self.mutations() || total_ops == 0 {
            return Vec::new();
        }
        let count = (total_ops / 4096).clamp(2, 64);
        let mut rng = SplitMix64::new(splitmix_mix(self.seed) ^ salt);
        let mut positions = std::collections::BTreeSet::new();
        for _ in 0..count {
            positions.insert(rng.next_range(total_ops));
        }
        positions
            .into_iter()
            .map(|op| (op, MidRunFault::from_index(rng.next_u64())))
            .collect()
    }

    /// Whether this plan poisons grid cell `index` out of `total`.
    /// Exactly one cell per grid is poisoned (under the `poison`
    /// profile); which one depends only on the seed and the grid size.
    pub fn poisons(self, index: usize, total: usize) -> bool {
        matches!(self.profile, FaultProfile::Poison)
            && total > 0
            && index == (self.seed % total as u64) as usize
    }

    /// The wall-clock delay injected before each engine batch span of
    /// grid cell `index` out of `total` under the `slow` profile, or
    /// `None`. Victim selection mirrors [`poisons`](FaultPlan::poisons)
    /// (one designated cell per grid); the per-span delay is 20–99 ms,
    /// derived from the seed alone. Pure wall time: the slowed cell's
    /// report stays byte-identical to an unslowed run.
    pub fn slow_span_delay(self, index: usize, total: usize) -> Option<std::time::Duration> {
        if !matches!(self.profile, FaultProfile::Slow)
            || total == 0
            || index != (self.seed % total as u64) as usize
        {
            return None;
        }
        let ms = 20 + splitmix_mix(self.seed ^ (0x510u64 << 48)) % 80;
        Some(std::time::Duration::from_millis(ms))
    }
}

/// Folds a string into a 64-bit salt with [`splitmix_mix`]. Stable
/// across processes (unlike `std`'s seeded hashers), so it is safe to
/// use in fault-stream derivation.
pub fn mix_str(text: &str) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix_mix(acc ^ u64::from_le_bytes(word));
    }
    acc
}

static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

thread_local! {
    /// Stack of scoped per-job plans for this thread. The top entry
    /// overrides the process-wide default — including `None`, which
    /// means "this job runs fault-free even if a global plan exists".
    static SCOPED: RefCell<Vec<Option<Arc<FaultPlan>>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a scoped per-job plan (see [`scoped`]). Restores the
/// previous resolution when dropped. Not `Send`: the scope must end on
/// the thread that opened it.
#[must_use = "the scope ends when this guard is dropped"]
#[derive(Debug)]
pub struct ScopedPlan {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `plan` for the current thread until the returned guard is
/// dropped. `Some(plan)` makes [`active`] resolve to it; `None` forces
/// fault-free execution, shadowing any process-wide plan. Scopes nest —
/// the innermost wins.
///
/// Every experiment cell runs wholly on one worker thread, so wrapping
/// a cell's execution in a scope gives that cell (and everything it
/// builds through the setup cache) a private fault plan without
/// touching the rest of the process.
pub fn scoped(plan: Option<FaultPlan>) -> ScopedPlan {
    SCOPED.with(|s| s.borrow_mut().push(plan.map(Arc::new)));
    ScopedPlan {
        _not_send: PhantomData,
    }
}

/// Installs a plan process-wide (the batch-binary path: one plan for
/// the whole grid). Replaces any previous plan; threads inside a
/// [`scoped`] region keep their scoped resolution.
pub fn install(plan: FaultPlan) {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
}

/// Removes the process-wide plan; subsequent unscoped runs are
/// fault-free.
pub fn clear() {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The plan in effect on this thread: the innermost [`scoped`] plan if
/// a scope is open (even when that plan is `None`), else the
/// process-wide plan.
pub fn active() -> Option<Arc<FaultPlan>> {
    if let Some(top) = SCOPED.with(|s| s.borrow().last().cloned()) {
        return top;
    }
    PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// [`FaultPlan::signature`] of the active plan, or `0` when none is
/// installed. Setup-cache keys embed this.
pub fn signature_active() -> u64 {
    active().map(|p| p.signature()).unwrap_or(0)
}

/// Per-run fault counters, reported in `SimReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// TLB shootdowns performed for mid-run mutations.
    pub shootdowns: u64,
    /// Mutations that forced translations onto the 4 KB fallback path
    /// (THP splinters and node demotions).
    pub mid_run_fallbacks: u64,
    /// Total faults injected into this run (all kinds).
    pub faults_injected: u64,
}

impl FaultStats {
    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        self.shootdowns != 0 || self.mid_run_fallbacks != 0 || self.faults_injected != 0
    }

    /// Records one mid-run mutation event.
    pub fn note(&mut self, kind: MidRunFault) {
        self.shootdowns += 1;
        self.faults_injected += 1;
        if kind.forces_fallback() {
            self.mid_run_fallbacks += 1;
        }
    }
}

/// The modeled cost in cycles of one TLB/PWC shootdown that invalidated
/// `flushed` cached translations: a fixed IPI/teardown latency plus a
/// per-entry refill tax (the flushed entries must be re-walked).
pub fn shootdown_cost(flushed: u64) -> u64 {
    500 + 10 * flushed
}

/// A [`PhysAllocator`] decorator that deterministically refuses a
/// fraction of 2 MB / 1 GB requests, forcing the mapper down the §3.2
/// fallback path mid-growth. 4 KB requests always pass through — the
/// paper's fallback must itself never fail.
///
/// The refusal stream depends only on the constructor seed, so two
/// builds with equal seeds see identical fault sequences regardless of
/// thread count or build order.
///
/// # Examples
///
/// ```
/// use flatwalk_faults::FaultyAllocator;
/// use flatwalk_pt::{BumpAllocator, PhysAllocator};
/// use flatwalk_types::PageSize;
///
/// let mut inner = BumpAllocator::new(0);
/// let mut faulty = FaultyAllocator::new(&mut inner, 7, 1.0);
/// assert!(faulty.alloc(PageSize::Size2M).is_none()); // always refused
/// assert!(faulty.alloc(PageSize::Size4K).is_some()); // never refused
/// assert_eq!(faulty.injected(), 1);
/// ```
pub struct FaultyAllocator<'a> {
    inner: &'a mut dyn PhysAllocator,
    rng: SplitMix64,
    refusal: f64,
    injected: u64,
}

impl<'a> FaultyAllocator<'a> {
    /// Wraps `inner`, refusing large allocations with probability
    /// `refusal` drawn from a stream seeded by `seed`.
    pub fn new(inner: &'a mut dyn PhysAllocator, seed: u64, refusal: f64) -> Self {
        FaultyAllocator {
            inner,
            rng: SplitMix64::new(splitmix_mix(seed)),
            refusal,
            injected: 0,
        }
    }

    /// How many allocation faults this wrapper has injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl PhysAllocator for FaultyAllocator<'_> {
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
        if size != PageSize::Size4K && self.rng.chance(self.refusal) {
            self.injected += 1;
            return None;
        }
        self.inner.alloc(size)
    }

    fn release(&mut self, addr: PhysAddr, size: PageSize) {
        self.inner.release(addr, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_pt::BumpAllocator;

    #[test]
    fn parse_accepts_seed_and_profile() {
        assert_eq!(
            FaultPlan::parse("7").unwrap(),
            FaultPlan::new(7, FaultProfile::Alloc)
        );
        assert_eq!(
            FaultPlan::parse("42:poison").unwrap(),
            FaultPlan::new(42, FaultProfile::Poison)
        );
        assert!(FaultPlan::parse("x").is_err());
        assert!(FaultPlan::parse("7:bogus").is_err());
    }

    #[test]
    fn signature_is_nonzero_and_profile_sensitive() {
        let a = FaultPlan::new(0, FaultProfile::Alloc).signature();
        let b = FaultPlan::new(0, FaultProfile::Frag).signature();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mutation_schedule_is_deterministic_sorted_and_bounded() {
        let plan = FaultPlan::new(99, FaultProfile::Mutate);
        let a = plan.mutation_events(0xABCD, 100_000);
        let b = plan.mutation_events(0xABCD, 100_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.len() >= 2 && a.len() <= 64);
        assert!(a.iter().all(|&(op, _)| op < 100_000));
        let other_salt = plan.mutation_events(0x1234, 100_000);
        assert_ne!(a, other_salt);
        assert!(plan.mutation_events(0xABCD, 0).is_empty());
        assert!(FaultPlan::new(99, FaultProfile::Alloc)
            .mutation_events(0xABCD, 100_000)
            .is_empty());
    }

    #[test]
    fn poison_marks_exactly_one_cell() {
        let plan = FaultPlan::new(11, FaultProfile::Poison);
        let hits: Vec<usize> = (0..9).filter(|&i| plan.poisons(i, 9)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], 11 % 9);
        let clean = FaultPlan::new(11, FaultProfile::Alloc);
        assert!((0..9).all(|i| !clean.poisons(i, 9)));
    }

    #[test]
    fn slow_delays_exactly_one_cell_deterministically() {
        let plan = FaultPlan::new(13, FaultProfile::Slow);
        let hits: Vec<usize> = (0..9)
            .filter(|&i| plan.slow_span_delay(i, 9).is_some())
            .collect();
        assert_eq!(hits, vec![13 % 9]);
        let d = plan.slow_span_delay(13 % 9, 9).unwrap();
        assert_eq!(d, plan.slow_span_delay(13 % 9, 9).unwrap());
        assert!((20..100).contains(&(d.as_millis() as u64)), "{d:?}");
        // Slow plans never poison, and non-slow plans never delay.
        assert!((0..9).all(|i| !plan.poisons(i, 9)));
        let clean = FaultPlan::new(13, FaultProfile::Poison);
        assert!((0..9).all(|i| clean.slow_span_delay(i, 9).is_none()));
        assert_eq!(FaultPlan::parse("13:slow").unwrap(), plan);
        assert_ne!(plan.signature(), 0);
    }

    #[test]
    fn faulty_allocator_is_deterministic_and_spares_4k() {
        let run = |seed| {
            let mut inner = BumpAllocator::new(0);
            let mut faulty = FaultyAllocator::new(&mut inner, seed, 0.5);
            let results: Vec<bool> = (0..64)
                .map(|_| faulty.alloc(PageSize::Size2M).is_some())
                .collect();
            (results, faulty.injected())
        };
        let (a, a_injected) = run(3);
        let (b, b_injected) = run(3);
        assert_eq!(a, b);
        assert_eq!(a_injected, b_injected);
        assert!(a_injected > 0, "p=0.5 over 64 draws must refuse some");
        assert!(a.iter().any(|&ok| ok), "and admit some");

        let mut inner = BumpAllocator::new(0);
        let mut faulty = FaultyAllocator::new(&mut inner, 3, 1.0);
        for _ in 0..32 {
            assert!(faulty.alloc(PageSize::Size4K).is_some());
        }
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn mix_str_is_stable_and_input_sensitive() {
        assert_eq!(mix_str("gups"), mix_str("gups"));
        assert_ne!(mix_str("gups"), mix_str("btree"));
        assert_ne!(mix_str(""), mix_str("\0"));
    }

    #[test]
    fn install_clear_roundtrip() {
        // Other tests in this binary do not touch the global plan.
        install(FaultPlan::new(5, FaultProfile::Chaos));
        let p = active().expect("plan installed");
        assert_eq!(p.seed, 5);
        assert_eq!(signature_active(), p.signature());
        clear();
        assert!(active().is_none());
        assert_eq!(signature_active(), 0);
    }

    #[test]
    fn scoped_plan_shadows_and_restores() {
        // This thread's scope stack is private, so no cross-test races.
        assert!(active().is_none() || active().is_some()); // baseline read
        let outer = scoped(Some(FaultPlan::new(1, FaultProfile::Alloc)));
        assert_eq!(active().unwrap().seed, 1);
        {
            let _inner = scoped(Some(FaultPlan::new(2, FaultProfile::Mutate)));
            assert_eq!(active().unwrap().seed, 2);
            assert_eq!(
                signature_active(),
                FaultPlan::new(2, FaultProfile::Mutate).signature()
            );
        }
        assert_eq!(active().unwrap().seed, 1, "inner scope restored");
        drop(outer);
    }

    #[test]
    fn scoped_none_forces_fault_free() {
        // A scoped `None` must shadow the thread's view even while other
        // tests may install/clear the global plan concurrently.
        let _scope = scoped(None);
        assert!(active().is_none());
        assert_eq!(signature_active(), 0);
        {
            let _nested = scoped(Some(FaultPlan::new(9, FaultProfile::Frag)));
            assert_eq!(active().unwrap().seed, 9);
        }
        assert!(active().is_none());
    }

    #[test]
    fn scopes_are_per_thread() {
        let _scope = scoped(Some(FaultPlan::new(77, FaultProfile::Chaos)));
        assert_eq!(active().unwrap().seed, 77);
        std::thread::scope(|s| {
            s.spawn(|| {
                // The other thread sees only the global resolution (which
                // concurrent tests may set, but never to seed 77).
                let theirs = active();
                assert!(theirs.is_none_or(|p| p.seed != 77));
            });
        });
        assert_eq!(active().unwrap().seed, 77);
    }
}
