//! A fixed-latency main-memory model with NUMA home-node resolution.

use flatwalk_types::{AccessKind, PhysAddr};

use crate::numa::{NumaStats, NumaTopology};

/// Statistics for off-chip accesses, split by access kind.
///
/// The paper's energy evaluation (§7.3) reports *relative off-chip
/// accesses* for DRAM, so counting accesses is exactly what is needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Off-chip accesses made on behalf of data.
    pub data_accesses: u64,
    /// Off-chip accesses made on behalf of page walks.
    pub page_table_accesses: u64,
}

impl DramStats {
    /// Total off-chip accesses.
    pub fn total(&self) -> u64 {
        self.data_accesses + self.page_table_accesses
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.data_accesses += other.data_accesses;
        self.page_table_accesses += other.page_table_accesses;
    }
}

/// Fixed-latency DRAM, resolved per NUMA home node.
///
/// `latency` is the *total* load-to-use latency of a local access that
/// misses the entire cache hierarchy (Table 1 models DDR4-2400; at 2 GHz
/// this is on the order of 200 cycles, Table 3's mobile part uses 90 ns ≈
/// 270 cycles at 3 GHz). Under a multi-node [`NumaTopology`] the address's
/// home node may override that latency and remote requesters pay the
/// interconnect hop penalty on top; under the single-node identity
/// topology every access costs exactly `latency`, as before NUMA existed.
#[derive(Debug, Clone)]
pub struct DramModel {
    latency: u64,
    topology: NumaTopology,
    stats: DramStats,
    numa: NumaStats,
}

impl DramModel {
    /// Creates a single-node DRAM model with the given total access
    /// latency in cycles.
    pub fn new(latency: u64) -> Self {
        Self::with_topology(latency, NumaTopology::single())
    }

    /// Creates a DRAM model whose accesses resolve against `topology`.
    pub fn with_topology(latency: u64, topology: NumaTopology) -> Self {
        let numa = NumaStats {
            nodes: topology.node_count(),
            ..NumaStats::default()
        };
        DramModel {
            latency,
            topology,
            stats: DramStats::default(),
            numa,
        }
    }

    /// Base (local, homogeneous) access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The topology accesses resolve against.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Records one access to `pa` issued from node `from_node` and
    /// returns its latency.
    pub fn access(&mut self, kind: AccessKind, pa: PhysAddr, from_node: u32) -> u64 {
        match kind {
            AccessKind::Data => self.stats.data_accesses += 1,
            AccessKind::PageTable => self.stats.page_table_accesses += 1,
        }
        if self.topology.is_single() {
            // Identity fast path: no home-node arithmetic, no per-node
            // tallies — bit-for-bit the pre-NUMA model.
            return self.latency;
        }
        let home = self.topology.home_node(pa);
        let hops = self.topology.hops(from_node, home);
        self.numa.record(home, hops);
        self.topology.access_latency(self.latency, from_node, home)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Accumulated per-node placement statistics.
    pub fn numa_stats(&self) -> &NumaStats {
        &self.numa
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.numa = NumaStats {
            nodes: self.topology.node_count(),
            ..NumaStats::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::pin_to_node;

    #[test]
    fn counts_by_kind() {
        let mut d = DramModel::new(200);
        let pa = PhysAddr::new(0x1000);
        assert_eq!(d.access(AccessKind::Data, pa, 0), 200);
        assert_eq!(d.access(AccessKind::PageTable, pa, 0), 200);
        assert_eq!(d.access(AccessKind::PageTable, pa, 0), 200);
        assert_eq!(d.stats().data_accesses, 1);
        assert_eq!(d.stats().page_table_accesses, 2);
        assert_eq!(d.stats().total(), 3);
        d.reset_stats();
        assert_eq!(d.stats().total(), 0);
    }

    #[test]
    fn merge() {
        let mut a = DramStats {
            data_accesses: 1,
            page_table_accesses: 2,
        };
        a.merge(&DramStats {
            data_accesses: 10,
            page_table_accesses: 20,
        });
        assert_eq!(a.data_accesses, 11);
        assert_eq!(a.page_table_accesses, 22);
    }

    #[test]
    fn single_node_records_no_numa_tallies() {
        let mut d = DramModel::new(200);
        d.access(AccessKind::Data, PhysAddr::new(0x40_0000), 0);
        assert_eq!(d.numa_stats().local() + d.numa_stats().remote(), 0);
        assert!(!d.numa_stats().multi_node());
    }

    #[test]
    fn remote_access_pays_hops_and_counts_at_home() {
        let topo = NumaTopology::nodes(2).with_hop_latency(90);
        let mut d = DramModel::with_topology(200, topo);
        // Block 0 homes at node 0: local from node 0, remote from 1.
        let pa = PhysAddr::new(0x1000);
        assert_eq!(d.access(AccessKind::Data, pa, 0), 200);
        assert_eq!(d.access(AccessKind::Data, pa, 1), 290);
        let n = d.numa_stats();
        assert_eq!(n.per_node[0].local, 1);
        assert_eq!(n.per_node[0].remote, 1);
        assert_eq!(n.per_node[0].hops, 1);
        assert_eq!(n.per_node[1].local + n.per_node[1].remote, 0);
    }

    #[test]
    fn pinned_addresses_are_local_to_their_node() {
        let topo = NumaTopology::nodes(2).with_hop_latency(90);
        let mut d = DramModel::with_topology(200, topo);
        let pa = PhysAddr::new(2 << 20); // would interleave to node 1
        let pinned = pin_to_node(pa, 0);
        assert_eq!(d.access(AccessKind::PageTable, pinned, 0), 200);
        assert_eq!(d.numa_stats().per_node[0].local, 1);
        assert_eq!(d.numa_stats().remote(), 0);
    }
}
