//! A fixed-latency main-memory model.

use flatwalk_types::AccessKind;

/// Statistics for off-chip accesses, split by access kind.
///
/// The paper's energy evaluation (§7.3) reports *relative off-chip
/// accesses* for DRAM, so counting accesses is exactly what is needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Off-chip accesses made on behalf of data.
    pub data_accesses: u64,
    /// Off-chip accesses made on behalf of page walks.
    pub page_table_accesses: u64,
}

impl DramStats {
    /// Total off-chip accesses.
    pub fn total(&self) -> u64 {
        self.data_accesses + self.page_table_accesses
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.data_accesses += other.data_accesses;
        self.page_table_accesses += other.page_table_accesses;
    }
}

/// Fixed-latency DRAM.
///
/// `latency` is the *total* load-to-use latency of an access that misses
/// the entire cache hierarchy (Table 1 models DDR4-2400; at 2 GHz this is
/// on the order of 200 cycles, Table 3's mobile part uses 90 ns ≈ 270
/// cycles at 3 GHz).
#[derive(Debug, Clone)]
pub struct DramModel {
    latency: u64,
    stats: DramStats,
}

impl DramModel {
    /// Creates a DRAM model with the given total access latency in cycles.
    pub fn new(latency: u64) -> Self {
        DramModel {
            latency,
            stats: DramStats::default(),
        }
    }

    /// Total access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Records one access and returns its latency.
    pub fn access(&mut self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Data => self.stats.data_accesses += 1,
            AccessKind::PageTable => self.stats.page_table_accesses += 1,
        }
        self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut d = DramModel::new(200);
        assert_eq!(d.access(AccessKind::Data), 200);
        assert_eq!(d.access(AccessKind::PageTable), 200);
        assert_eq!(d.access(AccessKind::PageTable), 200);
        assert_eq!(d.stats().data_accesses, 1);
        assert_eq!(d.stats().page_table_accesses, 2);
        assert_eq!(d.stats().total(), 3);
        d.reset_stats();
        assert_eq!(d.stats().total(), 0);
    }

    #[test]
    fn merge() {
        let mut a = DramStats {
            data_accesses: 1,
            page_table_accesses: 2,
        };
        a.merge(&DramStats {
            data_accesses: 10,
            page_table_accesses: 20,
        });
        assert_eq!(a.data_accesses, 11);
        assert_eq!(a.page_table_accesses, 22);
    }
}
