//! A set-associative cache with LRU and page-table-prioritized replacement.

use flatwalk_types::rng::SplitMix64;
use flatwalk_types::stats::HitMiss;
use flatwalk_types::{AccessKind, OwnerId, CACHE_LINE_BYTES};

/// Configuration of one cache level.
///
/// # Examples
///
/// ```
/// use flatwalk_mem::CacheConfig;
///
/// let l3 = CacheConfig::new("L3", 16 << 20, 8, 42).with_pt_priority(true);
/// assert_eq!(l3.sets(), 16 * 1024 * 1024 / 64 / 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Human-readable name used in reports (e.g. `"L2"`).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency in cycles for a hit at this level
    /// (interpreted as the *total* latency to this level, per Table 1).
    pub latency: u64,
    /// Whether this level applies the page-table-priority replacement
    /// bias when the prioritization phase is active (paper §6.1 enables
    /// this for the L2 and the LLC).
    pub pt_priority: bool,
    /// Probability with which a priority-phase fill evicts a data line
    /// in preference to a page-table line (§6.1: "99 % of the time";
    /// "we empirically found that this ratio works well" — sweep it
    /// with the `ablation_ptp` experiment).
    pub priority_prob: f64,
}

impl CacheConfig {
    /// Creates a config with `pt_priority` disabled.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, capacity not a
    /// multiple of `ways * 64`, or a non-power-of-two set count).
    pub fn new(name: &'static str, size_bytes: u64, ways: usize, latency: u64) -> Self {
        let cfg = CacheConfig {
            name,
            size_bytes,
            ways,
            latency,
            pt_priority: false,
            priority_prob: Cache::PT_PRIORITY_PROB,
        };
        assert!(ways > 0, "cache must have at least one way");
        assert_eq!(
            size_bytes % (ways as u64 * CACHE_LINE_BYTES),
            0,
            "capacity must divide evenly into ways of 64 B lines"
        );
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two (got {})",
            cfg.sets()
        );
        assert!(
            ways <= 64,
            "at most 64 ways (validity is a per-set u64 bitmask)"
        );
        cfg
    }

    /// Enables or disables the page-table-priority replacement bias.
    pub fn with_pt_priority(mut self, enabled: bool) -> Self {
        self.pt_priority = enabled;
        self
    }

    /// Overrides the data-over-page-table eviction bias (default 0.99).
    pub fn with_priority_prob(mut self, prob: f64) -> Self {
        self.priority_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * CACHE_LINE_BYTES)) as usize
    }
}

/// One resident line's replacement bookkeeping (everything a probe does
/// *not* need to compare against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineMeta {
    kind: AccessKind,
    owner: OwnerId,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
}

impl LineMeta {
    /// Placeholder occupying ways whose validity bit is clear.
    const EMPTY: LineMeta = LineMeta {
        kind: AccessKind::Data,
        owner: OwnerId::SINGLE,
        stamp: 0,
    };
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address (address / 64).
    pub line: u64,
    /// What the evicted line held.
    pub kind: AccessKind,
    /// Which owner the evicted line belonged to.
    pub owner: OwnerId,
}

/// Per-cache statistics, split by access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hit/miss tally for data accesses.
    pub data: HitMiss,
    /// Hit/miss tally for page-table accesses.
    pub page_table: HitMiss,
    /// Number of lines written by fills.
    pub fills: u64,
    /// Page-table lines evicted while the priority phase was active
    /// (should stay near zero when prioritization works).
    pub pt_evictions_during_priority: u64,
}

impl CacheStats {
    /// Total probes (data + page-table).
    pub fn probes(&self) -> u64 {
        self.data.total() + self.page_table.total()
    }

    /// Total accesses that touch the array (probes + fills); the quantity
    /// dynamic energy scales with.
    pub fn array_accesses(&self) -> u64 {
        self.probes() + self.fills
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.data.merge(other.data);
        self.page_table.merge(other.page_table);
        self.fills += other.fills;
        self.pt_evictions_during_priority += other.pt_evictions_during_priority;
    }
}

/// A set-associative, write-allocate cache model.
///
/// The model tracks tags only (no data payloads) and uses true-LRU
/// replacement, optionally biased to retain page-table lines
/// (see [`Cache::fill`]).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Line addresses in one contiguous slab, set-major: way `w` of set
    /// `s` lives at `s * ways + w`. The tag addresses live apart from
    /// the replacement metadata so the probe scan — the simulator's
    /// single hottest loop — walks a dense `u64` run (a 16-way set is
    /// two host cache lines instead of six).
    lines: Box<[u64]>,
    /// Replacement bookkeeping, same indexing as `lines`; touched only
    /// on hits (stamp refresh) and fills (victim selection).
    meta: Box<[LineMeta]>,
    /// Per-set validity bitmask; bit `w` set ⇔ way `w` holds a line.
    valid: Box<[u64]>,
    set_mask: u64,
    clock: u64,
    rng: SplitMix64,
    stats: CacheStats,
}

impl Cache {
    /// Probability with which a priority-phase fill evicts a data line in
    /// preference to a page-table line (paper §6.1: "99 % of the time we
    /// choose to evict data over page table entries").
    pub const PT_PRIORITY_PROB: f64 = 0.99;

    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            lines: vec![0u64; sets * cfg.ways].into_boxed_slice(),
            meta: vec![LineMeta::EMPTY; sets * cfg.ways].into_boxed_slice(),
            valid: vec![0u64; sets].into_boxed_slice(),
            set_mask: sets as u64 - 1,
            clock: 0,
            rng: SplitMix64::new(0xCAC4E ^ cfg.size_bytes ^ (cfg.ways as u64) << 32),
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (but not contents); used to discard warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Warms the host's caches with `line`'s set (validity word and tag
    /// addresses) ahead of a probe. A pure hint: simulator state,
    /// statistics, and results are unchanged whether or not it runs.
    #[inline]
    pub fn prefetch(&self, line: u64) {
        let set = self.set_index(line);
        flatwalk_sync::prefetch_read(&self.valid, set);
        flatwalk_sync::prefetch_read(&self.lines, set * self.cfg.ways);
    }

    /// Finds `line`'s way within `set`, if resident.
    #[inline]
    fn find_way(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.cfg.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.lines[base + way] == line {
                return Some(way);
            }
        }
        None
    }

    /// Looks up `line`; on a hit refreshes LRU state and returns `true`.
    ///
    /// Records a hit or miss in the statistics under `kind`.
    pub fn probe(&mut self, line: u64, kind: AccessKind) -> bool {
        self.clock += 1;
        let set = self.set_index(line);
        // The scan touches only the dense tag-address run; the metadata
        // slab is written on a hit (this is the simulator's hottest
        // loop — a miss must not drag replacement state into the host's
        // caches).
        let hit = match self.find_way(set, line) {
            Some(way) => {
                self.meta[set * self.cfg.ways + way].stamp = self.clock;
                true
            }
            None => false,
        };
        let stats = match kind {
            AccessKind::Data => &mut self.stats.data,
            AccessKind::PageTable => &mut self.stats.page_table,
        };
        stats.record(hit);
        hit
    }

    /// Returns whether `line` is resident, without touching LRU or stats.
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.find_way(set, line).is_some()
    }

    /// Inserts `line` after a miss, choosing a victim if the set is full.
    ///
    /// Victim selection:
    ///
    /// * If the set has a free way, no eviction happens.
    /// * If `priority_active` and this level has `pt_priority` enabled:
    ///   with probability 0.99 the victim is the LRU line among *data*
    ///   lines — preferring data belonging to `owner` so that one
    ///   process' fills cannot displace another process' page table
    ///   (§6.1 multicore note) — falling back to the overall LRU line
    ///   when the set holds no data lines or in the remaining 1 % of
    ///   fills.
    /// * Otherwise: plain LRU.
    ///
    /// Returns the eviction, if any. If the line is already resident the
    /// call is a no-op returning `None`.
    pub fn fill(
        &mut self,
        line: u64,
        kind: AccessKind,
        owner: OwnerId,
        priority_active: bool,
    ) -> Option<Eviction> {
        let set = self.set_index(line);
        if self.find_way(set, line).is_some() {
            return None;
        }
        self.fill_absent(set, line, kind, owner, priority_active)
    }

    /// [`Cache::fill`] for a line the caller just probed absent — skips
    /// the residency re-scan. Callers must not have mutated the cache
    /// between the missing probe and this call.
    pub fn fill_after_miss(
        &mut self,
        line: u64,
        kind: AccessKind,
        owner: OwnerId,
        priority_active: bool,
    ) -> Option<Eviction> {
        let set = self.set_index(line);
        debug_assert!(self.find_way(set, line).is_none(), "line already resident");
        self.fill_absent(set, line, kind, owner, priority_active)
    }

    fn fill_absent(
        &mut self,
        set: usize,
        line: u64,
        kind: AccessKind,
        owner: OwnerId,
        priority_active: bool,
    ) -> Option<Eviction> {
        self.clock += 1;
        self.stats.fills += 1;
        let new_meta = LineMeta {
            kind,
            owner,
            stamp: self.clock,
        };
        let base = set * self.cfg.ways;

        // Free way? (lowest clear bit, matching the old first-empty-slot
        // scan).
        let free = !self.valid[set] & Self::ways_mask(self.cfg.ways);
        if free != 0 {
            let way = free.trailing_zeros() as usize;
            self.valid[set] |= 1 << way;
            self.lines[base + way] = line;
            self.meta[base + way] = new_meta;
            return None;
        }

        let biased =
            priority_active && self.cfg.pt_priority && self.rng.chance(self.cfg.priority_prob);

        let victim_way = if biased {
            // Prefer own data, then any data, then overall LRU.
            self.lru_where(set, |m| m.kind == AccessKind::Data && m.owner == owner)
                .or_else(|| self.lru_where(set, |m| m.kind == AccessKind::Data))
                .or_else(|| self.lru_where(set, |_| true))
        } else {
            self.lru_where(set, |_| true)
        }
        .expect("full set must yield a victim");

        let victim_line = std::mem::replace(&mut self.lines[base + victim_way], line);
        let victim = std::mem::replace(&mut self.meta[base + victim_way], new_meta);
        if priority_active && self.cfg.pt_priority && victim.kind == AccessKind::PageTable {
            self.stats.pt_evictions_during_priority += 1;
        }
        if flatwalk_obs::trace::repl_enabled() {
            flatwalk_obs::trace::emit_repl(&flatwalk_obs::trace::ReplRecord {
                cache: self.cfg.name,
                victim_line,
                victim_kind: match victim.kind {
                    AccessKind::PageTable => "pt",
                    AccessKind::Data => "data",
                },
                biased,
            });
        }
        Some(Eviction {
            line: victim_line,
            kind: victim.kind,
            owner: victim.owner,
        })
    }

    /// All-ways bitmask for an associativity of `ways`.
    #[inline]
    fn ways_mask(ways: usize) -> u64 {
        if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    /// Way index of the least-recently-used valid line in `set` matching
    /// `pred` (first such way on stamp ties, like the old per-set scan).
    #[inline]
    fn lru_where(&self, set: usize, pred: impl Fn(&LineMeta) -> bool) -> Option<usize> {
        let base = set * self.cfg.ways;
        let mut mask = self.valid[set];
        let mut best: Option<(usize, u64)> = None;
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let m = &self.meta[base + way];
            if pred(m) && best.is_none_or(|(_, stamp)| m.stamp < stamp) {
                best = Some((way, m.stamp));
            }
        }
        best.map(|(way, _)| way)
    }

    /// Number of resident lines matching `kind` (O(size); for tests and
    /// reports).
    pub fn resident_lines(&self, kind: AccessKind) -> usize {
        let ways = self.cfg.ways;
        self.valid
            .iter()
            .enumerate()
            .map(|(set, &mask)| {
                let mut mask = mask;
                let mut count = 0;
                while mask != 0 {
                    let way = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if self.meta[set * ways + way].kind == kind {
                        count += 1;
                    }
                }
                count
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> Cache {
        // 4 sets x `ways` ways.
        Cache::new(CacheConfig::new(
            "T",
            4 * ways as u64 * CACHE_LINE_BYTES,
            ways,
            1,
        ))
    }

    #[test]
    fn probe_miss_then_hit_after_fill() {
        let mut c = tiny(2);
        assert!(!c.probe(100, AccessKind::Data));
        c.fill(100, AccessKind::Data, OwnerId::SINGLE, false);
        assert!(c.probe(100, AccessKind::Data));
        assert_eq!(c.stats().data.hits, 1);
        assert_eq!(c.stats().data.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny(2);
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, AccessKind::Data, OwnerId::SINGLE, false);
        c.fill(4, AccessKind::Data, OwnerId::SINGLE, false);
        // Touch line 0 so line 4 becomes LRU.
        assert!(c.probe(0, AccessKind::Data));
        let ev = c.fill(8, AccessKind::Data, OwnerId::SINGLE, false).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.contains(0));
        assert!(c.contains(8));
    }

    #[test]
    fn duplicate_fill_is_noop() {
        let mut c = tiny(2);
        c.fill(0, AccessKind::Data, OwnerId::SINGLE, false);
        assert_eq!(c.fill(0, AccessKind::Data, OwnerId::SINGLE, false), None);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn pt_priority_spares_page_table_lines() {
        let cfg = CacheConfig::new("T", 4 * 4 * CACHE_LINE_BYTES, 4, 1).with_pt_priority(true);
        let mut c = Cache::new(cfg);
        // Fill set 0 with 3 PT lines and 1 data line.
        c.fill(0, AccessKind::PageTable, OwnerId::SINGLE, true);
        c.fill(4, AccessKind::PageTable, OwnerId::SINGLE, true);
        c.fill(8, AccessKind::PageTable, OwnerId::SINGLE, true);
        c.fill(12, AccessKind::Data, OwnerId::SINGLE, true);
        // Now repeatedly fill new data lines; the PT lines should survive
        // (the data way keeps being recycled ~99% of the time).
        let mut pt_evicted = 0;
        for i in 1..=200u64 {
            if let Some(ev) = c.fill(12 + 4 * i, AccessKind::Data, OwnerId::SINGLE, true) {
                if ev.kind == AccessKind::PageTable {
                    pt_evicted += 1;
                }
            }
        }
        // Only the ~1% LRU escapes can touch PT lines, and once the three
        // PT lines are gone no more PT evictions are possible.
        assert!(
            pt_evicted <= 3,
            "PT lines should rarely be evicted under priority (got {pt_evicted}/200)"
        );
        assert_eq!(
            c.stats().pt_evictions_during_priority,
            pt_evicted,
            "priority-phase PT evictions must be tallied"
        );
    }

    #[test]
    fn without_priority_pt_lines_get_evicted_normally() {
        let cfg = CacheConfig::new("T", 4 * 2 * CACHE_LINE_BYTES, 2, 1).with_pt_priority(true);
        let mut c = Cache::new(cfg);
        c.fill(0, AccessKind::PageTable, OwnerId::SINGLE, false);
        c.fill(4, AccessKind::PageTable, OwnerId::SINGLE, false);
        // LRU (line 0) is evicted even though it is a PT line.
        let ev = c.fill(8, AccessKind::Data, OwnerId::SINGLE, false).unwrap();
        assert_eq!(ev.kind, AccessKind::PageTable);
        assert_eq!(ev.line, 0);
    }

    #[test]
    fn priority_prefers_same_owner_data() {
        let cfg = CacheConfig::new("T", 4 * 3 * CACHE_LINE_BYTES, 3, 1).with_pt_priority(true);
        let mut c = Cache::new(cfg);
        let me = OwnerId(1);
        let other = OwnerId(2);
        c.fill(0, AccessKind::Data, other, true); // oldest overall
        c.fill(4, AccessKind::Data, me, true);
        c.fill(8, AccessKind::PageTable, other, true);
        // Almost always the victim should be *my* data (line 4), not the
        // other owner's older data, and never the PT line (modulo the 1%).
        let mut evicted_mine = 0;
        for i in 1..=100u64 {
            // Refill my data each round so a same-owner candidate exists.
            if let Some(ev) = c.fill(4 + 12 * i, AccessKind::Data, me, true) {
                if ev.owner == me {
                    evicted_mine += 1;
                }
            }
        }
        assert!(
            evicted_mine >= 90,
            "same-owner data should be the preferred victim ({evicted_mine}/100)"
        );
        assert!(c.contains(8), "foreign PT line must survive");
    }

    #[test]
    fn sets_power_of_two_enforced() {
        let r = std::panic::catch_unwind(|| CacheConfig::new("bad", 3 * 64, 1, 1));
        assert!(r.is_err());
    }

    #[test]
    fn stats_merge_and_reset() {
        let mut c = tiny(2);
        c.probe(0, AccessKind::PageTable);
        c.fill(0, AccessKind::PageTable, OwnerId::SINGLE, false);
        let mut agg = CacheStats::default();
        agg.merge(c.stats());
        assert_eq!(agg.page_table.misses, 1);
        assert_eq!(agg.fills, 1);
        assert_eq!(agg.array_accesses(), 2);
        c.reset_stats();
        assert_eq!(c.stats().probes(), 0);
        // Contents survive the stats reset.
        assert!(c.contains(0));
    }
}
