//! The three-level cache hierarchy plus DRAM.

use std::cell::RefCell;
use std::rc::Rc;

use flatwalk_types::{AccessKind, OwnerId, PhysAddr};

use crate::numa::{NumaStats, NumaTopology};
use crate::{Cache, CacheConfig, CacheStats, DramModel, DramStats, EnergyBreakdown, EnergyModel};

/// A last-level cache that may be shared between cores.
pub type SharedL3 = Rc<RefCell<Cache>>;

/// Geometry and latencies of the full hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// Total latency of a local access served by DRAM, in cycles.
    pub dram_latency: u64,
    /// Memory-node topology. [`NumaTopology::single`] (the default in
    /// every preset) is the exact identity of the pre-NUMA model.
    pub numa: NumaTopology,
}

impl HierarchyConfig {
    /// The paper's server configuration (Table 1): 32 KB 8-way 4-cycle L1,
    /// 256 KB 8-way 12-cycle L2, 16 MB 8-way 42-cycle L3, DDR4-2400
    /// (≈200 cycles at 2 GHz). Page-table prioritization is wired to the
    /// L2 and the LLC as in §6.1 (it only takes effect while the
    /// high-TLB-miss phase flag is raised).
    pub fn server() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new("L1D", 32 << 10, 8, 4),
            l2: CacheConfig::new("L2", 256 << 10, 8, 12).with_pt_priority(true),
            l3: CacheConfig::new("L3", 16 << 20, 8, 42).with_pt_priority(true),
            dram_latency: 200,
            numa: NumaTopology::single(),
        }
    }

    /// The paper's mobile configuration (Table 3): 32 KB 4-way L1,
    /// 512 KB 8-way L2, 2 MB 16-way L3, 90 ns memory (≈270 cycles at
    /// 3 GHz).
    pub fn mobile() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new("L1D", 32 << 10, 4, 4),
            l2: CacheConfig::new("L2", 512 << 10, 8, 10).with_pt_priority(true),
            l3: CacheConfig::new("L3", 2 << 20, 16, 30).with_pt_priority(true),
            dram_latency: 270,
            numa: NumaTopology::single(),
        }
    }

    /// Server configuration with a multicore-sized shared LLC
    /// (§7.1 multicore evaluation: 32 MB shared L3).
    pub fn server_multicore() -> Self {
        let mut cfg = Self::server();
        cfg.l3 = CacheConfig::new("L3", 32 << 20, 8, 42).with_pt_priority(true);
        cfg
    }

    /// Replaces the LLC capacity, keeping associativity/latency
    /// (used by the §7.1 page-table-to-LLC ratio sweep).
    pub fn with_llc_bytes(mut self, bytes: u64) -> Self {
        self.l3 = CacheConfig::new(self.l3.name, bytes, self.l3.ways, self.l3.latency)
            .with_pt_priority(self.l3.pt_priority)
            .with_priority_prob(self.l3.priority_prob);
        self
    }

    /// Overrides the §6.1 eviction bias on every prioritizing level
    /// (the `ablation_ptp` sweep).
    pub fn with_priority_prob(mut self, prob: f64) -> Self {
        self.l2.priority_prob = prob.clamp(0.0, 1.0);
        self.l3.priority_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Replaces the memory-node topology.
    pub fn with_numa(mut self, numa: NumaTopology) -> Self {
        self.numa = numa;
        self
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Served by main memory.
    Dram,
}

/// The result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Which level ultimately supplied the line.
    pub level: HitLevel,
    /// Total load-to-use latency in cycles.
    pub latency: u64,
}

/// Aggregated per-level statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// LLC statistics (the *whole* shared cache when shared).
    pub l3: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Per-node placement statistics (the *whole* shared DRAM when
    /// shared; all-zero under the single-node identity topology).
    pub numa: NumaStats,
}

/// A core's view of the memory system: private L1/L2, possibly-shared L3,
/// and DRAM.
///
/// All page-walk and data traffic of the simulator flows through
/// [`MemoryHierarchy::access`]. Latencies are *total* (the Table 1 values
/// are load-to-use at each level), and lower levels are filled on the way
/// back (write-allocate, no writeback traffic is modelled — the paper's
/// energy metric counts array accesses and off-chip accesses, which this
/// captures).
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: SharedL3,
    dram: Rc<RefCell<DramModel>>,
    priority_active: bool,
    /// The NUMA node this core issues from (0 on single-node systems).
    node: u32,
}

impl MemoryHierarchy {
    /// Builds a hierarchy with a private (unshared) LLC.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let l3 = Rc::new(RefCell::new(Cache::new(cfg.l3.clone())));
        let dram = Rc::new(RefCell::new(DramModel::with_topology(
            cfg.dram_latency,
            cfg.numa.clone(),
        )));
        Self::with_shared_l3(cfg, l3, dram)
    }

    /// Builds a hierarchy around an existing shared LLC and DRAM
    /// (multicore configurations share one `SharedL3` among cores).
    pub fn with_shared_l3(
        cfg: HierarchyConfig,
        l3: SharedL3,
        dram: Rc<RefCell<DramModel>>,
    ) -> Self {
        MemoryHierarchy {
            l1: Cache::new(cfg.l1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l3,
            dram,
            cfg,
            priority_active: false,
            node: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Assigns this core's NUMA node (multicore drivers place cores
    /// round-robin across the topology's nodes). A no-op identity on
    /// single-node topologies, where node 0 is the only node.
    pub fn set_node(&mut self, node: u32) {
        self.node = node % self.cfg.numa.node_count().max(1);
    }

    /// The NUMA node this core issues from.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// A structurally independent copy: private levels cloned, and the
    /// (possibly shared) LLC/DRAM cloned into *fresh* handles, so
    /// mutations of the copy never reach the original or its sharers.
    /// The engine's debug-build reference replays use this to re-run a
    /// span without perturbing the live hierarchy; a plain `Clone`
    /// derive would silently share the LLC through its `Rc`.
    pub fn deep_clone(&self) -> Self {
        MemoryHierarchy {
            cfg: self.cfg.clone(),
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            l3: Rc::new(RefCell::new(self.l3.borrow().clone())),
            dram: Rc::new(RefCell::new(self.dram.borrow().clone())),
            priority_active: self.priority_active,
            node: self.node,
        }
    }

    /// Handle to the (possibly shared) LLC.
    pub fn shared_l3(&self) -> SharedL3 {
        Rc::clone(&self.l3)
    }

    /// Handle to the (possibly shared) DRAM model.
    pub fn shared_dram(&self) -> Rc<RefCell<DramModel>> {
        Rc::clone(&self.dram)
    }

    /// Raises or lowers the high-TLB-miss phase flag that activates
    /// page-table-priority replacement in the L2/LLC (paper §5: phases are
    /// detected with existing hardware counters; the simulator's MMU layer
    /// drives this flag from a windowed TLB miss rate).
    pub fn set_priority_phase(&mut self, active: bool) {
        self.priority_active = active;
    }

    /// Whether the prioritization phase is currently active.
    pub fn priority_phase(&self) -> bool {
        self.priority_active
    }

    /// Performs one 64 B access and returns where it hit and its latency.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, owner: OwnerId) -> AccessOutcome {
        let line = pa.line();
        let pr = self.priority_active;

        // Start pulling the L2 and LLC tag sets toward the host's L1
        // while the (host-resident) L1 model probe runs: those slabs
        // are the structures whose tags routinely miss the host's own
        // caches, and their probes sit at the end of the ladder.
        self.l2.prefetch(line);
        self.l3.borrow().prefetch(line);

        if self.l1.probe(line, kind) {
            return AccessOutcome {
                level: HitLevel::L1,
                latency: self.cfg.l1.latency,
            };
        }
        if self.l2.probe(line, kind) {
            self.l1.fill_after_miss(line, kind, owner, pr);
            return AccessOutcome {
                level: HitLevel::L2,
                latency: self.cfg.l2.latency,
            };
        }
        // One shared-LLC borrow covers both the probe and the
        // miss-path fill; only the DRAM model needs its own. Every fill
        // below re-inserts a line the probe ladder just reported absent
        // from that level, so the residency re-scan is skipped.
        let mut l3 = self.l3.borrow_mut();
        if l3.probe(line, kind) {
            drop(l3);
            self.l2.fill_after_miss(line, kind, owner, pr);
            self.l1.fill_after_miss(line, kind, owner, pr);
            return AccessOutcome {
                level: HitLevel::L3,
                latency: self.cfg.l3.latency,
            };
        }
        let latency = self.dram.borrow_mut().access(kind, pa, self.node);
        l3.fill_after_miss(line, kind, owner, pr);
        drop(l3);
        self.l2.fill_after_miss(line, kind, owner, pr);
        self.l1.fill_after_miss(line, kind, owner, pr);
        AccessOutcome {
            level: HitLevel::Dram,
            latency,
        }
    }

    /// Probes the L2 *only* for the line holding `pa`, returning its
    /// latency on a hit and filling nothing on a miss.
    ///
    /// Victima's cache-resident TLB entries live directly in the L2
    /// (MICRO 2023): its lookups bypass the L1 and must not allocate on
    /// a miss — the subsequent walk decides whether to install.
    pub fn probe_l2_resident(&mut self, pa: PhysAddr, _owner: OwnerId) -> Option<u64> {
        let line = pa.line();
        if self.l2.probe(line, AccessKind::PageTable) {
            Some(self.cfg.l2.latency)
        } else {
            None
        }
    }

    /// Installs the line holding `pa` directly into the L2 (no L1 fill,
    /// no lower-level traffic), with page-table replacement priority
    /// whenever the prioritization phase is active. Victima's insertion
    /// path after a costly walk.
    pub fn install_l2_resident(&mut self, pa: PhysAddr, owner: OwnerId) {
        let line = pa.line();
        self.l2
            .fill_after_miss(line, AccessKind::PageTable, owner, self.priority_active);
    }

    /// Performs one direct DRAM access for `pa`, bypassing every cache
    /// level (no probes, no fills), and returns its latency. Mitosis
    /// replica-maintenance writes use this: keeping (nodes − 1) remote
    /// page-table copies coherent costs off-chip traffic but should not
    /// perturb this core's cache contents.
    pub fn dram_write(&mut self, pa: PhysAddr, kind: AccessKind) -> u64 {
        self.dram.borrow_mut().access(kind, pa, self.node)
    }

    /// Returns whether the line holding `pa` is resident at any level,
    /// without disturbing state (for tests).
    pub fn is_resident(&self, pa: PhysAddr) -> bool {
        let line = pa.line();
        self.l1.contains(line) || self.l2.contains(line) || self.l3.borrow().contains(line)
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.borrow().stats(),
            dram: *self.dram.borrow().stats(),
            numa: *self.dram.borrow().numa_stats(),
        }
    }

    /// Computes the dynamic-energy breakdown under `model`.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        let s = self.stats();
        model.breakdown(&s.l1, &s.l2, &s.l3, &s.dram)
    }

    /// Clears statistics at every level (warm-up discard). Note that for a
    /// shared LLC this clears the *shared* stats too.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.borrow_mut().reset_stats();
        self.dram.borrow_mut().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new("L1D", 1 << 10, 2, 4),
            l2: CacheConfig::new("L2", 4 << 10, 4, 12).with_pt_priority(true),
            l3: CacheConfig::new("L3", 16 << 10, 8, 42).with_pt_priority(true),
            dram_latency: 200,
            numa: NumaTopology::single(),
        }
    }

    #[test]
    fn miss_then_hit_ladder() {
        let mut h = MemoryHierarchy::new(small_cfg());
        let pa = PhysAddr::new(0x1_0000);
        let first = h.access(pa, AccessKind::Data, OwnerId::SINGLE);
        assert_eq!(first.level, HitLevel::Dram);
        assert_eq!(first.latency, 200);
        let second = h.access(pa, AccessKind::Data, OwnerId::SINGLE);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = MemoryHierarchy::new(small_cfg());
        let target = PhysAddr::new(0);
        h.access(target, AccessKind::Data, OwnerId::SINGLE);
        // Evict `target` from tiny L1 (8 sets x 2 ways = 16 lines) by
        // touching 32 distinct lines mapping across all sets.
        for i in 1..=32u64 {
            h.access(PhysAddr::new(i * 64), AccessKind::Data, OwnerId::SINGLE);
        }
        let out = h.access(target, AccessKind::Data, OwnerId::SINGLE);
        assert!(
            matches!(out.level, HitLevel::L2 | HitLevel::L3),
            "expected an on-chip hit below L1, got {:?}",
            out.level
        );
    }

    #[test]
    fn stats_track_levels() {
        let mut h = MemoryHierarchy::new(small_cfg());
        h.access(PhysAddr::new(0), AccessKind::PageTable, OwnerId::SINGLE);
        h.access(PhysAddr::new(0), AccessKind::PageTable, OwnerId::SINGLE);
        let s = h.stats();
        assert_eq!(s.l1.page_table.misses, 1);
        assert_eq!(s.l1.page_table.hits, 1);
        assert_eq!(s.dram.page_table_accesses, 1);
        assert_eq!(s.dram.data_accesses, 0);
    }

    #[test]
    fn shared_l3_is_visible_across_cores() {
        let cfg = small_cfg();
        let core0 = MemoryHierarchy::new(cfg.clone());
        let l3 = core0.shared_l3();
        let dram = core0.shared_dram();
        let mut core0 = core0;
        let mut core1 = MemoryHierarchy::with_shared_l3(cfg, l3, dram);

        let pa = PhysAddr::new(0x8000);
        core0.access(pa, AccessKind::Data, OwnerId(0));
        // core1 misses its private L1/L2 but hits the shared L3.
        let out = core1.access(pa, AccessKind::Data, OwnerId(1));
        assert_eq!(out.level, HitLevel::L3);
        // Only one DRAM access happened in total.
        assert_eq!(core1.stats().dram.total(), 1);
    }

    #[test]
    fn priority_phase_flag_roundtrip() {
        let mut h = MemoryHierarchy::new(small_cfg());
        assert!(!h.priority_phase());
        h.set_priority_phase(true);
        assert!(h.priority_phase());
    }

    #[test]
    fn resident_after_access() {
        let mut h = MemoryHierarchy::new(small_cfg());
        let pa = PhysAddr::new(0x2040);
        assert!(!h.is_resident(pa));
        h.access(pa, AccessKind::Data, OwnerId::SINGLE);
        assert!(h.is_resident(pa));
    }

    #[test]
    fn reset_stats_clears_all_levels() {
        let mut h = MemoryHierarchy::new(small_cfg());
        h.access(PhysAddr::new(0), AccessKind::Data, OwnerId::SINGLE);
        h.reset_stats();
        let s = h.stats();
        assert_eq!(s.l1.probes(), 0);
        assert_eq!(s.l3.probes(), 0);
        assert_eq!(s.dram.total(), 0);
    }

    #[test]
    fn llc_resize_helper() {
        let cfg = HierarchyConfig::server().with_llc_bytes(1 << 20);
        assert_eq!(cfg.l3.size_bytes, 1 << 20);
        assert!(cfg.l3.pt_priority);
    }
}
