//! The simulated memory hierarchy: set-associative caches, a DRAM model,
//! and dynamic-energy accounting.
//!
//! This crate is the substrate on which both data accesses and page-walk
//! accesses travel (paper Table 1/3). It implements the paper's **cache
//! prioritization** mechanism (§5, §6.1): during phases of high TLB miss
//! rate the L2 and LLC replacement policies are biased so that, 99 % of
//! the time, a victim is chosen among *data* lines in preference to
//! *page-table* lines; the remaining 1 % (or when a set holds no data
//! lines) falls back to plain LRU. Per-line owner identifiers (MPAM-style
//! partition IDs) additionally prevent one process' data from evicting
//! another process' page-table lines in shared caches.
//!
//! # Examples
//!
//! ```
//! use flatwalk_mem::{HierarchyConfig, MemoryHierarchy};
//! use flatwalk_types::{AccessKind, OwnerId, PhysAddr};
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
//! let pa = PhysAddr::new(0x4000);
//!
//! // Cold access misses everywhere and pays the DRAM round trip.
//! let cold = hier.access(pa, AccessKind::Data, OwnerId::SINGLE);
//! // The line is now resident in L1, so a re-access is an L1 hit.
//! let warm = hier.access(pa, AccessKind::Data, OwnerId::SINGLE);
//! assert!(warm.latency < cold.latency);
//! assert_eq!(warm.latency, hier.config().l1.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod energy;
mod hierarchy;
pub mod numa;

pub use cache::{Cache, CacheConfig, CacheStats, Eviction};
pub use dram::{DramModel, DramStats};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use hierarchy::{
    AccessOutcome, HierarchyConfig, HierarchyStats, HitLevel, MemoryHierarchy, SharedL3,
};
pub use numa::{pin_to_node, Interconnect, NodeNumaStats, NumaStats, NumaTopology, MAX_NODES};
