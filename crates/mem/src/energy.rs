//! Dynamic-energy accounting for the cache hierarchy and DRAM.
//!
//! The paper (§7.3) models cache energy with CACTI at 22 nm and reports
//! dynamic energy *normalized to the baseline*; for DRAM it reports
//! relative off-chip access counts. Only the ratios between per-access
//! energies matter for normalized results, so we use fixed per-access
//! constants in nanojoules of roughly CACTI-22nm magnitude.

use crate::{CacheStats, DramStats};

/// Per-access dynamic-energy constants (nJ) for each level.
///
/// # Examples
///
/// ```
/// use flatwalk_mem::EnergyModel;
///
/// let m = EnergyModel::cacti_22nm();
/// assert!(m.l3_nj > m.l1_nj); // bigger arrays cost more per access
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per L1 array access.
    pub l1_nj: f64,
    /// Energy per L2 array access.
    pub l2_nj: f64,
    /// Energy per L3 array access.
    pub l3_nj: f64,
    /// Energy per 64 B DRAM access.
    pub dram_nj: f64,
}

impl EnergyModel {
    /// Constants of roughly CACTI-22nm magnitude for the Table 1 geometry
    /// (32 KB L1, 256 KB L2, 16 MB L3, DDR4).
    pub fn cacti_22nm() -> Self {
        EnergyModel {
            l1_nj: 0.04,
            l2_nj: 0.12,
            l3_nj: 0.85,
            dram_nj: 15.0,
        }
    }

    /// Computes the dynamic-energy breakdown from access statistics.
    pub fn breakdown(
        &self,
        l1: &CacheStats,
        l2: &CacheStats,
        l3: &CacheStats,
        dram: &DramStats,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            l1_nj: l1.array_accesses() as f64 * self.l1_nj,
            l2_nj: l2.array_accesses() as f64 * self.l2_nj,
            l3_nj: l3.array_accesses() as f64 * self.l3_nj,
            dram_nj: dram.total() as f64 * self.dram_nj,
            dram_accesses: dram.total(),
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cacti_22nm()
    }
}

/// The dynamic energy consumed by a simulation, per level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 dynamic energy (nJ).
    pub l1_nj: f64,
    /// L2 dynamic energy (nJ).
    pub l2_nj: f64,
    /// L3 dynamic energy (nJ).
    pub l3_nj: f64,
    /// DRAM dynamic energy (nJ).
    pub dram_nj: f64,
    /// Raw off-chip access count (the paper reports DRAM as relative
    /// accesses).
    pub dram_accesses: u64,
}

impl EnergyBreakdown {
    /// Total cache-hierarchy dynamic energy (L1 + L2 + L3).
    pub fn cache_nj(&self) -> f64 {
        self.l1_nj + self.l2_nj + self.l3_nj
    }

    /// Cache energy relative to a baseline (1.0 = equal; also 1.0 when
    /// the baseline consumed nothing, so ratios stay finite).
    pub fn cache_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        if baseline.cache_nj() == 0.0 {
            1.0
        } else {
            self.cache_nj() / baseline.cache_nj()
        }
    }

    /// DRAM accesses relative to a baseline (1.0 = equal; also 1.0 when
    /// the baseline made no off-chip accesses).
    pub fn dram_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        if baseline.dram_accesses == 0 {
            1.0
        } else {
            self.dram_accesses as f64 / baseline.dram_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_types::stats::HitMiss;

    fn stats(hits: u64, misses: u64, fills: u64) -> CacheStats {
        CacheStats {
            data: HitMiss { hits, misses },
            page_table: HitMiss::default(),
            fills,
            pt_evictions_during_priority: 0,
        }
    }

    #[test]
    fn breakdown_scales_with_accesses() {
        let m = EnergyModel::cacti_22nm();
        let b = m.breakdown(
            &stats(10, 0, 0),
            &stats(0, 0, 0),
            &stats(0, 0, 0),
            &DramStats::default(),
        );
        assert!((b.l1_nj - 10.0 * m.l1_nj).abs() < 1e-12);
        assert_eq!(b.cache_nj(), b.l1_nj);
        assert_eq!(b.dram_accesses, 0);
    }

    #[test]
    fn relative_comparisons() {
        let m = EnergyModel::default();
        let base = m.breakdown(
            &stats(100, 0, 0),
            &stats(0, 0, 0),
            &stats(0, 0, 0),
            &DramStats {
                data_accesses: 50,
                page_table_accesses: 0,
            },
        );
        let better = m.breakdown(
            &stats(50, 0, 0),
            &stats(0, 0, 0),
            &stats(0, 0, 0),
            &DramStats {
                data_accesses: 25,
                page_table_accesses: 0,
            },
        );
        assert!((better.cache_vs(&base) - 0.5).abs() < 1e-12);
        assert!((better.dram_vs(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_baselines_stay_finite() {
        let zero = EnergyBreakdown::default();
        let some = EnergyBreakdown {
            l1_nj: 1.0,
            dram_accesses: 5,
            ..EnergyBreakdown::default()
        };
        assert_eq!(some.cache_vs(&zero), 1.0);
        assert_eq!(some.dram_vs(&zero), 1.0);
    }

    #[test]
    fn fills_count_toward_energy() {
        let m = EnergyModel::default();
        let with_fills = m.breakdown(
            &stats(0, 10, 10),
            &stats(0, 0, 0),
            &stats(0, 0, 0),
            &DramStats::default(),
        );
        let without = m.breakdown(
            &stats(0, 10, 0),
            &stats(0, 0, 0),
            &stats(0, 0, 0),
            &DramStats::default(),
        );
        assert!(with_fills.l1_nj > without.l1_nj);
    }
}
