//! NUMA topology: home-node resolution and remote-access timing.
//!
//! Every modelled DRAM access resolves against a *home node* — a pure
//! function of the physical address — and pays an interconnect penalty
//! proportional to the hop distance between the requesting core's node
//! and that home node. A single-node topology is the exact identity:
//! every address is local, every access costs the hierarchy's plain
//! `dram_latency`, and no per-node statistics are surfaced, so all
//! pre-NUMA results stay byte-identical.
//!
//! Addresses are normally interleaved across nodes at a configurable
//! granularity (default 2 MB, matching first-touch page interleaving at
//! huge-page grain). A *pinned* address range overrides interleaving:
//! [`pin_to_node`] tags an address with an explicit home node in its
//! high bits, which is how per-node page-table replicas (Mitosis) place
//! each replica in its reader's local memory.

use flatwalk_types::PhysAddr;

/// Upper bound on modelled nodes, sized so per-node counters stay a
/// `Copy` fixed array inside [`crate::HierarchyStats`].
pub const MAX_NODES: usize = 8;

/// Flag bit marking a pinned physical address (explicit home node).
/// Simulated physical memories top out well below 2^48, so bits 48..=56
/// are free to carry placement metadata.
const PIN_FLAG: u64 = 1 << 56;
/// Bit position of the pinned node id.
const PIN_NODE_SHIFT: u32 = 48;
/// Mask of the pinned node id field (8 bits).
const PIN_NODE_MASK: u64 = 0xff;

/// Pins `pa` to `node`: the returned address resolves to `node`
/// regardless of the interleaving. Distinct nodes yield distinct
/// addresses (and therefore distinct cache lines), which is exactly
/// right for replicated structures — each replica is its own memory.
pub fn pin_to_node(pa: PhysAddr, node: u32) -> PhysAddr {
    debug_assert!((node as usize) < MAX_NODES);
    PhysAddr::new(PIN_FLAG | ((node as u64 & PIN_NODE_MASK) << PIN_NODE_SHIFT) | pa.raw())
}

/// How nodes are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interconnect {
    /// Every node one hop from every other (small glueless systems,
    /// fully connected QPI/UPI meshes).
    FullMesh,
    /// Nodes on a bidirectional ring; hop count is the shorter ring
    /// distance (larger multi-socket and chiplet systems).
    Ring,
}

/// Node count, per-node DRAM timing, remote-hop penalty, and the
/// interconnect model — the placement half of the memory system.
///
/// Carried inside [`crate::HierarchyConfig`], so every driver that
/// builds a [`crate::MemoryHierarchy`] resolves accesses against it.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaTopology {
    /// Per-node local DRAM latency override in cycles; `None` uses the
    /// hierarchy's `dram_latency` (homogeneous nodes). Length is the
    /// node count.
    node_latencies: Vec<Option<u64>>,
    /// Added cycles per interconnect hop on a remote access.
    hop_latency: u64,
    /// log2 of the interleave granularity in bytes (default 21 = 2 MB).
    interleave_shift: u32,
    /// Hop-distance model.
    interconnect: Interconnect,
}

impl Default for NumaTopology {
    fn default() -> Self {
        NumaTopology::single()
    }
}

impl NumaTopology {
    /// The identity topology: one node, zero hop penalty. Every access
    /// is local at the plain `dram_latency` — byte-identical to the
    /// pre-NUMA memory model.
    pub fn single() -> Self {
        NumaTopology {
            node_latencies: vec![None],
            hop_latency: 0,
            interleave_shift: 21,
            interconnect: Interconnect::FullMesh,
        }
    }

    /// A homogeneous `n`-node topology (full mesh, 2 MB interleave,
    /// a default one-hop penalty of 90 cycles — the common ~1.45x
    /// remote/local DRAM ratio at the server config's 200-cycle local
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_NODES`].
    pub fn nodes(n: usize) -> Self {
        assert!((1..=MAX_NODES).contains(&n), "node count {n} out of range");
        NumaTopology {
            node_latencies: vec![None; n],
            hop_latency: if n > 1 { 90 } else { 0 },
            interleave_shift: 21,
            interconnect: Interconnect::FullMesh,
        }
    }

    /// Sets the per-hop remote penalty in cycles.
    pub fn with_hop_latency(mut self, cycles: u64) -> Self {
        self.hop_latency = cycles;
        self
    }

    /// Sets the interleave granularity as log2 bytes (12 = per page,
    /// 21 = per 2 MB region).
    pub fn with_interleave_shift(mut self, shift: u32) -> Self {
        self.interleave_shift = shift.min(40);
        self
    }

    /// Sets the interconnect model.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Overrides node `i`'s local DRAM latency (heterogeneous memory,
    /// e.g. one die-stacked fast node).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid node index.
    pub fn with_node_latency(mut self, i: usize, cycles: u64) -> Self {
        self.node_latencies[i] = Some(cycles);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_latencies.len() as u32
    }

    /// Whether this is the 1-node identity (no NUMA effects possible).
    pub fn is_single(&self) -> bool {
        self.node_latencies.len() == 1
    }

    /// The home node of `pa`: its pinned node if pinned, else the
    /// interleaved node of its address block.
    pub fn home_node(&self, pa: PhysAddr) -> u32 {
        let n = self.node_latencies.len() as u64;
        if n == 1 {
            return 0;
        }
        let raw = pa.raw();
        if raw & PIN_FLAG != 0 {
            let node = (raw >> PIN_NODE_SHIFT) & PIN_NODE_MASK;
            return (node % n) as u32;
        }
        ((raw >> self.interleave_shift) % n) as u32
    }

    /// Interconnect hop count between two nodes (0 when equal).
    pub fn hops(&self, from: u32, to: u32) -> u64 {
        if from == to {
            return 0;
        }
        match self.interconnect {
            Interconnect::FullMesh => 1,
            Interconnect::Ring => {
                let n = self.node_latencies.len() as u64;
                let d = (from as u64).abs_diff(to as u64) % n;
                d.min(n - d)
            }
        }
    }

    /// Total DRAM latency of an access from `from` to memory homed at
    /// `home`: the home node's local latency (or `default_latency`)
    /// plus the hop penalty. Strictly monotonic in hop count whenever
    /// `hop_latency > 0`.
    pub fn access_latency(&self, default_latency: u64, from: u32, home: u32) -> u64 {
        let local = self
            .node_latencies
            .get(home as usize)
            .copied()
            .flatten()
            .unwrap_or(default_latency);
        local + self.hop_latency * self.hops(from, home)
    }

    /// Content signature for setup-cache keys: any change to the
    /// topology parameters changes the signature, and the signature of
    /// [`NumaTopology::single`] is stable across runs.
    pub fn signature(&self) -> u64 {
        use flatwalk_types::rng::splitmix_mix;
        let mut sig = splitmix_mix(self.node_latencies.len() as u64);
        for (i, lat) in self.node_latencies.iter().enumerate() {
            sig ^= splitmix_mix((i as u64) << 32 ^ lat.map_or(u64::MAX, |l| l));
        }
        sig ^= splitmix_mix(self.hop_latency.rotate_left(17));
        sig ^= splitmix_mix(self.interleave_shift as u64 ^ 0xa5a5);
        sig ^ splitmix_mix(match self.interconnect {
            Interconnect::FullMesh => 1,
            Interconnect::Ring => 2,
        })
    }
}

/// Per-node access tallies (counted at the home node's DRAM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeNumaStats {
    /// Accesses whose requester and home node coincide.
    pub local: u64,
    /// Accesses served across the interconnect.
    pub remote: u64,
    /// Total interconnect hops paid by those remote accesses.
    pub hops: u64,
}

/// Per-node DRAM placement statistics. `nodes == 1` means the identity
/// topology: the counters still tick (node 0 is always local) but
/// reports omit them so single-node output is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumaStats {
    /// Modelled node count (0 until the first access records).
    pub nodes: u32,
    /// Tallies indexed by *home* node.
    pub per_node: [NodeNumaStats; MAX_NODES],
}

impl NumaStats {
    /// Whether multi-node statistics are worth reporting.
    pub fn multi_node(&self) -> bool {
        self.nodes > 1
    }

    /// Total local accesses across nodes.
    pub fn local(&self) -> u64 {
        self.per_node.iter().map(|n| n.local).sum()
    }

    /// Total remote accesses across nodes.
    pub fn remote(&self) -> u64 {
        self.per_node.iter().map(|n| n.remote).sum()
    }

    /// Total interconnect hops across nodes.
    pub fn hops(&self) -> u64 {
        self.per_node.iter().map(|n| n.hops).sum()
    }

    /// Records one access homed at `home`.
    pub fn record(&mut self, home: u32, hops: u64) {
        let slot = &mut self.per_node[home as usize % MAX_NODES];
        if hops == 0 {
            slot.local += 1;
        } else {
            slot.remote += 1;
            slot.hops += hops;
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &NumaStats) {
        self.nodes = self.nodes.max(other.nodes);
        for (a, b) in self.per_node.iter_mut().zip(other.per_node.iter()) {
            a.local += b.local;
            a.remote += b.remote;
            a.hops += b.hops;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_topology_is_identity() {
        let t = NumaTopology::single();
        assert!(t.is_single());
        assert_eq!(t.node_count(), 1);
        for raw in [0u64, 0x1234, 0x0dea_dbee_f000, u64::MAX >> 1] {
            assert_eq!(t.home_node(PhysAddr::new(raw)), 0);
            assert_eq!(t.access_latency(200, 0, 0), 200);
        }
    }

    #[test]
    fn interleaving_spreads_blocks_across_nodes() {
        let t = NumaTopology::nodes(2);
        assert_eq!(t.home_node(PhysAddr::new(0)), 0);
        assert_eq!(t.home_node(PhysAddr::new(2 << 20)), 1);
        assert_eq!(t.home_node(PhysAddr::new(4 << 20)), 0);
        // Addresses within one 2 MB block share a home.
        assert_eq!(
            t.home_node(PhysAddr::new(0x1000)),
            t.home_node(PhysAddr::new(0x2000))
        );
    }

    #[test]
    fn pinning_overrides_interleave() {
        let t = NumaTopology::nodes(4);
        let pa = PhysAddr::new(2 << 20); // interleaves to node 1
        assert_eq!(t.home_node(pa), 1);
        for node in 0..4 {
            assert_eq!(t.home_node(pin_to_node(pa, node)), node);
        }
        // Distinct pins are distinct addresses (distinct cache lines).
        assert_ne!(pin_to_node(pa, 0), pin_to_node(pa, 1));
    }

    #[test]
    fn latency_monotonic_in_ring_hops() {
        let t = NumaTopology::nodes(8)
            .with_interconnect(Interconnect::Ring)
            .with_hop_latency(50);
        let mut last = 0;
        for hops in 0..=4u64 {
            // On an 8-ring, node `hops` is exactly `hops` away from 0.
            assert_eq!(t.hops(0, hops as u32), hops);
            let lat = t.access_latency(200, 0, hops as u32);
            assert_eq!(lat, 200 + 50 * hops);
            assert!(lat > last || hops == 0);
            last = lat;
        }
        // Ring wraps: node 7 is one hop from node 0.
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
    }

    #[test]
    fn mesh_is_one_hop_everywhere() {
        let t = NumaTopology::nodes(8);
        for to in 1..8 {
            assert_eq!(t.hops(0, to), 1);
        }
        assert_eq!(t.hops(3, 3), 0);
    }

    #[test]
    fn heterogeneous_node_latency() {
        let t = NumaTopology::nodes(2)
            .with_node_latency(1, 80)
            .with_hop_latency(10);
        assert_eq!(t.access_latency(200, 0, 0), 200);
        assert_eq!(t.access_latency(200, 1, 1), 80);
        assert_eq!(t.access_latency(200, 0, 1), 90);
    }

    #[test]
    fn signatures_distinguish_topologies() {
        let base = NumaTopology::nodes(2);
        assert_eq!(base.signature(), NumaTopology::nodes(2).signature());
        assert_ne!(base.signature(), NumaTopology::single().signature());
        assert_ne!(base.signature(), NumaTopology::nodes(4).signature());
        assert_ne!(
            base.signature(),
            base.clone().with_hop_latency(10).signature()
        );
        assert_ne!(
            base.signature(),
            base.clone().with_interleave_shift(12).signature()
        );
        assert_ne!(
            base.signature(),
            base.clone()
                .with_interconnect(Interconnect::Ring)
                .signature()
        );
        assert_ne!(
            base.signature(),
            base.clone().with_node_latency(0, 100).signature()
        );
    }

    #[test]
    fn stats_record_and_merge() {
        let mut s = NumaStats {
            nodes: 2,
            ..Default::default()
        };
        s.record(0, 0);
        s.record(1, 1);
        s.record(1, 2);
        assert_eq!(s.local(), 1);
        assert_eq!(s.remote(), 2);
        assert_eq!(s.hops(), 3);
        assert_eq!(s.per_node[1].remote, 2);
        let mut t = NumaStats::default();
        t.merge(&s);
        assert_eq!(t.nodes, 2);
        assert_eq!(t.remote(), 2);
        assert!(s.multi_node());
        assert!(!NumaStats::default().multi_node());
    }
}
