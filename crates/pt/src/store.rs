//! Sparse simulated physical memory holding page-table contents.

use std::collections::HashMap;

use flatwalk_types::rng::SplitMixBuildHasher;
use flatwalk_types::{PhysAddr, PTE_BYTES};

use crate::Pte;

/// Sparse, frame-granular backing store for page-table nodes.
///
/// Only the page-*table* contents are materialized (data pages carry no
/// simulated payload — the simulator traffics in addresses). Unwritten
/// memory reads as zero, matching freshly allocated, zeroed table nodes.
///
/// # Examples
///
/// ```
/// use flatwalk_pt::{FrameStore, Pte};
/// use flatwalk_types::PhysAddr;
///
/// let mut store = FrameStore::new();
/// let slot = PhysAddr::new(0x1000);
/// assert!(!store.read_pte(slot).is_present());
/// store.write_pte(slot, Pte::leaf(PhysAddr::new(0x5000)));
/// assert!(store.read_pte(slot).is_present());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameStore {
    /// Frame-number → node contents. Keyed by a seeded SplitMix hasher:
    /// the default SipHash dominates `read_u64` (hit on every walk step
    /// of every page walk), and its DoS resistance buys nothing for
    /// self-generated frame numbers.
    frames: HashMap<u64, Box<[u64; 512]>, SplitMixBuildHasher>,
}

impl FrameStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the 8-byte entry at `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 8-byte aligned.
    pub fn read_u64(&self, pa: PhysAddr) -> u64 {
        assert_eq!(pa.raw() % PTE_BYTES, 0, "unaligned PTE read at {pa}");
        let frame = pa.raw() >> 12;
        let slot = ((pa.raw() >> 3) & 0x1ff) as usize;
        self.frames.get(&frame).map_or(0, |f| f[slot])
    }

    /// Writes the 8-byte entry at `pa`, materializing the frame if needed.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not 8-byte aligned.
    pub fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        assert_eq!(pa.raw() % PTE_BYTES, 0, "unaligned PTE write at {pa}");
        let frame = pa.raw() >> 12;
        let slot = ((pa.raw() >> 3) & 0x1ff) as usize;
        self.frames
            .entry(frame)
            .or_insert_with(|| Box::new([0u64; 512]))[slot] = value;
    }

    /// Reads the page-table entry at `pa`.
    pub fn read_pte(&self, pa: PhysAddr) -> Pte {
        Pte::from_raw(self.read_u64(pa))
    }

    /// Writes a page-table entry at `pa`.
    pub fn write_pte(&mut self, pa: PhysAddr, pte: Pte) {
        self.write_u64(pa, pte.raw());
    }

    /// Number of 4 KB frames that have been materialized (written to).
    pub fn materialized_frames(&self) -> usize {
        self.frames.len()
    }

    /// Compacts the store for long-term retention: drops the hash map's
    /// grow-ahead slack so a store snapshot frozen behind an `Arc` (and
    /// kept alive for the rest of an experiment grid) holds only what
    /// its frames need. Contents and lookup behaviour are unchanged.
    pub fn shrink_to_fit(&mut self) {
        self.frames.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_types::PhysAddr;

    #[test]
    fn zero_until_written() {
        let store = FrameStore::new();
        assert_eq!(store.read_u64(PhysAddr::new(0x1_2348)), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut store = FrameStore::new();
        store.write_u64(PhysAddr::new(0x2000), 0xdead);
        store.write_u64(PhysAddr::new(0x2008), 0xbeef);
        assert_eq!(store.read_u64(PhysAddr::new(0x2000)), 0xdead);
        assert_eq!(store.read_u64(PhysAddr::new(0x2008)), 0xbeef);
        // Same slot in a different frame is independent.
        assert_eq!(store.read_u64(PhysAddr::new(0x3000)), 0);
        assert_eq!(store.materialized_frames(), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        FrameStore::new().read_u64(PhysAddr::new(0x2004 | 1));
    }
}
