//! Typed page-table levels: walk positions carried in the type system.
//!
//! The functional walker in [`crate::walk`] decodes a node by computing
//! its bottom position (`Level::from_rank`), index shift, and terminal
//! rules from runtime values on every step. This module encodes the
//! decode position as a zero-sized type instead (in the style of the
//! `PageTable<Level>` mappers the design notes reference), so the whole
//! walk — index math, terminal checks, descent — monomorphizes into one
//! straight-line function per position × node-shape combination and the
//! per-step dispatch is gone from the compiled code.
//!
//! The three possible node shapes still branch at runtime (they are
//! data, read from the pointer entry), but each branch tail-calls the
//! statically-known next position, so the compiler sees the complete
//! 5-level lattice at once and flattens it.
//!
//! [`crate::resolve_from_with`] is the dynamic entry point: it matches
//! the starting [`Level`] once per walk and hands control to the typed
//! lattice.

use std::marker::PhantomData;

use flatwalk_types::{Level, PageSize, PhysAddr, VirtAddr};

use crate::{FrameStore, NodeShape, WalkError, WalkStep};

/// A page-table decode position known at compile time.
///
/// Implementations are the five zero-sized markers [`L1`]–[`L5`] plus
/// the [`BelowL1`] terminator. The associated constants mirror the
/// runtime [`Level`] math (`RANK`, `INDEX_SHIFT`) so the walk body can
/// const-fold every position-dependent branch.
pub trait TableLevel {
    /// Rank of this position (`L1` = 1 … `L5` = 5; 0 for [`BelowL1`]).
    const RANK: u8;
    /// VA shift of the 9-bit index field at this position
    /// (`12 + 9 × (RANK − 1)`); unused for [`BelowL1`].
    const INDEX_SHIFT: u32;
    /// The runtime [`Level`] this position corresponds to; for
    /// [`BelowL1`] the value is never read (the rank guard fires first).
    const LEVEL: Level;
    /// The next-lower decode position ([`BelowL1`] is its own `Down`).
    type Down: TableLevel;

    /// Walks one node at this position and recurses downward, invoking
    /// `visit` for each entry access in root-first order.
    ///
    /// Returns the final translation `(pa, size)`; the visitor may abort
    /// the walk by returning an error (the nested walker uses this to
    /// propagate host-translation failures mid-walk).
    ///
    /// # Errors
    ///
    /// See [`WalkError`]; also propagates the first visitor error.
    fn walk<V: FnMut(WalkStep) -> Result<(), WalkError>>(
        store: &FrameStore,
        node_base: PhysAddr,
        node_shape: NodeShape,
        va: VirtAddr,
        visit: &mut V,
    ) -> Result<(PhysAddr, PageSize), WalkError>;
}

/// The decode position below `L1`: reaching it mid-walk means the node
/// shape consumed more VA bits than remain, which the runtime walker
/// reports as [`WalkError::Malformed`].
pub enum BelowL1 {}

impl TableLevel for BelowL1 {
    const RANK: u8 = 0;
    const INDEX_SHIFT: u32 = 0;
    const LEVEL: Level = Level::L1;
    type Down = BelowL1;

    #[inline]
    fn walk<V: FnMut(WalkStep) -> Result<(), WalkError>>(
        _store: &FrameStore,
        _node_base: PhysAddr,
        _node_shape: NodeShape,
        _va: VirtAddr,
        _visit: &mut V,
    ) -> Result<(PhysAddr, PageSize), WalkError> {
        Err(WalkError::Malformed)
    }
}

/// One node lookup with a statically-known top (`P`) and bottom (`B`)
/// position; `DEPTH` is the number of merged levels the node spans
/// (`P::RANK − B::RANK + 1`). Every position-dependent branch below
/// folds at monomorphization time.
#[inline]
fn step<P, B, V, const DEPTH: u8>(
    store: &FrameStore,
    node_base: PhysAddr,
    va: VirtAddr,
    visit: &mut V,
) -> Result<(PhysAddr, PageSize), WalkError>
where
    P: TableLevel,
    B: TableLevel,
    V: FnMut(WalkStep) -> Result<(), WalkError>,
{
    if B::RANK == 0 {
        // The node decodes past L1 — same report as the runtime walker's
        // failed `Level::from_rank`.
        return Err(WalkError::Malformed);
    }
    let width = 9 * DEPTH as u32;
    let index = ((va.raw() >> B::INDEX_SHIFT) & ((1u64 << width) - 1)) as usize;
    let entry_pa = node_base.add(index as u64 * 8);
    visit(WalkStep {
        pos_top: P::LEVEL,
        depth: DEPTH,
        entry_pa,
        node_base,
        index,
    })?;

    let pte = store.read_pte(entry_pa);
    if !pte.is_present() {
        return Err(WalkError::NotMapped { at: B::LEVEL });
    }

    // Terminal cases (same rules, same order, as the runtime walker).
    if B::RANK == 1 {
        return Ok((
            pte.addr().add(va.offset(PageSize::Size4K)),
            PageSize::Size4K,
        ));
    }
    if pte.is_large() {
        return match B::RANK {
            2 => Ok((
                pte.addr().add(va.offset(PageSize::Size2M)),
                PageSize::Size2M,
            )),
            3 => Ok((
                pte.addr().add(va.offset(PageSize::Size1G)),
                PageSize::Size1G,
            )),
            _ => Err(WalkError::Malformed),
        };
    }
    // §3.5: at the L2 position a pointer to a flattened (2 MB) node is
    // recognized as a 2 MB mapping.
    if B::RANK == 2 && pte.child_shape() == NodeShape::Flat2 {
        return Ok((
            pte.addr().add(va.offset(PageSize::Size2M)),
            PageSize::Size2M,
        ));
    }

    <B::Down as TableLevel>::walk(store, pte.addr(), pte.child_shape(), va, visit)
}

macro_rules! table_level {
    ($(#[$doc:meta])* $name:ident, $rank:expr, $level:expr, $down:ty) => {
        $(#[$doc])*
        pub enum $name {}

        impl TableLevel for $name {
            const RANK: u8 = $rank;
            const INDEX_SHIFT: u32 = 12 + 9 * ($rank - 1);
            const LEVEL: Level = $level;
            type Down = $down;

            #[inline]
            fn walk<V: FnMut(WalkStep) -> Result<(), WalkError>>(
                store: &FrameStore,
                node_base: PhysAddr,
                node_shape: NodeShape,
                va: VirtAddr,
                visit: &mut V,
            ) -> Result<(PhysAddr, PageSize), WalkError> {
                match node_shape {
                    NodeShape::Conventional => {
                        step::<Self, Self, V, 1>(store, node_base, va, visit)
                    }
                    NodeShape::Flat2 => {
                        step::<Self, Self::Down, V, 2>(store, node_base, va, visit)
                    }
                    NodeShape::Flat3 => step::<Self, <Self::Down as TableLevel>::Down, V, 3>(
                        store, node_base, va, visit,
                    ),
                }
            }
        }
    };
}

table_level!(
    /// The `L1` decode position (4 KB leaves).
    L1,
    1,
    Level::L1,
    BelowL1
);
table_level!(
    /// The `L2` decode position (2 MB terminals, §3.5 flat pointers).
    L2,
    2,
    Level::L2,
    L1
);
table_level!(
    /// The `L3` decode position (1 GB terminals).
    L3,
    3,
    Level::L3,
    L2
);
table_level!(
    /// The `L4` decode position (a conventional 4-level root).
    L4,
    4,
    Level::L4,
    L3
);
table_level!(
    /// The `L5` decode position (a 5-level root).
    L5,
    5,
    Level::L5,
    L4
);

/// A page-table node whose decode position is part of the type.
///
/// Pairs a node base and shape with the [`TableLevel`] marker for the
/// position it is consulted at, so a walk started from it monomorphizes
/// end-to-end with no runtime position dispatch at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedNode<L: TableLevel> {
    /// Base address of the node.
    pub base: PhysAddr,
    /// How many radix levels the node merges.
    pub shape: NodeShape,
    marker: PhantomData<L>,
}

impl<L: TableLevel> TypedNode<L> {
    /// Wraps a node base and shape at position `L`.
    #[inline]
    pub fn new(base: PhysAddr, shape: NodeShape) -> Self {
        TypedNode {
            base,
            shape,
            marker: PhantomData,
        }
    }

    /// Walks this node for `va`, visiting each entry access in order.
    ///
    /// # Errors
    ///
    /// See [`WalkError`]; also propagates the first visitor error.
    #[inline]
    pub fn walk<V: FnMut(WalkStep) -> Result<(), WalkError>>(
        &self,
        store: &FrameStore,
        va: VirtAddr,
        visit: &mut V,
    ) -> Result<(PhysAddr, PageSize), WalkError> {
        L::walk(store, self.base, self.shape, va, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resolve, BumpAllocator, FlattenEverywhere, Layout, Mapper};

    #[test]
    fn level_constants_mirror_runtime_levels() {
        assert_eq!(L1::RANK, Level::L1.rank());
        assert_eq!(L5::RANK, Level::L5.rank());
        assert_eq!(L1::INDEX_SHIFT, Level::L1.index_shift());
        assert_eq!(L2::INDEX_SHIFT, Level::L2.index_shift());
        assert_eq!(L3::INDEX_SHIFT, Level::L3.index_shift());
        assert_eq!(L4::INDEX_SHIFT, Level::L4.index_shift());
        assert_eq!(L5::INDEX_SHIFT, Level::L5.index_shift());
    }

    #[test]
    fn typed_walk_matches_runtime_resolve() {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::flat_l4l3_l2l1(),
            &FlattenEverywhere,
        )
        .unwrap();
        let va = VirtAddr::new(0x7f00_0000_1000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            PhysAddr::new(0x5_0000_0000),
            PageSize::Size4K,
        )
        .unwrap();
        let table = *m.table();
        assert_eq!(table.top_level, Level::L4);

        let want = resolve(&store, &table, va).unwrap();
        let node = TypedNode::<L4>::new(table.root, table.root_shape);
        let mut steps = Vec::new();
        let (pa, size) = node
            .walk(&store, va, &mut |s| {
                steps.push(s);
                Ok(())
            })
            .unwrap();
        assert_eq!(pa, want.pa);
        assert_eq!(size, want.size);
        assert_eq!(steps.as_slice(), &*want.steps);
    }

    #[test]
    fn visitor_error_aborts_walk() {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        let va = VirtAddr::new(0x1000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            PhysAddr::new(0x20_0000),
            PageSize::Size4K,
        )
        .unwrap();
        let table = *m.table();
        let node = TypedNode::<L4>::new(table.root, table.root_shape);
        let mut visited = 0;
        let err = node.walk(&store, va, &mut |_| {
            visited += 1;
            if visited == 2 {
                Err(WalkError::TooDeep)
            } else {
                Ok(())
            }
        });
        assert_eq!(err.unwrap_err(), WalkError::TooDeep);
        assert_eq!(visited, 2, "walk stops at the failing visit");
    }
}
