//! Page-table entry encoding, including the flattening shape bits.

use flatwalk_types::PhysAddr;

/// The shape of a page-table node: how many radix levels it merges.
///
/// Paper §6.1: the hardware needs "two additional bits (for 4 KB, 2 MB,
/// and 1 GB pages…) in the CR3/TTBR register (for the root node) and at
/// each entry in the page table" to record the size of the node the
/// entry points to. This enum is those two bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeShape {
    /// A conventional 4 KB node: 512 entries, 9 index bits.
    #[default]
    Conventional,
    /// A flattened 2 MB node merging two levels: 262 144 entries,
    /// 18 index bits (paper §3.2).
    Flat2,
    /// A flattened 1 GB node merging three levels: 2²⁷ entries,
    /// 27 index bits (paper §3.2 mentions L4+L3+L2 as an option).
    Flat3,
}

impl NodeShape {
    /// Number of radix levels this node merges (1, 2, or 3).
    #[inline]
    pub fn depth(self) -> u8 {
        match self {
            NodeShape::Conventional => 1,
            NodeShape::Flat2 => 2,
            NodeShape::Flat3 => 3,
        }
    }

    /// Number of virtual-address index bits one lookup in this node
    /// consumes (9, 18, or 27).
    #[inline]
    pub fn index_bits(self) -> u32 {
        self.depth() as u32 * 9
    }

    /// The node's size in bytes (4 KB, 2 MB, or 1 GB).
    #[inline]
    pub fn node_bytes(self) -> u64 {
        (1u64 << self.index_bits()) * 8
    }

    /// Builds a shape from a merge depth.
    ///
    /// Returns `None` unless `1 <= depth <= 3`.
    #[inline]
    pub fn from_depth(depth: u8) -> Option<NodeShape> {
        match depth {
            1 => Some(NodeShape::Conventional),
            2 => Some(NodeShape::Flat2),
            3 => Some(NodeShape::Flat3),
            _ => None,
        }
    }
}

/// A modelled page-table entry.
///
/// Bit layout (a simulation encoding in the spirit of x86-64, using the
/// architecturally "currently unused bits" the paper points at for the
/// shape field):
///
/// | bits  | meaning                                     |
/// |-------|---------------------------------------------|
/// | 0     | present                                     |
/// | 1     | large terminal translation (2 MB at an L2 position, 1 GB at L3) |
/// | 2–3   | shape of the pointed-to node (0 conventional, 1 flat2, 2 flat3) |
/// | 12–55 | physical address bits of the target page/node |
///
/// # Examples
///
/// ```
/// use flatwalk_pt::{NodeShape, Pte};
/// use flatwalk_types::PhysAddr;
///
/// let pte = Pte::pointer(PhysAddr::new(0x20_0000), NodeShape::Flat2);
/// assert!(pte.is_present());
/// assert!(!pte.is_large());
/// assert_eq!(pte.child_shape(), NodeShape::Flat2);
/// assert_eq!(pte.addr(), PhysAddr::new(0x20_0000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

const PRESENT: u64 = 1 << 0;
const LARGE: u64 = 1 << 1;
const SHAPE_SHIFT: u32 = 2;
const SHAPE_MASK: u64 = 0b11 << SHAPE_SHIFT;
const ADDR_MASK: u64 = 0x00FF_FFFF_FFFF_F000;

impl Pte {
    /// The absent (all-zero) entry.
    pub const NOT_PRESENT: Pte = Pte(0);

    /// Reconstructs an entry from its raw 64-bit representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Pte {
        Pte(raw)
    }

    /// The raw 64-bit representation.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// A present leaf entry translating one 4 KB page at an L1 position.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not 4 KB aligned.
    pub fn leaf(target: PhysAddr) -> Pte {
        assert_eq!(target.raw() & 0xfff, 0, "leaf target must be 4 KB aligned");
        Pte(PRESENT | (target.raw() & ADDR_MASK))
    }

    /// A present large-translation entry (2 MB at an L2 position,
    /// 1 GB at an L3 position).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not 4 KB aligned (finer alignment is the
    /// mapper's responsibility since the level is positional).
    pub fn large(target: PhysAddr) -> Pte {
        assert_eq!(target.raw() & 0xfff, 0, "large target must be 4 KB aligned");
        Pte(PRESENT | LARGE | (target.raw() & ADDR_MASK))
    }

    /// A present pointer to a child node of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not aligned to the child node's size.
    pub fn pointer(target: PhysAddr, shape: NodeShape) -> Pte {
        assert_eq!(
            target.raw() % shape.node_bytes(),
            0,
            "node pointer must be aligned to the node size"
        );
        Pte(PRESENT | ((shape as u64) << SHAPE_SHIFT) | (target.raw() & ADDR_MASK))
    }

    /// Whether the entry is present.
    #[inline]
    pub fn is_present(self) -> bool {
        self.0 & PRESENT != 0
    }

    /// Whether the entry is a terminal large translation.
    #[inline]
    pub fn is_large(self) -> bool {
        self.0 & LARGE != 0
    }

    /// The shape of the node this (pointer) entry references.
    #[inline]
    pub fn child_shape(self) -> NodeShape {
        match (self.0 & SHAPE_MASK) >> SHAPE_SHIFT {
            0 => NodeShape::Conventional,
            1 => NodeShape::Flat2,
            _ => NodeShape::Flat3,
        }
    }

    /// The physical address this entry points at.
    #[inline]
    pub fn addr(self) -> PhysAddr {
        PhysAddr::new(self.0 & ADDR_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_depths_and_sizes() {
        assert_eq!(NodeShape::Conventional.depth(), 1);
        assert_eq!(NodeShape::Flat2.depth(), 2);
        assert_eq!(NodeShape::Flat3.depth(), 3);
        assert_eq!(NodeShape::Conventional.node_bytes(), 4 << 10);
        assert_eq!(NodeShape::Flat2.node_bytes(), 2 << 20);
        assert_eq!(NodeShape::Flat3.node_bytes(), 1 << 30);
        for d in 1..=3 {
            assert_eq!(NodeShape::from_depth(d).unwrap().depth(), d);
        }
        assert_eq!(NodeShape::from_depth(0), None);
        assert_eq!(NodeShape::from_depth(4), None);
    }

    #[test]
    fn leaf_roundtrip() {
        let pte = Pte::leaf(PhysAddr::new(0xabc000));
        assert!(pte.is_present());
        assert!(!pte.is_large());
        assert_eq!(pte.addr().raw(), 0xabc000);
        assert_eq!(Pte::from_raw(pte.raw()), pte);
    }

    #[test]
    fn large_roundtrip() {
        let pte = Pte::large(PhysAddr::new(0x4000_0000));
        assert!(pte.is_present());
        assert!(pte.is_large());
        assert_eq!(pte.addr().raw(), 0x4000_0000);
    }

    #[test]
    fn pointer_shapes_roundtrip() {
        for shape in [NodeShape::Conventional, NodeShape::Flat2, NodeShape::Flat3] {
            let base = PhysAddr::new(shape.node_bytes() * 3);
            let pte = Pte::pointer(base, shape);
            assert_eq!(pte.child_shape(), shape);
            assert_eq!(pte.addr(), base);
            assert!(!pte.is_large());
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn flat2_pointer_requires_2mb_alignment() {
        let _ = Pte::pointer(PhysAddr::new(0x1000), NodeShape::Flat2);
    }

    #[test]
    fn not_present_is_zero() {
        assert_eq!(Pte::NOT_PRESENT.raw(), 0);
        assert!(!Pte::NOT_PRESENT.is_present());
        assert!(!Pte::default().is_present());
    }
}
