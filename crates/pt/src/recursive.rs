//! Recursive (self-referencing) page tables and the glue sub-table
//! (paper §3.5).
//!
//! Windows-style kernels access page-table nodes through the page table
//! itself: a *recursion entry* in the root points back to the root, so a
//! walk that passes through it one or more times terminates early on a
//! page-table node instead of a data page.
//!
//! Flattened tables break naive recursion — recursing through a
//! flattened L4+L3 root consumes 18 VA bits per pass and overshoots
//! (Fig. 6). The paper's fix is a **glue sub-table** (`L4*`): one 4 KB
//! sub-table *inside* the 2 MB flattened root whose 512 entries point to
//! the root's own 4 KB sub-tables (`L3*`), including the glue itself
//! (Fig. 7). Walks then recurse in conventional 9-bit steps through the
//! glue.
//!
//! [`RecursiveScheme`] installs either form and synthesizes the virtual
//! addresses that reach a given node; correctness is checked by running
//! the ordinary [`resolve`](crate::resolve) walker over those addresses.

use flatwalk_types::VirtAddr;

use crate::{FrameStore, NodeShape, PageTable, Pte};

/// Errors installing or using a recursion scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursionError {
    /// The chosen slot index is out of range (must be < 512).
    SlotOutOfRange,
    /// Recursion on a 1 GB (triple-flattened) root is not defined by the
    /// paper and is not supported.
    UnsupportedRootShape,
}

impl std::fmt::Display for RecursionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecursionError::SlotOutOfRange => write!(f, "recursion slot must be < 512"),
            RecursionError::UnsupportedRootShape => {
                write!(f, "recursion is not supported on 1 GB roots")
            }
        }
    }
}

impl std::error::Error for RecursionError {}

/// An installed recursive-access scheme for one page table.
///
/// # Examples
///
/// ```
/// use flatwalk_pt::{
///     BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper,
///     RecursiveScheme, resolve,
/// };
/// use flatwalk_types::{PageSize, PhysAddr, VirtAddr};
///
/// let mut store = FrameStore::new();
/// let mut alloc = BumpAllocator::new(0x4000_0000);
/// let mut m = Mapper::new(&mut store, &mut alloc, Layout::conventional4(),
///                         &FlattenEverywhere).unwrap();
/// m.map(&mut store, &mut alloc, &FlattenEverywhere,
///       VirtAddr::new(0x1000_0000), PhysAddr::new(0x7000_0000),
///       PageSize::Size4K).unwrap();
///
/// // Install recursion in slot 511 and read back the root's own bytes.
/// let rec = RecursiveScheme::install(&mut store, m.table(), 511).unwrap();
/// let root_va = rec.node_va(&[]);
/// let walk = resolve(&store, m.table(), root_va).unwrap();
/// assert_eq!(walk.frame_base(), m.table().root);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveScheme {
    slot: usize,
    table: PageTable,
}

impl RecursiveScheme {
    /// Installs recursion into `table` using root index `slot` and
    /// returns the scheme.
    ///
    /// * Conventional root: writes the classic self-pointing recursion
    ///   entry at `root[slot]`.
    /// * Flattened (2 MB) root: embeds the glue sub-table `L4*` as
    ///   sub-table `slot`, with its 512 entries pointing at the root's
    ///   512 `L3*` sub-tables (the `slot`-th of which is the glue
    ///   itself).
    ///
    /// # Errors
    ///
    /// See [`RecursionError`]. Installing consumes the 512 GB VA region
    /// under root index `slot`, exactly like real recursive page tables.
    pub fn install(
        store: &mut FrameStore,
        table: &PageTable,
        slot: usize,
    ) -> Result<RecursiveScheme, RecursionError> {
        if slot >= 512 {
            return Err(RecursionError::SlotOutOfRange);
        }
        match table.root_shape {
            NodeShape::Conventional => {
                let entry_pa = table.root.add(slot as u64 * 8);
                store.write_pte(entry_pa, Pte::pointer(table.root, NodeShape::Conventional));
            }
            NodeShape::Flat2 => {
                // The glue occupies entries [slot*512, slot*512+512) of
                // the flattened root, i.e. the `slot`-th 4 KB sub-table.
                for i in 0..512usize {
                    let sub_table = table.root.add(i as u64 * 4096);
                    let entry_pa = table.root.add((slot * 512 + i) as u64 * 8);
                    store.write_pte(entry_pa, Pte::pointer(sub_table, NodeShape::Conventional));
                }
            }
            NodeShape::Flat3 => return Err(RecursionError::UnsupportedRootShape),
        }
        Ok(RecursiveScheme {
            slot,
            table: *table,
        })
    }

    /// The root index reserved for recursion.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Synthesizes the VA whose translation is the 4 KB node (or 4 KB
    /// sub-table of a flattened node) identified by `path`.
    ///
    /// `path` lists the 9-bit indices from the root toward the target:
    /// an empty path addresses the root node itself (its first 4 KB, or
    /// for a flattened root its `path[0]`-th sub-table when given one
    /// index), `&[l4]` the node referenced by root index `l4`, and so
    /// on. The remaining upper VA fields are filled with the recursion
    /// slot. Accessing byte `b` of the node means adding `b` (< 4096)
    /// to the returned address.
    ///
    /// # Panics
    ///
    /// Panics if `path` has more indices than walk fields, or any index
    /// is ≥ 512.
    pub fn node_va(&self, path: &[usize]) -> VirtAddr {
        let fields = self.table.top_level.rank() as usize; // 4 or 5
        assert!(path.len() <= fields, "path longer than the walk");
        let mut va: u64 = 0;
        let mut level = self.table.top_level;
        for i in 0..fields {
            let idx = if i < fields - path.len() {
                self.slot
            } else {
                path[i - (fields - path.len())]
            };
            assert!(idx < 512, "index {idx} out of range");
            va |= (idx as u64) << level.index_shift();
            level = match level.child() {
                Some(l) => l,
                None => break,
            };
        }
        VirtAddr::new(va)
    }

    /// Synthesizes the VA that maps an entire *flattened* node as one
    /// 2 MB translation via the §3.5 rule (a flat pointer read at the L2
    /// decode position terminates the walk as a 2 MB page).
    ///
    /// `path` identifies the entry that *points to* the flattened node,
    /// as 9-bit indices from the root; `path` must be such that the
    /// pointer lands at the L2 decode position, which means
    /// `path.len() == top_level.rank() - 3` recursion fields precede it…
    /// in practice: for a 4-level table pass the indices of the pointer
    /// (e.g. `&[l4]` for a table whose L4 entries point at flattened
    /// L3+L2 nodes). Byte `b` (< 2 MB) of the node is reached by adding
    /// `b`.
    ///
    /// # Panics
    ///
    /// Panics if the path cannot place the pointer at the L2 position.
    pub fn flat_node_va(&self, path: &[usize]) -> VirtAddr {
        let fields = self.table.top_level.rank() as usize;
        // The pointer must be consumed at the L2 decode position, i.e. it
        // is the (fields-1)-th 9-bit field; everything before it that is
        // not path is recursion slots, and the last field plus the page
        // offset address within the 2 MB node.
        assert!(
            path.len() + 2 <= fields,
            "path too long to leave room for the L2 position"
        );
        let recursions = fields - 1 - path.len();
        let mut full: Vec<usize> = Vec::with_capacity(fields - 1);
        full.extend(std::iter::repeat_n(self.slot, recursions));
        full.extend_from_slice(path);
        // Compose the leading fields; the final 9-bit field + 12-bit
        // offset remain zero (they select bytes within the 2 MB node).
        let mut va: u64 = 0;
        let mut level = self.table.top_level;
        for &idx in &full {
            assert!(idx < 512);
            va |= (idx as u64) << level.index_shift();
            level = level.child().expect("fields fit above L1");
        }
        VirtAddr::new(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::{Level, PageSize, PhysAddr};

    const SLOT: usize = 510;

    fn build(layout: Layout) -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
        // A data mapping far away from the recursion slot.
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            VirtAddr::new(0x12_3456_7000),
            PhysAddr::new(0x77_0000_0000),
            PageSize::Size4K,
        )
        .unwrap();
        (store, m)
    }

    #[test]
    fn conventional_recursion_reaches_every_node_level() {
        let (mut store, m) = build(Layout::conventional4());
        let rec = RecursiveScheme::install(&mut store, m.table(), SLOT).unwrap();
        let va = VirtAddr::new(0x12_3456_7000);
        let (l4, l3, l2) = (
            va.index(Level::L4),
            va.index(Level::L3),
            va.index(Level::L2),
        );

        // Root node via 4 recursions.
        let w = resolve(&store, m.table(), rec.node_va(&[])).unwrap();
        assert_eq!(w.frame_base(), m.table().root);
        assert_eq!(w.size, PageSize::Size4K);

        // L3 node (3 recursions), L2 node (2), L1 node (1).
        let root_walk = resolve(&store, m.table(), va).unwrap();
        let node_bases: Vec<PhysAddr> = root_walk.steps.iter().map(|s| s.node_base).collect();
        assert_eq!(node_bases.len(), 4);
        let l3_va = rec.node_va(&[l4]);
        assert_eq!(
            resolve(&store, m.table(), l3_va).unwrap().frame_base(),
            node_bases[1]
        );
        let l2_va = rec.node_va(&[l4, l3]);
        assert_eq!(
            resolve(&store, m.table(), l2_va).unwrap().frame_base(),
            node_bases[2]
        );
        let l1_va = rec.node_va(&[l4, l3, l2]);
        assert_eq!(
            resolve(&store, m.table(), l1_va).unwrap().frame_base(),
            node_bases[3]
        );

        // Reading the actual PTE through the recursive mapping: the walk
        // translated VA→(PA of L1 node); add the entry offset and read.
        let l1_walk = resolve(&store, m.table(), l1_va).unwrap();
        let pte_pa = l1_walk.frame_base().add(va.index(Level::L1) as u64 * 8);
        let pte = store.read_pte(pte_pa);
        assert_eq!(pte.addr(), PhysAddr::new(0x77_0000_0000));
    }

    #[test]
    fn recursion_on_mixed_flat_l3l2_table() {
        // Paper Fig. 5: layout (L4, flat L3+L2, L1).
        let (mut store, m) = build(Layout::flat_l3l2());
        let rec = RecursiveScheme::install(&mut store, m.table(), SLOT).unwrap();
        let va = VirtAddr::new(0x12_3456_7000);
        let data_walk = resolve(&store, m.table(), va).unwrap();
        assert_eq!(data_walk.steps.len(), 3);
        let flat_node = data_walk.steps[1].node_base;
        let l1_node = data_walk.steps[2].node_base;

        // One recursion → the L1 node (Fig. 5 middle).
        let l4 = va.index(Level::L4);
        let l3 = va.index(Level::L3);
        let l2 = va.index(Level::L2);
        let l1_va = rec.node_va(&[l4, l3, l2]);
        let w = resolve(&store, m.table(), l1_va).unwrap();
        assert_eq!(w.frame_base(), l1_node);

        // Two recursions → the flat L3+L2 node as a 2 MB mapping
        // (Fig. 5 right; needs the flat-pointer-at-L2 rule).
        let flat_va = rec.flat_node_va(&[l4]);
        let w = resolve(&store, m.table(), flat_va).unwrap();
        assert_eq!(w.size, PageSize::Size2M);
        assert_eq!(w.frame_base(), flat_node);
        // The full 2 MB node is addressable: read the PTE for (l3, l2).
        let pte_pa = w.frame_base().add(((l3 << 9) | l2) as u64 * 8);
        assert_eq!(store.read_pte(pte_pa).addr(), l1_node);
    }

    #[test]
    fn glue_table_enables_recursion_on_flattened_root() {
        // Paper Fig. 6/7: flat L4+L3 root with an embedded L4* glue.
        let (mut store, m) = build(Layout::flat_l4l3());
        let rec = RecursiveScheme::install(&mut store, m.table(), SLOT).unwrap();
        let va = VirtAddr::new(0x12_3456_7000);
        let data_walk = resolve(&store, m.table(), va).unwrap();
        assert_eq!(data_walk.steps.len(), 3); // flat root, L2, L1
        let l2_node = data_walk.steps[1].node_base;
        let l1_node = data_walk.steps[2].node_base;
        let (l4, l3, l2) = (
            va.index(Level::L4),
            va.index(Level::L3),
            va.index(Level::L2),
        );

        // Single recursion through the glue → L1 node (Fig. 6 bottom
        // right: fields [g, l4, l3, l2]).
        let l1_va = rec.node_va(&[l4, l3, l2]);
        let w = resolve(&store, m.table(), l1_va).unwrap();
        assert_eq!(w.frame_base(), l1_node);

        // Two recursions → L2 node (fields [g, g, l4, l3]).
        let l2_va = rec.node_va(&[l4, l3]);
        let w = resolve(&store, m.table(), l2_va).unwrap();
        assert_eq!(w.frame_base(), l2_node);

        // Three recursions → an arbitrary sub-table of the flat root
        // (Fig. 6 top right: fields [g, g, g, i] reach L3*-sub-table i).
        let sub_va = rec.node_va(&[l4]); // wait: path [l4] has 3 recursions
        let w = resolve(&store, m.table(), sub_va).unwrap();
        assert_eq!(
            w.frame_base(),
            m.table().root.add(l4 as u64 * 4096),
            "reaches the l4-th L3* sub-table of the flattened root"
        );
        // Read the real L3 entry for (l4, l3) through it.
        let pte = store.read_pte(w.frame_base().add(l3 as u64 * 8));
        assert_eq!(pte.addr(), l2_node);
    }

    #[test]
    fn rejects_bad_slot_and_flat3_root() {
        let (mut store, m) = build(Layout::conventional4());
        assert_eq!(
            RecursiveScheme::install(&mut store, m.table(), 512).unwrap_err(),
            RecursionError::SlotOutOfRange
        );
        let bad = PageTable {
            root: PhysAddr::new(0x4000_0000),
            root_shape: NodeShape::Flat3,
            top_level: Level::L4,
        };
        assert_eq!(
            RecursiveScheme::install(&mut store, &bad, 0).unwrap_err(),
            RecursionError::UnsupportedRootShape
        );
    }
}
