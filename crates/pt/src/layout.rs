//! Page-table layouts: which adjacent levels are merged (flattened).

use flatwalk_types::Level;

use crate::NodeShape;

/// A contiguous run of levels merged into one node shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelGroup {
    /// The uppermost level of the group.
    pub top: Level,
    /// How many levels the group merges (1–3).
    pub depth: u8,
}

impl LevelGroup {
    /// The lowest level in the group.
    pub fn bottom(self) -> Level {
        Level::from_rank(self.top.rank() - (self.depth - 1)).expect("valid group")
    }

    /// Node shape implied by the group's depth.
    pub fn shape(self) -> NodeShape {
        NodeShape::from_depth(self.depth).expect("depth validated at construction")
    }
}

/// A *target* organization of the page table: a partition of the walk
/// levels, root first (paper Fig. 2/3).
///
/// This is the policy the OS *tries* to realize; individual nodes may
/// still fall back to conventional shape when a large allocation fails
/// (paper §3.2 "graceful fallback"), so the realized structure is read
/// from the entries' shape bits, not from the layout.
///
/// # Examples
///
/// ```
/// use flatwalk_pt::Layout;
/// use flatwalk_types::Level;
///
/// let l = Layout::flat_l4l3_l2l1();
/// assert_eq!(l.groups().len(), 2);
/// assert_eq!(l.root_level(), Level::L4);
/// assert_eq!(l.group_of(Level::L1).top, Level::L2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    groups: Vec<LevelGroup>,
}

impl Layout {
    /// Builds a layout from root-first groups.
    ///
    /// # Errors
    ///
    /// Returns a message if the groups do not exactly tile the levels
    /// from the first group's top down to `L1`, or a depth is outside
    /// 1–3.
    pub fn from_groups(groups: Vec<LevelGroup>) -> Result<Layout, String> {
        if groups.is_empty() {
            return Err("layout needs at least one group".into());
        }
        let mut expected_top = groups[0].top;
        for (i, g) in groups.iter().enumerate() {
            if !(1..=3).contains(&g.depth) {
                return Err(format!("group {i} has invalid depth {}", g.depth));
            }
            if g.top != expected_top {
                return Err(format!(
                    "group {i} starts at {} but {} was expected",
                    g.top, expected_top
                ));
            }
            if g.top.rank() < g.depth {
                return Err(format!("group {i} extends below L1"));
            }
            match Level::from_rank(g.top.rank() - g.depth) {
                Some(next) => expected_top = next,
                None => {
                    if i + 1 != groups.len() {
                        return Err("groups continue past L1".into());
                    }
                    return Ok(Layout { groups });
                }
            }
        }
        Err("layout does not reach L1".into())
    }

    /// Conventional 4-level table: `L4 → L3 → L2 → L1` (paper Fig. 2 top).
    pub fn conventional4() -> Layout {
        Self::of_depths(Level::L4, &[1, 1, 1, 1])
    }

    /// Conventional 5-level table (§3.6).
    pub fn conventional5() -> Layout {
        Self::of_depths(Level::L5, &[1, 1, 1, 1, 1])
    }

    /// The paper's main evaluated design: both `L4+L3` and `L2+L1`
    /// flattened (Fig. 2 bottom, Fig. 3 left).
    pub fn flat_l4l3_l2l1() -> Layout {
        Self::of_depths(Level::L4, &[2, 2])
    }

    /// Only the top two levels flattened (`L4+L3`), leaving conventional
    /// `L2` / `L1` (Fig. 3 middle).
    pub fn flat_l4l3() -> Layout {
        Self::of_depths(Level::L4, &[2, 1, 1])
    }

    /// The middle two levels flattened (`L3+L2`) — the paper's kernel
    /// prototype target, efficient for 2 MB data pages (Fig. 3 right,
    /// §6.2, §7.5).
    pub fn flat_l3l2() -> Layout {
        Self::of_depths(Level::L4, &[1, 2, 1])
    }

    /// Only the bottom two levels flattened (`L2+L1`).
    pub fn flat_l2l1() -> Layout {
        Self::of_depths(Level::L4, &[1, 1, 2])
    }

    /// Aggressive variant: `L4+L3+L2` in one 1 GB node, then `L1` (§3.2).
    pub fn flat_l4l3l2() -> Layout {
        Self::of_depths(Level::L4, &[3, 1])
    }

    /// Five-level analogue of the paper's design (§3.6): `L5+L4`,
    /// `L3+L2`, `L1`.
    pub fn flat5_l5l4_l3l2() -> Layout {
        Self::of_depths(Level::L5, &[2, 2, 1])
    }

    fn of_depths(root: Level, depths: &[u8]) -> Layout {
        let mut groups = Vec::with_capacity(depths.len());
        let mut top = root;
        for (i, &d) in depths.iter().enumerate() {
            groups.push(LevelGroup { top, depth: d });
            if i + 1 < depths.len() {
                top = Level::from_rank(top.rank() - d).expect("depths tile levels");
            }
        }
        Layout::from_groups(groups).expect("static layouts are valid")
    }

    /// The groups, root first.
    pub fn groups(&self) -> &[LevelGroup] {
        &self.groups
    }

    /// The level at which the walk starts.
    pub fn root_level(&self) -> Level {
        self.groups[0].top
    }

    /// The group containing `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is above the root level.
    pub fn group_of(&self, level: Level) -> LevelGroup {
        *self
            .groups
            .iter()
            .find(|g| g.bottom().rank() <= level.rank() && level.rank() <= g.top.rank())
            .unwrap_or_else(|| panic!("{level} is not covered by this layout"))
    }

    /// The naive number of walk steps (no PWC, no large pages).
    pub fn walk_steps(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_layouts_are_valid() {
        assert_eq!(Layout::conventional4().walk_steps(), 4);
        assert_eq!(Layout::conventional5().walk_steps(), 5);
        assert_eq!(Layout::flat_l4l3_l2l1().walk_steps(), 2);
        assert_eq!(Layout::flat_l4l3().walk_steps(), 3);
        assert_eq!(Layout::flat_l3l2().walk_steps(), 3);
        assert_eq!(Layout::flat_l2l1().walk_steps(), 3);
        assert_eq!(Layout::flat_l4l3l2().walk_steps(), 2);
        assert_eq!(Layout::flat5_l5l4_l3l2().walk_steps(), 3);
    }

    #[test]
    fn group_bottoms() {
        let l = Layout::flat_l3l2();
        assert_eq!(l.group_of(Level::L4).bottom(), Level::L4);
        let mid = l.group_of(Level::L3);
        assert_eq!(mid.top, Level::L3);
        assert_eq!(mid.bottom(), Level::L2);
        assert_eq!(l.group_of(Level::L2), mid);
        assert_eq!(l.group_of(Level::L1).depth, 1);
    }

    #[test]
    fn invalid_layouts_rejected() {
        // Gap: L4 single then L2+L1 (skips L3).
        let bad = Layout::from_groups(vec![
            LevelGroup {
                top: Level::L4,
                depth: 1,
            },
            LevelGroup {
                top: Level::L2,
                depth: 2,
            },
        ]);
        assert!(bad.is_err());
        // Does not reach L1.
        let short = Layout::from_groups(vec![LevelGroup {
            top: Level::L4,
            depth: 2,
        }]);
        assert!(short.is_err());
        // Extends below L1.
        let deep = Layout::from_groups(vec![
            LevelGroup {
                top: Level::L4,
                depth: 2,
            },
            LevelGroup {
                top: Level::L2,
                depth: 3,
            },
        ]);
        assert!(deep.is_err());
        assert!(Layout::from_groups(vec![]).is_err());
    }

    #[test]
    fn shapes_follow_depth() {
        let l = Layout::flat_l4l3l2();
        assert_eq!(l.groups()[0].shape(), NodeShape::Flat3);
        assert_eq!(l.groups()[1].shape(), NodeShape::Conventional);
    }
}
