//! Radix page tables with optional **flattening** — the data-structure
//! half of the paper.
//!
//! A conventional x86-64/Armv8 page table is a 512-ary radix tree of
//! 4 KB nodes: four serial indirections per walk. *Flattening* (paper
//! §3) merges two adjacent levels into a single 2 MB node of 2¹⁸
//! entries, halving the depth; which levels to merge is flexible
//! ([`Layout`]) and every node can individually fall back to the
//! conventional shape when a 2 MB allocation is unavailable
//! ([`Mapper`]'s graceful fallback, §3.2).
//!
//! The crate provides:
//!
//! * [`FrameStore`] — sparse simulated physical memory holding the
//!   table contents.
//! * [`Pte`] / [`NodeShape`] — entry encoding including the shape bits
//!   the paper adds to CR3/TTBR and to each entry (§6.1).
//! * [`Layout`] / [`LevelGroup`] — which levels a table merges
//!   (Fig. 2/3), for 4- and 5-level tables (§3.6).
//! * [`Mapper`] — builds tables, handling large pages, the §3.4
//!   replicated-entry pathology and no-flatten regions
//!   ([`NfRegions`]), and allocation-failure fallback.
//! * [`resolve`] — the functional reference walker ([`Walk`] lists
//!   every entry access; the timed walker in `flatwalk-mmu` replays
//!   it through PWCs and caches).
//! * [`RecursiveScheme`] — self-referencing table access including the
//!   glue sub-table for flattened roots (§3.5, Fig. 5–7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod entry;
mod layout;
mod mapper;
mod recursive;
mod store;
pub mod typed;
mod walk;

pub use alloc::{BumpAllocator, No2MbAllocator, PhysAllocator};
pub use entry::{NodeShape, Pte};
pub use layout::{Layout, LevelGroup};
pub use mapper::{
    FlattenEverywhere, FlattenPolicy, MapError, Mapper, NfRegions, NodeCensus, PageTable,
    PromoteError,
};
pub use recursive::{RecursionError, RecursiveScheme};
pub use store::FrameStore;
pub use walk::{
    resolve, resolve_from, resolve_from_with, resolve_with, CumBits, StepVec, Walk, WalkError,
    WalkStep,
};
