//! The functional (untimed) reference page-table walker.
//!
//! This walker follows entries exactly the way the modelled hardware
//! does — including recursive self-references (§3.5) — and returns the
//! full list of entry accesses. The timed walker in `flatwalk-mmu`
//! replays these steps through the PWCs and the cache hierarchy.

use flatwalk_types::{Level, PageSize, PhysAddr, VirtAddr};

use crate::{FrameStore, NodeShape, PageTable};

/// One page-table entry access during a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// The VA-decode level at which this node was consulted (which may
    /// differ from the node's "natural" level during recursive walks).
    pub pos_top: Level,
    /// How many levels this node merged (1–3), i.e. how many 9-bit index
    /// fields the lookup consumed.
    pub depth: u8,
    /// Physical address of the entry that was read.
    pub entry_pa: PhysAddr,
    /// Base address of the node.
    pub node_base: PhysAddr,
    /// The index used within the node.
    pub index: usize,
}

impl WalkStep {
    /// Number of virtual-address bits this step translated.
    pub fn index_bits(&self) -> u32 {
        self.depth as u32 * 9
    }
}

/// Inline, allocation-free list of the steps of one walk.
///
/// `resolve` runs on every simulated page walk, so its step list lives
/// on the stack (bounded by [`MAX_STEPS`]) instead of in a fresh `Vec`.
/// Dereferences to `[WalkStep]`, so all slice operations (`iter`,
/// `len`, indexing, slicing) work unchanged.
#[derive(Clone, Copy)]
pub struct StepVec {
    steps: [WalkStep; MAX_STEPS],
    len: u8,
}

impl StepVec {
    /// An empty step list.
    pub const fn new() -> Self {
        const DUMMY: WalkStep = WalkStep {
            pos_top: Level::L1,
            depth: 0,
            entry_pa: PhysAddr::new(0),
            node_base: PhysAddr::new(0),
            index: 0,
        };
        StepVec {
            steps: [DUMMY; MAX_STEPS],
            len: 0,
        }
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`MAX_STEPS`] steps.
    pub fn push(&mut self, step: WalkStep) {
        self.steps[self.len as usize] = step;
        self.len += 1;
    }

    /// Cumulative VA bits consumed after each step (the prefix lengths
    /// that paging-structure caches are indexed by), computed inline —
    /// walk replay runs on every TLB miss and must not allocate.
    pub fn cum_index_bits(&self) -> CumBits {
        let mut bits = [0u32; MAX_STEPS];
        let mut acc = 0u32;
        for (i, step) in self.iter().enumerate() {
            acc += step.index_bits();
            bits[i] = acc;
        }
        CumBits {
            bits,
            len: self.len,
        }
    }
}

/// Inline result of [`StepVec::cum_index_bits`]; dereferences to
/// `[u32]`, one entry per step.
#[derive(Debug, Clone, Copy)]
pub struct CumBits {
    bits: [u32; MAX_STEPS],
    len: u8,
}

impl std::ops::Deref for CumBits {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        &self.bits[..self.len as usize]
    }
}

impl Default for StepVec {
    fn default() -> Self {
        StepVec::new()
    }
}

impl std::ops::Deref for StepVec {
    type Target = [WalkStep];

    fn deref(&self) -> &[WalkStep] {
        &self.steps[..self.len as usize]
    }
}

impl std::fmt::Debug for StepVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for StepVec {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for StepVec {}

impl<'a> IntoIterator for &'a StepVec {
    type Item = &'a WalkStep;
    type IntoIter = std::slice::Iter<'a, WalkStep>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A successful walk: the steps taken and the final translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Entry accesses, root first.
    pub steps: StepVec,
    /// The translated physical address (the full address, offset
    /// included).
    pub pa: PhysAddr,
    /// Granularity of the translation that terminated the walk.
    pub size: PageSize,
}

impl Walk {
    /// The physical page frame base of the final translation.
    pub fn frame_base(&self) -> PhysAddr {
        self.pa.align_down(self.size)
    }
}

/// Why a walk failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// An entry on the path was not present.
    NotMapped {
        /// The VA-decode level at which the absent entry was found.
        at: Level,
    },
    /// A large bit was set at a position where no large translation is
    /// architecturally defined.
    Malformed,
    /// The walk exceeded the step budget (cyclic recursion misuse).
    TooDeep,
    /// The run was interrupted at a batch boundary (cell deadline or
    /// cooperative cancellation) — not a table defect. The engine never
    /// interrupts *inside* a span, so every completed span's state
    /// transitions remain byte-identical to an uninterrupted run.
    Cancelled,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NotMapped { at } => write!(f, "entry not present at {at}"),
            WalkError::Malformed => write!(f, "malformed page-table entry"),
            WalkError::TooDeep => write!(f, "walk exceeded the step budget"),
            WalkError::Cancelled => write!(f, "cancelled at a batch boundary"),
        }
    }
}

impl std::error::Error for WalkError {}

/// Upper bound on entry accesses in one walk; generous enough for every
/// legal recursion pattern on a 5-level table.
const MAX_STEPS: usize = 8;

/// Fused walk: [`resolve`] with a per-step visitor instead of a
/// collected step list.
///
/// The visitor sees each [`WalkStep`] the moment it is decoded (before
/// the entry is read), so timed walkers can issue cache accesses and
/// PSC training inline without materializing a [`Walk`] first. The
/// final translation is returned as `(pa, size)`.
///
/// # Errors
///
/// See [`WalkError`]; the first visitor error aborts the walk.
#[inline]
pub fn resolve_with<V: FnMut(WalkStep) -> Result<(), WalkError>>(
    store: &FrameStore,
    table: &PageTable,
    va: VirtAddr,
    visit: &mut V,
) -> Result<(PhysAddr, PageSize), WalkError> {
    resolve_from_with(
        store,
        table.root,
        table.root_shape,
        table.top_level,
        va,
        visit,
    )
}

/// Fused walk from an arbitrary starting node: [`resolve_from`] with a
/// per-step visitor.
///
/// The starting [`Level`] is matched once, here; everything below runs
/// on the monomorphized [`typed`](crate::typed) lattice with no
/// per-step position dispatch.
///
/// # Errors
///
/// See [`WalkError`]; the first visitor error aborts the walk.
#[inline]
pub fn resolve_from_with<V: FnMut(WalkStep) -> Result<(), WalkError>>(
    store: &FrameStore,
    node_base: PhysAddr,
    node_shape: NodeShape,
    pos_top: Level,
    va: VirtAddr,
    visit: &mut V,
) -> Result<(PhysAddr, PageSize), WalkError> {
    use crate::typed::{TableLevel, L1, L2, L3, L4, L5};
    match pos_top {
        Level::L1 => L1::walk(store, node_base, node_shape, va, visit),
        Level::L2 => L2::walk(store, node_base, node_shape, va, visit),
        Level::L3 => L3::walk(store, node_base, node_shape, va, visit),
        Level::L4 => L4::walk(store, node_base, node_shape, va, visit),
        Level::L5 => L5::walk(store, node_base, node_shape, va, visit),
    }
}

/// Walks `table` for `va`, returning the steps and final translation.
///
/// Semantics (paper §3, §3.5):
///
/// * Each node consumes `depth × 9` VA bits at the current decode
///   position; the pointed-to node's shape comes from the pointer's
///   shape bits (the root's from CR3).
/// * A present entry at the `L1` decode position always terminates the
///   walk as a 4 KB translation.
/// * An entry with the large bit terminates at the `L2` (2 MB) or `L3`
///   (1 GB) decode positions.
/// * A *pointer to a flattened node* encountered at the `L2` decode
///   position is treated as a 2 MB translation — the §3.5 rule that
///   makes recursive access to flattened tables work.
///
/// # Errors
///
/// See [`WalkError`].
pub fn resolve(store: &FrameStore, table: &PageTable, va: VirtAddr) -> Result<Walk, WalkError> {
    resolve_from(store, table.root, table.root_shape, table.top_level, va)
}

/// Walks from an arbitrary starting node — the suffix of a full walk.
///
/// This is [`resolve`] parameterized on the start: `node_base` (of
/// `node_shape`) is consulted first, consuming VA index bits from
/// `pos_top` downward. The timed walker uses it to skip the levels a
/// paging-structure-cache hit already translated, so a PSC hit avoids
/// not just the replayed entry reads but the functional lookups too.
/// The returned [`Walk`] contains only the steps actually taken (the
/// skipped prefix is absent).
///
/// # Errors
///
/// See [`WalkError`].
pub fn resolve_from(
    store: &FrameStore,
    node_base: PhysAddr,
    node_shape: NodeShape,
    pos_top: Level,
    va: VirtAddr,
) -> Result<Walk, WalkError> {
    let mut steps = StepVec::new();
    let (pa, size) = resolve_from_with(store, node_base, node_shape, pos_top, va, &mut |s| {
        steps.push(s);
        Ok(())
    })?;
    Ok(Walk { steps, pa, size })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BumpAllocator, FlattenEverywhere, Layout, Mapper, Pte};

    #[test]
    fn unmapped_va_reports_level() {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1000_0000);
        let m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        let err = resolve(&store, m.table(), VirtAddr::new(0x1234_5000)).unwrap_err();
        assert_eq!(err, WalkError::NotMapped { at: Level::L4 });
    }

    #[test]
    fn steps_record_decreasing_positions() {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        let va = VirtAddr::new(0x7f00_0000_1000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            PhysAddr::new(0x5_0000_0000),
            PageSize::Size4K,
        )
        .unwrap();
        let w = resolve(&store, m.table(), va).unwrap();
        let tops: Vec<Level> = w.steps.iter().map(|s| s.pos_top).collect();
        assert_eq!(tops, vec![Level::L4, Level::L3, Level::L2, Level::L1]);
        assert!(w.steps.iter().all(|s| s.depth == 1));
    }

    #[test]
    fn self_loop_detected_as_too_deep() {
        // A root whose entry 0 points back to the root forever (without a
        // terminating rule firing) must hit the step budget:
        // build a 5-level conventional table where L5..L3 point in a cycle.
        let mut store = FrameStore::new();
        let root = PhysAddr::new(0x1000);
        // Entry 0 of the root points to itself, conventional shape.
        store.write_pte(root, Pte::pointer(root, NodeShape::Conventional));
        let table = PageTable {
            root,
            root_shape: NodeShape::Conventional,
            top_level: Level::L5,
        };
        // VA 0 loops L5→L4→L3→L2 ... but at the L2 position the pointer is
        // conventional-shaped, so it descends once more and terminates at
        // the L1 position as a 4 KB leaf (self-referencing semantics!).
        let w = resolve(&store, &table, VirtAddr::new(0)).unwrap();
        assert_eq!(w.steps.len(), 5);
        assert_eq!(w.pa, root, "recursive walk returns the node itself");

        // A flat2 self-loop at an L5 root terminates by the §3.5 rule:
        // the second lookup lands at the L2 decode position holding a
        // flat pointer, which reads as a 2 MB translation of the node.
        let flat_root = PhysAddr::new(0x20_0000);
        store.write_pte(flat_root, Pte::pointer(flat_root, NodeShape::Flat2));
        let t2 = PageTable {
            root: flat_root,
            root_shape: NodeShape::Flat2,
            top_level: Level::L5,
        };
        let w2 = resolve(&store, &t2, VirtAddr::new(0)).unwrap();
        assert_eq!(w2.size, PageSize::Size2M);
        assert_eq!(w2.frame_base(), flat_root);

        // A flat3 self-loop would decode below L1 — reported as malformed,
        // not a panic.
        let f3 = PhysAddr::new(0x4000_0000);
        store.write_pte(f3, Pte::pointer(f3, NodeShape::Flat3));
        let t3 = PageTable {
            root: f3,
            root_shape: NodeShape::Flat3,
            top_level: Level::L5,
        };
        assert_eq!(
            resolve(&store, &t3, VirtAddr::new(0)).unwrap_err(),
            WalkError::Malformed
        );
    }

    #[test]
    fn malformed_large_bit_at_l4() {
        let mut store = FrameStore::new();
        let root = PhysAddr::new(0x1000);
        store.write_pte(root, Pte::large(PhysAddr::new(0x2000)));
        let table = PageTable {
            root,
            root_shape: NodeShape::Conventional,
            top_level: Level::L4,
        };
        assert_eq!(
            resolve(&store, &table, VirtAddr::new(0)).unwrap_err(),
            WalkError::Malformed
        );
    }
}
