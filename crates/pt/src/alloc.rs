//! Allocation interface for page-table nodes and data pages.

use flatwalk_types::{PageSize, PhysAddr};

/// Source of physical memory for page-table nodes (and, in the OS layer,
/// data pages).
///
/// The mapper asks for 2 MB (or 1 GB) blocks when it wants to flatten;
/// an implementation is free to *fail* such requests — that is exactly
/// the situation the paper's graceful-fallback path handles (§3.2, §6.2),
/// and the OS crate's buddy allocator fails them under fragmentation.
pub trait PhysAllocator {
    /// Allocates one naturally aligned, zeroed block of the given size.
    ///
    /// Returns `None` if no suitable block is available.
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr>;

    /// Returns a previously allocated block to the pool.
    ///
    /// The default implementation leaks (bump-style allocators cannot
    /// reuse memory); real allocators like the OS buddy override it.
    /// Used by dynamic flattening (§6.2) to release the 4 KB nodes a
    /// promotion replaced.
    fn release(&mut self, addr: PhysAddr, size: PageSize) {
        let _ = (addr, size);
    }
}

/// Forwarding impl so decorators (fault injectors, instrumentation) can
/// wrap any allocator by exclusive reference without taking ownership.
impl<T: PhysAllocator + ?Sized> PhysAllocator for &mut T {
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
        (**self).alloc(size)
    }

    fn release(&mut self, addr: PhysAddr, size: PageSize) {
        (**self).release(addr, size);
    }
}

/// An infallible bump allocator over a private physical range.
///
/// Useful for tests and for standalone page-table construction where
/// fragmentation is not being modelled.
///
/// # Examples
///
/// ```
/// use flatwalk_pt::{BumpAllocator, PhysAllocator};
/// use flatwalk_types::PageSize;
///
/// let mut alloc = BumpAllocator::new(0x10_0000);
/// let a = alloc.alloc(PageSize::Size4K).unwrap();
/// let b = alloc.alloc(PageSize::Size2M).unwrap();
/// assert_eq!(a.raw() % 4096, 0);
/// assert_eq!(b.raw() % (2 * 1024 * 1024), 0);
/// assert!(b.raw() >= a.raw() + 4096);
/// ```
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    next: u64,
}

impl BumpAllocator {
    /// Creates an allocator handing out addresses starting at `base`.
    pub fn new(base: u64) -> Self {
        BumpAllocator { next: base }
    }

    /// Total bytes handed out so far (including alignment padding).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

impl PhysAllocator for BumpAllocator {
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
        let base = size.align_up(self.next);
        self.next = base + size.bytes();
        Some(PhysAddr::new(base))
    }
}

/// A test helper that refuses large allocations, forcing the mapper down
/// the graceful-fallback path.
#[derive(Debug, Clone)]
pub struct No2MbAllocator(pub BumpAllocator);

impl PhysAllocator for No2MbAllocator {
    fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
        if size > PageSize::Size4K {
            None
        } else {
            self.0.alloc(size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alignment_and_progress() {
        let mut a = BumpAllocator::new(0x1234);
        let p1 = a.alloc(PageSize::Size4K).unwrap();
        assert_eq!(p1.raw(), 0x2000);
        let p2 = a.alloc(PageSize::Size1G).unwrap();
        assert_eq!(p2.raw() % PageSize::Size1G.bytes(), 0);
        assert!(a.high_water() > p2.raw());
    }

    #[test]
    fn failing_allocator_rejects_large_only() {
        let mut a = No2MbAllocator(BumpAllocator::new(0));
        assert!(a.alloc(PageSize::Size2M).is_none());
        assert!(a.alloc(PageSize::Size1G).is_none());
        assert!(a.alloc(PageSize::Size4K).is_some());
    }
}
