//! Construction of (optionally flattened) page tables.

use std::collections::HashSet;

use flatwalk_types::{Level, PageSize, PhysAddr, VirtAddr};

use crate::{FrameStore, Layout, NodeShape, PhysAllocator, Pte};

/// A realized page table: the root pointer plus the architectural shape
/// bits that live in CR3/TTBR (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    /// Physical address of the root node.
    pub root: PhysAddr,
    /// Shape of the root node (the "one/two bits in the control
    /// register").
    pub root_shape: NodeShape,
    /// The level at which the walk starts (`L4` or `L5`).
    pub top_level: Level,
}

/// Why a mapping request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// `va` or `pa` is not aligned to the mapping size.
    Misaligned,
    /// Even the 4 KB fallback allocation failed (out of memory).
    AllocFailed,
    /// The range is already mapped (remapping is not modelled; the
    /// paper's evaluation holds mappings fixed during measurement).
    Conflict,
    /// The mapping size cannot be expressed in the current structure
    /// (e.g. a 1 GB page inside a node flattened past `L3`, which would
    /// need 512² replicated entries).
    Unrepresentable,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Misaligned => write!(f, "address not aligned to mapping size"),
            MapError::AllocFailed => write!(f, "physical allocation failed"),
            MapError::Conflict => write!(f, "range already mapped"),
            MapError::Unrepresentable => {
                write!(f, "mapping size not representable in this layout")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Why a dynamic flattening (promotion) request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteError {
    /// No 2 MB block available for the flattened node — the table is
    /// left untouched.
    AllocFailed,
    /// The walk to the target node hit a non-present entry.
    NotPresent,
    /// The target node (or the path to it) is already flattened.
    AlreadyFlat,
    /// `top` cannot head a merged pair (it is `L1`, or above the root).
    BadLevel,
    /// The path to the target terminates early in a large mapping.
    LargeMapping,
}

impl std::fmt::Display for PromoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromoteError::AllocFailed => write!(f, "no 2 MB block for the flattened node"),
            PromoteError::NotPresent => write!(f, "path to the target node is not mapped"),
            PromoteError::AlreadyFlat => write!(f, "node is already flattened"),
            PromoteError::BadLevel => write!(f, "level cannot head a flattened pair"),
            PromoteError::LargeMapping => write!(f, "path ends in a large mapping"),
        }
    }
}

impl std::error::Error for PromoteError {}

/// Per-node flattening decisions.
///
/// The layout says which groups the OS *wants* flattened; the policy can
/// cap the depth for specific regions — this is how the paper's
/// "no-flatten" (NF) 1 GB regions for 2 MB-page-heavy address ranges are
/// expressed (§3.4).
pub trait FlattenPolicy {
    /// Maximum merge depth allowed for a node whose top level is `top`
    /// and which will map `va`. Return `1` to force conventional nodes,
    /// `3` (or more) to impose no cap.
    fn max_depth(&self, top: Level, va: VirtAddr) -> u8;
}

/// Flatten wherever the layout asks to (no extra cap).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlattenEverywhere;

impl FlattenPolicy for FlattenEverywhere {
    fn max_depth(&self, _top: Level, _va: VirtAddr) -> u8 {
        3
    }
}

/// The paper's §3.4 optimization: designated 1 GB virtual regions keep
/// their `L2`/`L1` levels conventional so 2 MB data pages terminate at a
/// real `L2` entry instead of 512 replicated `L1` entries.
#[derive(Debug, Clone, Default)]
pub struct NfRegions {
    regions: HashSet<u64>,
}

impl NfRegions {
    /// Creates an empty region set (equivalent to [`FlattenEverywhere`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the 1 GB-aligned region containing `va` as no-flatten.
    pub fn mark(&mut self, va: VirtAddr) {
        self.regions.insert(va.raw() >> 30);
    }

    /// Whether the region containing `va` is marked.
    pub fn is_marked(&self, va: VirtAddr) -> bool {
        self.regions.contains(&(va.raw() >> 30))
    }

    /// Number of marked regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are marked.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

impl FlattenPolicy for NfRegions {
    fn max_depth(&self, top: Level, va: VirtAddr) -> u8 {
        if top <= Level::L2 && self.is_marked(va) {
            1
        } else {
            3
        }
    }
}

/// Census of the realized table: node counts by shape plus the mapping
/// pathologies the paper quantifies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCensus {
    /// 4 KB nodes allocated.
    pub conventional_nodes: u64,
    /// 2 MB flattened nodes allocated.
    pub flat2_nodes: u64,
    /// 1 GB flattened nodes allocated.
    pub flat3_nodes: u64,
    /// Entries written as replicas of a large mapping inside a flattened
    /// node (§3.4: 512 per 2 MB page mapped into a flattened `L2+L1`).
    pub replicated_entries: u64,
    /// Nodes that fell back to a smaller shape because the large
    /// allocation failed (§3.2 graceful fallback, §6.2).
    pub fallback_nodes: u64,
}

impl NodeCensus {
    /// Total bytes of page-table memory allocated.
    pub fn table_bytes(&self) -> u64 {
        self.conventional_nodes * (4 << 10)
            + self.flat2_nodes * (2 << 20)
            + self.flat3_nodes * (1 << 30)
    }

    /// Total node count.
    pub fn nodes(&self) -> u64 {
        self.conventional_nodes + self.flat2_nodes + self.flat3_nodes
    }

    /// Registers the census under `pt.*` metric names.
    pub fn record_metrics(&self, m: &mut flatwalk_obs::MetricsSnapshot) {
        m.add("pt.nodes.conventional", self.conventional_nodes)
            .add("pt.nodes.flat2", self.flat2_nodes)
            .add("pt.nodes.flat3", self.flat3_nodes)
            .add("pt.nodes.fallback", self.fallback_nodes)
            .add("pt.replicated_entries", self.replicated_entries)
            .add("pt.table_bytes", self.table_bytes());
    }
}

/// Builds and extends a page table according to a [`Layout`] and a
/// [`FlattenPolicy`], with the paper's graceful fallback to conventional
/// nodes when large allocations fail.
///
/// # Examples
///
/// ```
/// use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper, resolve};
/// use flatwalk_types::{PageSize, PhysAddr, VirtAddr};
///
/// let mut store = FrameStore::new();
/// let mut alloc = BumpAllocator::new(0x100_0000);
/// let mut mapper = Mapper::new(
///     &mut store,
///     &mut alloc,
///     Layout::flat_l4l3_l2l1(),
///     &FlattenEverywhere,
/// ).unwrap();
///
/// let va = VirtAddr::new(0x7000_2000);
/// let pa = PhysAddr::new(0x9000_1000);
/// mapper
///     .map(&mut store, &mut alloc, &FlattenEverywhere, va, pa, PageSize::Size4K)
///     .unwrap();
///
/// let walk = resolve(&store, mapper.table(), va).unwrap();
/// assert_eq!(walk.pa, pa);
/// assert_eq!(walk.steps.len(), 2); // two flattened levels
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    layout: Layout,
    table: PageTable,
    census: NodeCensus,
}

impl Mapper {
    /// Allocates the root node and returns a mapper for it.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::AllocFailed`] if not even a conventional root
    /// node could be allocated.
    pub fn new(
        store: &mut FrameStore,
        alloc: &mut dyn PhysAllocator,
        layout: Layout,
        policy: &dyn FlattenPolicy,
    ) -> Result<Mapper, MapError> {
        let top = layout.root_level();
        let group = layout.group_of(top);
        let desired = group.depth.min(policy.max_depth(top, VirtAddr::new(0)));
        let mut census = NodeCensus::default();
        let (root, root_shape) = alloc_node_with_fallback(store, alloc, desired, &mut census)?;
        Ok(Mapper {
            layout,
            table: PageTable {
                root,
                root_shape,
                top_level: top,
            },
            census,
        })
    }

    /// The realized table (for walkers).
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// The table's layout policy.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Node census of the realized table.
    pub fn census(&self) -> &NodeCensus {
        &self.census
    }

    /// Maps `size` bytes of virtual address space at `va` to `pa`.
    ///
    /// # Errors
    ///
    /// See [`MapError`].
    pub fn map(
        &mut self,
        store: &mut FrameStore,
        alloc: &mut dyn PhysAllocator,
        policy: &dyn FlattenPolicy,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
    ) -> Result<(), MapError> {
        if va.offset(size) != 0 || pa.offset(size) != 0 {
            return Err(MapError::Misaligned);
        }
        let translating = size.translating_level();

        let mut node_base = self.table.root;
        let mut node_shape = self.table.root_shape;
        let mut pos_top = self.table.top_level;

        loop {
            let depth = node_shape.depth();
            let pos_bottom = Level::from_rank(pos_top.rank() - (depth - 1))
                .expect("node cannot extend below L1");
            let idx = node_index(va, pos_top, depth);
            let entry_pa = node_base.add(idx as u64 * 8);

            if translating == pos_bottom {
                // Terminal entry at this node's bottom position.
                if store.read_pte(entry_pa).is_present() {
                    return Err(MapError::Conflict);
                }
                let pte = match size {
                    PageSize::Size4K => Pte::leaf(pa),
                    _ => Pte::large(pa),
                };
                store.write_pte(entry_pa, pte);
                return Ok(());
            }

            if translating > pos_bottom {
                // The natural terminal level was swallowed by this
                // flattened node: replicate entries (§3.4).
                if translating.rank() - pos_bottom.rank() != 1 {
                    return Err(MapError::Unrepresentable);
                }
                let base_idx = idx & !0x1ff; // va is size-aligned, so the
                                             // bottom 9 index bits are 0.
                let chunk = pos_bottom.entry_coverage();
                for i in 0..512u64 {
                    let slot = node_base.add((base_idx as u64 + i) * 8);
                    if store.read_pte(slot).is_present() {
                        return Err(MapError::Conflict);
                    }
                    let target = pa.add(i * chunk);
                    let pte = if pos_bottom == Level::L1 {
                        Pte::leaf(target)
                    } else {
                        Pte::large(target)
                    };
                    store.write_pte(slot, pte);
                }
                self.census.replicated_entries += 512;
                return Ok(());
            }

            // Descend.
            let existing = store.read_pte(entry_pa);
            if existing.is_present() {
                if existing.is_large() {
                    return Err(MapError::Conflict);
                }
                node_base = existing.addr();
                node_shape = existing.child_shape();
            } else {
                let child_top = pos_bottom.child().expect("descending above L1");
                let group = self.layout.group_of(child_top);
                let span = child_top.rank() - group.bottom().rank() + 1;
                let desired = span.min(policy.max_depth(child_top, va));
                let (base, shape) =
                    alloc_node_with_fallback(store, alloc, desired, &mut self.census)?;
                store.write_pte(entry_pa, Pte::pointer(base, shape));
                node_base = base;
                node_shape = shape;
            }
            // The child node's top is one level below this node's bottom.
            pos_top = pos_bottom.child().expect("descending above L1");
        }
    }
}

impl Mapper {
    /// Dynamically flattens an *existing* pair of conventional levels —
    /// the §6.2 extension: "allocating a large page and copying the page
    /// table entries of the lower nodes … into the new flattened node.
    /// The upper node entry can then be updated to point to the
    /// flattened node."
    ///
    /// `top` names the upper level of the pair to merge (e.g.
    /// [`Level::L3`] merges the L3 node on `va`'s path with its L2
    /// children); `va` selects which node. Large mappings found in the
    /// merged node are replicated per §3.4. On success the replaced
    /// 4 KB nodes are returned to `alloc`.
    ///
    /// # Errors
    ///
    /// See [`PromoteError`]; on any error the table is unchanged.
    pub fn promote(
        &mut self,
        store: &mut FrameStore,
        alloc: &mut dyn PhysAllocator,
        va: VirtAddr,
        top: Level,
    ) -> Result<(), PromoteError> {
        if top == Level::L1 || top.rank() > self.table.top_level.rank() {
            return Err(PromoteError::BadLevel);
        }

        // Locate the *parent entry* that points at the level-`top` node
        // (or establish that `top` is the root).
        let mut parent_entry: Option<PhysAddr> = None;
        let mut target_base = self.table.root;
        if top != self.table.top_level {
            let mut node_base = self.table.root;
            let mut node_shape = self.table.root_shape;
            let mut pos_top = self.table.top_level;
            loop {
                let depth = node_shape.depth();
                let pos_bottom =
                    Level::from_rank(pos_top.rank() - (depth - 1)).ok_or(PromoteError::BadLevel)?;
                if pos_bottom.rank() <= top.rank() {
                    // The target level is inside this (already merged)
                    // node.
                    return Err(PromoteError::AlreadyFlat);
                }
                let idx = node_index(va, pos_top, depth);
                let entry_pa = node_base.add(idx as u64 * 8);
                let pte = store.read_pte(entry_pa);
                if !pte.is_present() {
                    return Err(PromoteError::NotPresent);
                }
                if pte.is_large() {
                    return Err(PromoteError::LargeMapping);
                }
                if pos_bottom.rank() == top.rank() + 1 {
                    if pte.child_shape() != NodeShape::Conventional {
                        return Err(PromoteError::AlreadyFlat);
                    }
                    parent_entry = Some(entry_pa);
                    target_base = pte.addr();
                    break;
                }
                node_base = pte.addr();
                node_shape = pte.child_shape();
                pos_top = pos_bottom.child().ok_or(PromoteError::BadLevel)?;
            }
        } else if self.table.root_shape != NodeShape::Conventional {
            return Err(PromoteError::AlreadyFlat);
        }

        // Scan the target node: every child pointer must itself be
        // conventional, and collect what to copy before mutating.
        let child_level = top.child().ok_or(PromoteError::BadLevel)?;
        let mut children: Vec<(usize, Pte)> = Vec::new();
        for i in 0..512usize {
            let pte = store.read_pte(target_base.add(i as u64 * 8));
            if !pte.is_present() {
                continue;
            }
            if !pte.is_large() && pte.child_shape() != NodeShape::Conventional {
                return Err(PromoteError::AlreadyFlat);
            }
            children.push((i, pte));
        }

        let flat_base = alloc
            .alloc(PageSize::Size2M)
            .ok_or(PromoteError::AllocFailed)?;

        // Populate the flattened node.
        let mut released_children = 0u64;
        for (i, pte) in &children {
            let base_idx = (*i as u64) << 9;
            if pte.is_large() {
                // §3.4 replication: the large mapping becomes 512
                // next-size-down entries.
                let chunk = child_level.entry_coverage();
                for j in 0..512u64 {
                    let target = pte.addr().add(j * chunk);
                    let entry = if child_level == Level::L1 {
                        Pte::leaf(target)
                    } else {
                        Pte::large(target)
                    };
                    store.write_pte(flat_base.add((base_idx + j) * 8), entry);
                }
                self.census.replicated_entries += 512;
            } else {
                for j in 0..512u64 {
                    let child_entry = store.read_pte(pte.addr().add(j * 8));
                    if child_entry.is_present() {
                        store.write_pte(flat_base.add((base_idx + j) * 8), child_entry);
                    }
                }
                alloc.release(pte.addr(), PageSize::Size4K);
                released_children += 1;
            }
        }

        // Swing the parent pointer (or the root).
        match parent_entry {
            Some(entry_pa) => store.write_pte(entry_pa, Pte::pointer(flat_base, NodeShape::Flat2)),
            None => {
                self.table.root = flat_base;
                self.table.root_shape = NodeShape::Flat2;
            }
        }
        alloc.release(target_base, PageSize::Size4K);

        self.census.flat2_nodes += 1;
        self.census.conventional_nodes = self
            .census
            .conventional_nodes
            .saturating_sub(1 + released_children);
        Ok(())
    }
}

/// Extracts a node-local index: `depth * 9` bits of `va` ending at
/// `pos_top - depth + 1`'s shift.
fn node_index(va: VirtAddr, pos_top: Level, depth: u8) -> usize {
    let bottom = Level::from_rank(pos_top.rank() - (depth - 1)).expect("valid span");
    let width = 9 * depth as u32;
    ((va.raw() >> bottom.index_shift()) & ((1u64 << width) - 1)) as usize
}

/// Tries to allocate a node of `desired` merge depth, degrading one step
/// at a time (1 GB → 2 MB → 4 KB) when the allocator refuses — the
/// paper's graceful fallback (§3.2).
fn alloc_node_with_fallback(
    _store: &mut FrameStore,
    alloc: &mut dyn PhysAllocator,
    desired: u8,
    census: &mut NodeCensus,
) -> Result<(PhysAddr, NodeShape), MapError> {
    let desired = desired.clamp(1, 3);
    let mut depth = desired;
    loop {
        let shape = NodeShape::from_depth(depth).expect("1..=3");
        let size = match shape {
            NodeShape::Conventional => PageSize::Size4K,
            NodeShape::Flat2 => PageSize::Size2M,
            NodeShape::Flat3 => PageSize::Size1G,
        };
        if let Some(base) = alloc.alloc(size) {
            match shape {
                NodeShape::Conventional => census.conventional_nodes += 1,
                NodeShape::Flat2 => census.flat2_nodes += 1,
                NodeShape::Flat3 => census.flat3_nodes += 1,
            }
            if depth < desired {
                census.fallback_nodes += 1;
            }
            return Ok((base, shape));
        }
        if depth == 1 {
            return Err(MapError::AllocFailed);
        }
        depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resolve, BumpAllocator, No2MbAllocator};

    fn setup(layout: Layout) -> (FrameStore, BumpAllocator, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x4000_0000);
        let mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
        (store, alloc, mapper)
    }

    #[test]
    fn conventional_4k_mapping_resolves() {
        let (mut store, mut alloc, mut m) = setup(Layout::conventional4());
        let va = VirtAddr::new(0x7fff_1234_5000);
        let pa = PhysAddr::new(0x1_2345_6000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        let w = resolve(&store, m.table(), va).unwrap();
        assert_eq!(w.pa, pa);
        assert_eq!(w.size, PageSize::Size4K);
        assert_eq!(w.steps.len(), 4);
        // 4 nodes: root + L3 + L2 + L1.
        assert_eq!(m.census().nodes(), 4);
        assert_eq!(m.census().table_bytes(), 4 * 4096);
    }

    #[test]
    fn offset_preserved_through_translation() {
        let (mut store, mut alloc, mut m) = setup(Layout::conventional4());
        let va = VirtAddr::new(0x1000_0000);
        let pa = PhysAddr::new(0x2000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        let w = resolve(&store, m.table(), VirtAddr::new(0x1000_0abc)).unwrap();
        assert_eq!(w.pa.raw(), 0x2000_0abc);
    }

    #[test]
    fn fully_flattened_walk_is_two_steps() {
        let (mut store, mut alloc, mut m) = setup(Layout::flat_l4l3_l2l1());
        let va = VirtAddr::new(0x55_5000_3000);
        let pa = PhysAddr::new(0x8000_4000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        let w = resolve(&store, m.table(), va).unwrap();
        assert_eq!(w.pa, pa);
        assert_eq!(w.steps.len(), 2);
        assert_eq!(m.census().flat2_nodes, 2);
        assert_eq!(m.census().conventional_nodes, 0);
    }

    #[test]
    fn large_2mb_mapping_in_conventional_table() {
        let (mut store, mut alloc, mut m) = setup(Layout::conventional4());
        let va = VirtAddr::new(0x4000_0000);
        let pa = PhysAddr::new(0x8000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size2M,
        )
        .unwrap();
        let probe = VirtAddr::new(0x4000_0000 + 0x12_3456);
        let w = resolve(&store, m.table(), probe).unwrap();
        assert_eq!(w.size, PageSize::Size2M);
        assert_eq!(w.pa.raw(), 0x8000_0000 + 0x12_3456);
        assert_eq!(w.steps.len(), 3); // L4, L3, terminal at L2
    }

    #[test]
    fn large_2mb_in_flattened_l2l1_replicates_512_entries() {
        let (mut store, mut alloc, mut m) = setup(Layout::flat_l4l3_l2l1());
        let va = VirtAddr::new(0x4000_0000);
        let pa = PhysAddr::new(0x8000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size2M,
        )
        .unwrap();
        assert_eq!(m.census().replicated_entries, 512);
        // Every 4 KB chunk resolves individually to the right place.
        for chunk in [0u64, 1, 255, 511] {
            let w = resolve(
                &store,
                m.table(),
                VirtAddr::new(0x4000_0000 + chunk * 4096 + 7),
            )
            .unwrap();
            assert_eq!(w.pa.raw(), 0x8000_0000 + chunk * 4096 + 7);
            assert_eq!(w.size, PageSize::Size4K, "replicas are 4 KB leaves");
            assert_eq!(w.steps.len(), 2);
        }
    }

    #[test]
    fn nf_region_keeps_l2_conventional_for_2mb_pages() {
        let (mut store, mut alloc, mut m) = setup(Layout::flat_l4l3_l2l1());
        let mut nf = NfRegions::new();
        let va = VirtAddr::new(0x8000_0000);
        nf.mark(va);
        assert!(nf.is_marked(VirtAddr::new(0x8000_0000 + 123)));
        assert!(!nf.is_marked(VirtAddr::new(0x4000_0000)));

        let pa = PhysAddr::new(0x10_0000_0000);
        m.map(&mut store, &mut alloc, &nf, va, pa, PageSize::Size2M)
            .unwrap();
        // No replication: the 2 MB page terminates at a real L2 entry.
        assert_eq!(m.census().replicated_entries, 0);
        let w = resolve(&store, m.table(), VirtAddr::new(0x8010_0000)).unwrap();
        assert_eq!(w.size, PageSize::Size2M);
        assert_eq!(w.pa.raw(), 0x10_0010_0000);
        // Walk: flat L4+L3 root, then conventional L2 → 2 steps.
        assert_eq!(w.steps.len(), 2);
    }

    #[test]
    fn graceful_fallback_to_conventional_nodes() {
        let mut store = FrameStore::new();
        let mut alloc = No2MbAllocator(BumpAllocator::new(0x4000_0000));
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::flat_l4l3_l2l1(),
            &FlattenEverywhere,
        )
        .unwrap();
        let va = VirtAddr::new(0x1234_5000);
        let pa = PhysAddr::new(0x9_8765_4000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        // Everything fell back: 4 conventional nodes, 0 flat.
        assert_eq!(m.census().flat2_nodes, 0);
        assert_eq!(m.census().conventional_nodes, 4);
        // Exactly the two *group heads* (root L4+L3, and L2+L1) wanted to
        // be flat and fell back; the L3/L1 nodes are the conventional
        // remainders of the split groups.
        assert_eq!(m.census().fallback_nodes, 2);
        let w = resolve(&store, m.table(), va).unwrap();
        assert_eq!(w.pa, pa);
        assert_eq!(w.steps.len(), 4, "fallback produces a conventional walk");
    }

    #[test]
    fn mixed_fallback_mid_group() {
        // Allocator that allows exactly one 2MB allocation (the root),
        // forcing the L2+L1 group to fall back while L4+L3 stays flat.
        struct OneFlat {
            inner: BumpAllocator,
            large_left: u32,
        }
        impl PhysAllocator for OneFlat {
            fn alloc(&mut self, size: PageSize) -> Option<PhysAddr> {
                if size > PageSize::Size4K {
                    if self.large_left == 0 {
                        return None;
                    }
                    self.large_left -= 1;
                }
                self.inner.alloc(size)
            }
        }
        let mut store = FrameStore::new();
        let mut alloc = OneFlat {
            inner: BumpAllocator::new(0x4000_0000),
            large_left: 1,
        };
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::flat_l4l3_l2l1(),
            &FlattenEverywhere,
        )
        .unwrap();
        let va = VirtAddr::new(0x7700_0000);
        let pa = PhysAddr::new(0x12_0000_1000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        assert_eq!(m.census().flat2_nodes, 1);
        assert_eq!(m.census().conventional_nodes, 2, "L2 and L1 fell back");
        let w = resolve(&store, m.table(), va).unwrap();
        assert_eq!(w.pa, pa);
        assert_eq!(w.steps.len(), 3, "flat root + L2 + L1");
    }

    #[test]
    fn conflict_and_misalignment_detected() {
        let (mut store, mut alloc, mut m) = setup(Layout::conventional4());
        let va = VirtAddr::new(0x1000_0000);
        let pa = PhysAddr::new(0x2000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size4K,
        )
        .unwrap();
        assert_eq!(
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                va,
                pa,
                PageSize::Size4K
            ),
            Err(MapError::Conflict)
        );
        assert_eq!(
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x123),
                pa,
                PageSize::Size4K
            ),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn one_gig_page_terminates_at_l3() {
        let (mut store, mut alloc, mut m) = setup(Layout::conventional4());
        let va = VirtAddr::new(0x40_0000_0000);
        let pa = PhysAddr::new(0x80_0000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size1G,
        )
        .unwrap();
        let w = resolve(&store, m.table(), VirtAddr::new(0x40_3FFF_FFFF)).unwrap();
        assert_eq!(w.size, PageSize::Size1G);
        assert_eq!(w.pa.raw(), 0x80_3FFF_FFFF);
        assert_eq!(w.steps.len(), 2);
    }

    #[test]
    fn one_gig_page_in_flat_l4l3_uses_large_entry_in_flat_node() {
        let (mut store, mut alloc, mut m) = setup(Layout::flat_l4l3());
        let va = VirtAddr::new(0x40_0000_0000);
        let pa = PhysAddr::new(0x80_0000_0000);
        m.map(
            &mut store,
            &mut alloc,
            &FlattenEverywhere,
            va,
            pa,
            PageSize::Size1G,
        )
        .unwrap();
        let w = resolve(&store, m.table(), va.add(0x1000)).unwrap();
        assert_eq!(w.size, PageSize::Size1G);
        assert_eq!(
            w.steps.len(),
            1,
            "single access: terminal inside the flat root"
        );
        assert_eq!(m.census().replicated_entries, 0);
    }

    #[test]
    fn dense_region_page_table_size_matches_paper_scale() {
        // Paper §1: an 8 GB application has ≈16 MB of leaf page table —
        // 4-level: ~4106 nodes of 4 KB; flattened: nine 2 MB nodes.
        // Scale down 64x (128 MB of 4 KB mappings) to keep the test fast.
        let footprint: u64 = 128 << 20;
        for (layout, expect_flat) in [
            (Layout::conventional4(), false),
            (Layout::flat_l4l3_l2l1(), true),
        ] {
            let (mut store, mut alloc, mut m) = setup(layout);
            let base = 0x10_0000_0000u64;
            let mut pa = 0x20_0000_0000u64;
            let mut off = 0;
            while off < footprint {
                m.map(
                    &mut store,
                    &mut alloc,
                    &FlattenEverywhere,
                    VirtAddr::new(base + off),
                    PhysAddr::new(pa),
                    PageSize::Size4K,
                )
                .unwrap();
                pa += 4096;
                off += 4096;
            }
            let c = m.census();
            if expect_flat {
                // One flat root (L4+L3) + one flat leaf node (covers 1 GB
                // of VA, so the 128 MB fits in one).
                assert_eq!(c.flat2_nodes, 2, "{c:?}");
                assert_eq!(c.conventional_nodes, 0);
            } else {
                // root + 1 L3 + 1 L2 + 64 L1 nodes
                assert_eq!(c.conventional_nodes, 3 + 64, "{c:?}");
            }
        }
    }
}
