//! Process-lifetime, content-keyed result cache for finished grid
//! cells, layered **above** the `flatwalk_sim::setup` cache: setup
//! caching removes redundant address-space construction, this cache
//! removes redundant *simulation* — a repeat of an already-answered
//! cell is served in microseconds from memory, with the rendered
//! report JSON reused byte-for-byte (no re-simulation, no
//! re-serialization).
//!
//! Keys are pure content: the cell's workload, translation config,
//! scenario and options (via their `Debug` forms, which round-trip
//! every field including the f64 knobs) plus the active fault-plan
//! signature. Two cells with equal keys are the same deterministic
//! computation, so a hit is exact by construction. Poison profiles are
//! the one grid-*position*-dependent fault (they target `(index,
//! total)`), so any key formed under an active fault plan also carries
//! the cell's grid position.
//!
//! The **read path is lock-free**: the key→entry index is a
//! [`flatwalk_sync::SwapMap`] (epoch-style snapshot swaps), and a hit
//! refreshes its LRU recency with one relaxed atomic store — no
//! `Mutex` anywhere between a request and its cached bytes. Writers
//! (insert + eviction) serialize on one mutex; an insert follows a
//! full cell simulation, so its clone-and-swap cost is noise.
//!
//! The cache is bounded by an approximate byte budget
//! (`FLATWALK_RESULT_CACHE_MB`, default 64 MB) with LRU eviction
//! (approximate under concurrency: a hit that races the eviction scan
//! may refresh a victim too late — it then simply re-enters on the
//! next miss). Failed cells are never cached: a failure under retries
//! is not content-deterministic the way a finished report is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flatwalk_sim::runner::Cell;
use flatwalk_sync::SwapMap;

/// A finished, cacheable cell execution.
#[derive(Debug, Clone)]
pub struct CachedCell {
    /// Rendered `SimReport::to_json()` bytes (shared, never re-built).
    pub report_json: Arc<str>,
    /// Nanoseconds the original execution spent building.
    pub setup_nanos: u64,
    /// Nanoseconds the original execution spent simulating.
    pub run_nanos: u64,
    /// Failed attempts before the original execution succeeded.
    pub retries: u32,
}

impl CachedCell {
    fn cost_bytes(&self, key_len: usize) -> u64 {
        // Key + report text dominate; the fixed fields are noise but
        // keep zero-length entries from being free.
        (key_len + self.report_json.len() + 64) as u64
    }
}

/// The content key of one cell under the active fault plan.
///
/// `index`/`total` are folded in only when a fault plan is active
/// (signature ≠ 0): poison faults select their victim by grid
/// position, so position becomes part of the computation's identity.
/// Fault-free cells stay position-independent — the same cell content
/// hits the same entry from any grid, any index.
pub fn cell_key(cell: &Cell, plan_signature: u64, index: usize, total: usize) -> String {
    let mut key = format!(
        "{:?}|{:?}|{:?}|{:?}|{:#018x}",
        cell.workload, cell.config, cell.scenario, cell.opts, plan_signature
    );
    // Rival cells run a different computation under the same
    // workload/config/options: fold the kind (pure data — the runner fn
    // is determined by it) into the key. Native cells keep their
    // pre-rival keys byte-identical.
    if let Some((kind, _)) = cell.rival {
        key.push_str(&format!("|rival:{kind:?}"));
    }
    if plan_signature != 0 {
        key.push_str(&format!("|{index}/{total}"));
    }
    key
}

/// One resident entry: immutable value, atomically refreshed recency.
#[derive(Debug)]
struct Entry {
    value: CachedCell,
    cost: u64,
    /// Monotone use tick for LRU ordering; a hit stores the current
    /// tick with a relaxed atomic — no lock on the read path.
    last_used: AtomicU64,
}

/// An LRU-by-bytes map from [`cell_key`] to [`CachedCell`] with
/// lock-free lookups.
#[derive(Debug)]
pub struct ResultCache {
    map: SwapMap<String, Arc<Entry>>,
    tick: AtomicU64,
    bytes: AtomicU64,
    evicted: AtomicU64,
    /// Serializes insert + eviction (byte accounting); never taken by
    /// [`ResultCache::get`].
    write: Mutex<()>,
    budget_bytes: u64,
}

impl ResultCache {
    /// A cache bounded to roughly `budget_bytes` of key + report text.
    pub fn new(budget_bytes: u64) -> ResultCache {
        ResultCache {
            map: SwapMap::new(),
            tick: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            write: Mutex::new(()),
            budget_bytes,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Lock-free: a
    /// snapshot probe plus one relaxed store.
    pub fn get(&self, key: &str) -> Option<CachedCell> {
        // SwapMap keys by `String`; borrow-form lookup would need the
        // unstable raw-entry API, and serve's keys are built as owned
        // Strings anyway.
        let entry = self.map.get(&key.to_string())?;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries until the budget holds again. A value larger than the
    /// whole budget is admitted alone — serving one oversized grid cell
    /// from cache still beats re-simulating it.
    pub fn insert(&self, key: String, value: CachedCell) {
        let _write = self.write.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: write path
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let cost = value.cost_bytes(key.len());
        let entry = Arc::new(Entry {
            value,
            cost,
            last_used: AtomicU64::new(tick),
        });
        if let Some(old) = self.map.get(&key) {
            self.bytes.fetch_sub(old.cost, Ordering::Relaxed);
        }
        self.map.insert(key, entry);
        self.bytes.fetch_add(cost, Ordering::Relaxed);
        while self.bytes.load(Ordering::Relaxed) > self.budget_bytes && self.map.len() > 1 {
            // Coldest entry across the current snapshots (exact while
            // the write lock serializes mutation; concurrent hits can
            // only make a victim look *colder* than it just became).
            let victim = self.map.fold(None::<(String, u64)>, |acc, snap| {
                snap.iter().fold(acc, |acc, (k, e)| {
                    let used = e.last_used.load(Ordering::Relaxed);
                    match &acc {
                        Some((_, best)) if *best <= used => acc,
                        _ => Some((k.clone(), used)),
                    }
                })
            });
            let Some((victim, _)) = victim else { break };
            if let Some(old) = self.map.get(&victim) {
                self.map.remove(&victim);
                self.bytes.fetch_sub(old.cost, Ordering::Relaxed);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(report: &str) -> CachedCell {
        CachedCell {
            report_json: Arc::from(report),
            setup_nanos: 1,
            run_nanos: 2,
            retries: 0,
        }
    }

    #[test]
    fn hit_returns_the_stored_value() {
        let cache = ResultCache::new(1 << 20);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), cell("{\"a\":1}"));
        let hit = cache.get("k").unwrap();
        assert_eq!(&*hit.report_json, "{\"a\":1}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Budget fits two entries (~1/4 KB each with overhead), not
        // three.
        let payload = "x".repeat(200);
        let budget = 2 * (1 + payload.len() + 64) as u64;
        let cache = ResultCache::new(budget);
        cache.insert("a".into(), cell(&payload));
        cache.insert("b".into(), cell(&payload));
        assert!(cache.get("a").is_some(), "refresh a; b is now coldest");
        cache.insert("c".into(), cell(&payload));
        assert!(cache.get("b").is_none(), "b evicted");
        assert!(cache.get("a").is_some() && cache.get("c").is_some());
        assert_eq!(cache.evicted(), 1);
    }

    #[test]
    fn oversized_value_is_admitted_alone() {
        let cache = ResultCache::new(16);
        cache.insert("big".into(), cell(&"y".repeat(500)));
        assert_eq!(cache.len(), 1, "a single entry may exceed the budget");
        cache.insert("big2".into(), cell(&"y".repeat(500)));
        assert_eq!(cache.len(), 1, "but two may not");
        assert!(cache.get("big2").is_some(), "newest survives");
    }

    #[test]
    fn replacement_updates_byte_accounting() {
        let cache = ResultCache::new(1 << 20);
        cache.insert("k".into(), cell(&"z".repeat(100)));
        let before = cache.bytes();
        cache.insert("k".into(), cell(&"z".repeat(10)));
        assert!(cache.bytes() < before, "smaller replacement shrinks usage");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_fold_in_position_only_under_faults() {
        use flatwalk_bench::Mode;
        let grid = flatwalk_bench::grids::sec71_pwc(Mode::Quick, &Mode::Quick.server_options());
        let c = &grid.cells[0];
        assert_eq!(cell_key(c, 0, 0, 9), cell_key(c, 0, 5, 9));
        assert_ne!(cell_key(c, 0xabc, 0, 9), cell_key(c, 0xabc, 5, 9));
        assert_ne!(cell_key(c, 0, 0, 9), cell_key(c, 0xabc, 0, 9));
        assert_ne!(
            cell_key(&grid.cells[1], 0, 0, 9),
            cell_key(c, 0, 0, 9),
            "different cell content, different key"
        );
    }

    #[test]
    fn rival_kind_folds_into_keys() {
        use flatwalk_bench::Mode;
        use flatwalk_sim::RivalKind;
        fn dummy(
            _cell: &Cell,
            _kind: RivalKind,
        ) -> Result<flatwalk_sim::SimReport, flatwalk_sim::SimError> {
            unreachable!("key test never runs the cell")
        }
        let grid = flatwalk_bench::grids::sec71_pwc(Mode::Quick, &Mode::Quick.server_options());
        let native = grid.cells[0].clone();
        let mut victima = native.clone();
        victima.rival = Some((RivalKind::Victima, dummy));
        let mut mitosis = native.clone();
        mitosis.rival = Some((RivalKind::Mitosis { replicate: true }, dummy));
        let mut numa_base = native.clone();
        numa_base.rival = Some((RivalKind::Mitosis { replicate: false }, dummy));
        let native_key = cell_key(&native, 0, 0, 9);
        let victima_key = cell_key(&victima, 0, 0, 9);
        let mitosis_key = cell_key(&mitosis, 0, 0, 9);
        assert_ne!(native_key, victima_key);
        assert_ne!(victima_key, mitosis_key);
        assert_ne!(mitosis_key, cell_key(&numa_base, 0, 0, 9));
        assert!(
            !native_key.contains("rival"),
            "native keys stay byte-identical to pre-rival keys"
        );
    }

    /// Stress loop: readers hammer lock-free `get` while inserts churn
    /// generations and evictions; every hit must return an intact
    /// payload for its key.
    #[test]
    fn concurrent_reads_survive_insert_and_eviction_churn() {
        let payload = "p".repeat(100);
        let budget = 8 * (2 + payload.len() + 64) as u64;
        let cache = std::sync::Arc::new(ResultCache::new(budget));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..16u64 {
                            if let Some(hit) = cache.get(&format!("k{k}")) {
                                assert!(hit.report_json.starts_with(&format!("{k}:")));
                            }
                        }
                    }
                })
            })
            .collect();
        for round in 0..200u64 {
            let k = round % 16;
            cache.insert(format!("k{k}"), cell(&format!("{k}:{payload}")));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(cache.evicted() > 0, "budget forces evictions during churn");
    }
}
