//! Blocking client for the `flatwalk-serve-v1` protocol, used by the
//! `flatwalk-client` binary and the end-to-end tests.
//!
//! A [`Connection`] is one stream to the server (TCP loopback or Unix
//! socket). Requests are written as single lines; replies are read
//! back line-by-line — [`Connection::request`] for one-reply ops,
//! [`Connection::recv_line`] to drain a `submit … "stream":true` event
//! stream.
//!
//! [`Backoff`] supplies the retry schedule for reconnects and
//! idempotent resubmits: exponential growth with deterministic
//! SplitMix64 jitter, so two clients started together do not hammer a
//! recovering server in lockstep.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

/// Jittered exponential backoff schedule.
///
/// Delay for attempt `n` (0-based) is `base × 2ⁿ` capped at `cap`,
/// then jittered to 50–100% of that value by a SplitMix64 stream
/// seeded per-process — deterministic within one client, decorrelated
/// across clients.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, capped at
    /// `cap`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The default reconnect schedule: 50 ms → 2 s, seeded from the
    /// process id.
    pub fn reconnect() -> Backoff {
        Backoff::new(
            Duration::from_millis(50),
            Duration::from_secs(2),
            u64::from(std::process::id()),
        )
    }

    /// Attempts handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        // SplitMix64 step for the jitter stream.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let exp = self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let full = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .as_nanos() as u64;
        // Jitter into [full/2, full].
        let jittered = full / 2 + z % (full / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Sleeps for the next delay in the schedule.
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

/// Either local stream transport.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One open connection to a flatwalk-serve daemon.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Connection {
    fn from_stream(stream: Stream) -> std::io::Result<Connection> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Connects over TCP, e.g. `"127.0.0.1:4641"`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Connection> {
        Connection::from_stream(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    #[cfg(unix)]
    pub fn connect_uds(path: &Path) -> std::io::Result<Connection> {
        Connection::from_stream(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next reply line; `None` on server-side EOF.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Sends one request and reads its single reply line.
    ///
    /// # Errors
    ///
    /// Write/read failures, or an unexpected EOF before the reply.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}

/// Runs `connect` up to `tries` times, sleeping the backoff schedule
/// between failures — the reconnect loop for clients riding out a
/// server restart.
///
/// # Errors
///
/// The last connect error once every attempt failed.
pub fn connect_with_retry<F>(
    mut connect: F,
    tries: u32,
    backoff: &mut Backoff,
) -> std::io::Result<Connection>
where
    F: FnMut() -> std::io::Result<Connection>,
{
    let tries = tries.max(1);
    let mut last = None;
    for attempt in 0..tries {
        match connect() {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < tries {
                    backoff.sleep();
                }
            }
        }
    }
    Err(last.expect("loop ran at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_jittered_and_caps() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut b = Backoff::new(base, cap, 7);
        let first = b.next_delay();
        assert!(first >= base / 2 && first <= base, "{first:?}");
        for _ in 0..20 {
            let d = b.next_delay();
            assert!(d >= base / 2 && d <= cap, "{d:?}");
        }
        // Deep into the schedule every delay sits in the cap's window.
        let late = b.next_delay();
        assert!(late >= cap / 2 && late <= cap, "{late:?}");
        assert_eq!(b.attempts(), 22);

        // Same seed, same schedule; different seed, different jitter.
        let seq = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(base, cap, seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn connect_with_retry_gives_up_with_the_last_error() {
        let mut calls = 0;
        let mut backoff = Backoff::new(Duration::from_micros(1), Duration::from_micros(2), 1);
        let err = connect_with_retry(
            || {
                calls += 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "nope",
                ))
            },
            3,
            &mut backoff,
        )
        .expect_err("never succeeds");
        assert_eq!(calls, 3);
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }
}
