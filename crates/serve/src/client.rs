//! Blocking client for the `flatwalk-serve-v1` protocol, used by the
//! `flatwalk-client` binary and the end-to-end tests.
//!
//! A [`Connection`] is one stream to the server (TCP loopback or Unix
//! socket). Requests are written as single lines; replies are read
//! back line-by-line — [`Connection::request`] for one-reply ops,
//! [`Connection::recv_line`] to drain a `submit … "stream":true` event
//! stream.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

/// Either local stream transport.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One open connection to a flatwalk-serve daemon.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Connection {
    fn from_stream(stream: Stream) -> std::io::Result<Connection> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Connects over TCP, e.g. `"127.0.0.1:4641"`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Connection> {
        Connection::from_stream(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    #[cfg(unix)]
    pub fn connect_uds(path: &Path) -> std::io::Result<Connection> {
        Connection::from_stream(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next reply line; `None` on server-side EOF.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Sends one request and reads its single reply line.
    ///
    /// # Errors
    ///
    /// Write/read failures, or an unexpected EOF before the reply.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}
