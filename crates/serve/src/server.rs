//! The resident experiment service: listeners, bounded job queue,
//! worker pool with supervision, and the per-cell
//! cache/store/coalesce execution path.
//!
//! Life of a `submit`:
//!
//! 1. A connection thread parses the request and calls
//!    [`ServerInner::submit`]. Draining servers reject with `draining`;
//!    a queue at `queue_depth` rejects with `overloaded` (backpressure
//!    is explicit, never a silent hang). A submit carrying a
//!    `submit_key` the server already knows attaches to the existing
//!    job instead of enqueueing a duplicate (idempotent resubmit:
//!    already-emitted cell events are replayed to the new subscriber).
//!    Admission control sheds the rest fast: when the predicted queue
//!    wait (queue length × EWMA job duration ÷ workers) exceeds the
//!    job's `deadline_ms` or the configured SLO, the reply is an
//!    immediate `overloaded` instead of a doomed enqueue.
//! 2. A worker pops the job and fans its cells across the
//!    work-stealing scheduler (`FLATWALK_JOB_THREADS`, default: the
//!    worker count), each through [`ServerInner::execute_cell`]:
//!    result-cache lookup → persistent-store lookup → in-flight
//!    coalescing → `runner::run_cell_outcome` (the same fault-domain
//!    entry point the batch binaries use, with the job's fault plan
//!    re-installed as a thread-scoped plan on every pool thread, plus
//!    the job's cancel flag as the ambient scoped cancel so a deadline
//!    stops cells at the next batch boundary). Completed cells are
//!    rendered once, written through to the store, and streamed to
//!    subscribers **in index order** — an emit cursor holds back
//!    out-of-order finishes until their predecessors land.
//! 3. The finished job stays addressable (`status` / `result`) for the
//!    server's lifetime.
//!
//! A supervisor thread watches the worker pool: a worker that panics
//! mid-job is detected, its job re-queued at the front under a
//! `FLATWALK_JOB_RETRIES` budget (already-finished cells keep their
//! records and are not re-executed), and a replacement worker spawned.
//! Jobs whose retry budget is exhausted finish as failed records —
//! never a hang. The same thread runs the stall watchdog
//! (`FLATWALK_JOB_STALL_SECS`) and cancels jobs whose deadline passes
//! mid-run.
//!
//! Metrics semantics: a cell executed here merges its simulation
//! metrics into the process-global registry (via the runner), exactly
//! like a batch run; cache hits and coalesced waits do **not** merge
//! again — the registry counts simulation actually performed, while
//! the `serve.*` counters account for traffic served.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use flatwalk_obs::{metrics, span, trace, Json};
use flatwalk_sim::runner::{self, CancelFlag, Cell, CellOutcome};
use flatwalk_types::stats::LatencyHistogram;

use crate::proto::{self, JobSpec, Request, PROTOCOL};
use crate::rcache::{cell_key, CachedCell, ResultCache};
use crate::store::ResultStore;

/// How often the non-blocking accept loop polls for connections and
/// drain completion.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// How often the supervisor sweeps the worker pool for dead workers,
/// passed deadlines, and stalled jobs.
const SUPERVISE_POLL: Duration = Duration::from_millis(50);

/// Server configuration. Environment knobs (read by [`from_env`]
/// (ServerConfig::from_env)): `FLATWALK_QUEUE_DEPTH` (default 32),
/// `FLATWALK_RESULT_CACHE_MB` (default 64), `FLATWALK_JOB_THREADS`
/// (per-job cell fan-out; default: follow `workers`),
/// `FLATWALK_STORE_DIR` (persistent store root; unset = memory only),
/// `FLATWALK_SLO_MS` (admission SLO; 0 = off), `FLATWALK_JOB_RETRIES`
/// (requeue budget after a worker loss, default 1),
/// `FLATWALK_JOB_STALL_SECS` (stall watchdog, default 600, 0 = off),
/// and `FLATWALK_CHAOS` (enable chaos test hooks).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind a TCP listener on `127.0.0.1:port` (port 0 = ephemeral).
    pub tcp: bool,
    /// TCP port (ignored unless `tcp`).
    pub port: u16,
    /// Optionally bind a Unix socket at this path (removed on exit).
    pub uds: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Threads fanning one job's cells through the work-stealing
    /// scheduler. `0` (the default) follows [`workers`]
    /// (ServerConfig::workers).
    pub job_threads: usize,
    /// Maximum queued (not yet running) jobs before `overloaded`.
    pub queue_depth: usize,
    /// Result-cache byte budget.
    pub cache_bytes: u64,
    /// Root of the persistent result store; `None` = memory only.
    pub store_dir: Option<PathBuf>,
    /// Admission-control SLO in milliseconds: submissions whose
    /// predicted queue wait exceeds it are shed. `0` disables the SLO
    /// (per-job `deadline_ms` still applies).
    pub slo_ms: u64,
    /// Times a job lost to a worker panic is re-queued before it is
    /// finalized as failed.
    pub job_retries: u32,
    /// Seconds without cell progress before the stall watchdog cancels
    /// a running job. `0` disables the watchdog.
    pub stall_secs: u64,
    /// Allow chaos hooks in submissions (test-only fault injection).
    pub chaos: bool,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl ServerConfig {
    /// Defaults plus the environment knobs: TCP on an ephemeral
    /// loopback port, no Unix socket, worker count from
    /// `FLATWALK_THREADS`/available parallelism.
    pub fn from_env() -> ServerConfig {
        ServerConfig {
            tcp: true,
            port: 0,
            uds: None,
            workers: runner::resolve_threads(None),
            job_threads: env_u64("FLATWALK_JOB_THREADS", 0) as usize,
            queue_depth: env_u64("FLATWALK_QUEUE_DEPTH", 32) as usize,
            cache_bytes: env_u64("FLATWALK_RESULT_CACHE_MB", 64) << 20,
            store_dir: std::env::var("FLATWALK_STORE_DIR")
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(PathBuf::from),
            slo_ms: env_u64("FLATWALK_SLO_MS", 0),
            job_retries: env_u64("FLATWALK_JOB_RETRIES", 1) as u32,
            stall_secs: env_u64("FLATWALK_JOB_STALL_SECS", 600),
            chaos: env_u64("FLATWALK_CHAOS", 0) != 0,
        }
    }
}

const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;

fn state_name(state: u8) -> &'static str {
    match state {
        QUEUED => "queued",
        RUNNING => "running",
        _ => "done",
    }
}

/// One submitted job and everything needed to answer queries about it.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (1-based, monotonic).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    labels: Vec<String>,
    cells: Vec<Cell>,
    state: AtomicU8,
    done_cells: AtomicUsize,
    failed_cells: AtomicUsize,
    cached_cells: AtomicUsize,
    coalesced_cells: AtomicUsize,
    executed_cells: AtomicUsize,
    /// Rendered cell records, index-aligned; filled in index order.
    records: Mutex<Vec<Option<String>>>,
    subscribers: Mutex<Vec<Sender<String>>>,
    /// When the job entered the queue (feeds the `serve.queue_wait`
    /// span and the `queue_wait` latency histogram).
    enqueued: Instant,
    /// Per-job cancel flag: fired by the deadline/stall watchdogs (and
    /// drain), observed by running cells at batch boundaries.
    cancel: CancelFlag,
    /// Absolute deadline derived from the submit's `deadline_ms`.
    deadline: Option<Instant>,
    /// Times this job was re-queued after losing its worker.
    requeues: AtomicU32,
    /// Index of the next record to stream, shared across the original
    /// run, any requeued re-run, and late-attaching subscribers.
    /// Lock order is emit_cursor → records → subscribers everywhere.
    emit_cursor: Mutex<usize>,
}

impl Job {
    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Cells served from the result cache (coalesced waits included).
    pub fn cached_cells(&self) -> usize {
        self.cached_cells.load(Ordering::Relaxed)
    }

    /// Cells this job actually simulated.
    pub fn executed_cells(&self) -> usize {
        self.executed_cells.load(Ordering::Relaxed)
    }

    /// Times this job was re-queued after a worker loss.
    pub fn requeues(&self) -> u32 {
        self.requeues.load(Ordering::Relaxed)
    }

    fn broadcast(&self, line: &str) {
        let mut subs = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        subs.retain(|tx| tx.send(line.to_string()).is_ok());
    }
}

/// How one cell request was satisfied.
enum CellData {
    Done {
        value: CachedCell,
        cached: bool,
        coalesced: bool,
    },
    Failed {
        error: String,
        retries: u32,
    },
}

type ExecResult = Result<CachedCell, (String, u32)>;

/// Rendezvous for concurrent requests of the same cell key: the first
/// requester executes, the rest block here and share the outcome.
#[derive(Debug, Default)]
struct InflightSlot {
    done: Mutex<Option<ExecResult>>,
    cv: Condvar,
}

/// Monotonic service counters (reported by `metrics`, mirrored into
/// the global metrics registry as `serve.*`).
#[derive(Debug, Default)]
pub struct Counters {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_rejected: AtomicU64,
    cells_executed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cells_coalesced: AtomicU64,
    /// Resubmits that attached to an existing job via `submit_key`.
    jobs_deduped: AtomicU64,
    /// Submissions shed because predicted wait exceeded `deadline_ms`.
    shed_deadline: AtomicU64,
    /// Submissions shed because predicted wait exceeded the SLO.
    shed_slo: AtomicU64,
    /// Jobs cancelled because their deadline passed after acceptance.
    shed_late: AtomicU64,
    /// Jobs re-queued after their worker panicked.
    jobs_requeued: AtomicU64,
    /// Jobs finalized as failed after exhausting the requeue budget.
    jobs_lost: AtomicU64,
    /// Jobs cancelled by the stall watchdog.
    jobs_stalled: AtomicU64,
    /// Worker threads that died to a panic.
    worker_panics: AtomicU64,
    /// Replacement workers spawned by the supervisor.
    workers_respawned: AtomicU64,
}

/// Shared state of a running server.
#[derive(Debug)]
pub struct ServerInner {
    config: ServerConfig,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_job: AtomicU64,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    cancel: CancelFlag,
    cache: ResultCache,
    /// Disk-backed store beneath the memory cache; `None` runs memory
    /// only (no `store_dir`, or the directory failed to open).
    store: Option<ResultStore>,
    inflight_cells: Mutex<HashMap<String, Arc<InflightSlot>>>,
    /// `submit_key` → job id, for idempotent resubmits.
    submit_keys: Mutex<HashMap<String, u64>>,
    /// Exponentially weighted moving average of job wall time in
    /// nanoseconds (0 until the first job completes); feeds the
    /// predicted-queue-wait admission check.
    ewma_job_nanos: AtomicU64,
    counters: Counters,
    /// Wall-clock latency histograms, one per request op (plus
    /// `queue_wait` for submit→run delay), feeding the `metrics`
    /// reply's percentile table and the Prometheus summary.
    req_stats: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
}

impl ServerInner {
    fn new(config: ServerConfig) -> ServerInner {
        let cache = ResultCache::new(config.cache_bytes);
        let store = config.store_dir.as_ref().and_then(|dir| {
            match ResultStore::open(dir) {
                Ok(store) => {
                    metrics::gauge_global("store.entries", store.len() as f64);
                    Some(store)
                }
                Err(e) => {
                    // A broken store directory must not take the
                    // service down; run memory-only and say so.
                    eprintln!(
                        "flatwalk-serve: store {}: {e}; running memory-only",
                        dir.display()
                    );
                    None
                }
            }
        });
        ServerInner {
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            cancel: CancelFlag::new(),
            cache,
            store,
            inflight_cells: Mutex::new(HashMap::new()),
            submit_keys: Mutex::new(HashMap::new()),
            ewma_job_nanos: AtomicU64::new(0),
            counters: Counters::default(),
            req_stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one request's wall-clock handle time under its op name.
    fn note_request(&self, op: &'static str, nanos: u64) {
        self.req_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(op)
            .or_default()
            .record(nanos);
    }

    /// The configuration this server was spawned with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether the server is draining (rejecting new submissions).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Whether draining has finished: nothing queued, nothing running.
    pub fn drained(&self) -> bool {
        self.draining()
            && self.in_flight.load(Ordering::Relaxed) == 0
            && self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
    }

    /// Starts draining: in-flight and queued jobs finish, new
    /// submissions are rejected with `draining`, workers and listeners
    /// exit once idle.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
        trace::emit_serve("drain", 0, "");
    }

    /// Forces a fast drain: begins draining, cancels cells that have
    /// not started yet (they complete as failed `cancelled` records),
    /// and fires every unfinished job's cancel flag so running cells
    /// stop at their next batch boundary.
    pub fn cancel_remaining(&self) {
        self.cancel.cancel();
        for job in self.jobs.lock().unwrap_or_else(|e| e.into_inner()).values() {
            if job.state.load(Ordering::Relaxed) != DONE {
                job.cancel.cancel();
            }
        }
        self.begin_drain();
    }

    /// The disk-backed result store, when one is open.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Predicted queue wait for a newly submitted job, in nanoseconds:
    /// jobs already queued × EWMA job duration ÷ workers. Zero until
    /// the first job completes (no data — admit everything).
    fn predicted_wait_nanos(&self, queued: usize) -> u64 {
        let ewma = self.ewma_job_nanos.load(Ordering::Relaxed);
        (queued as u64).saturating_mul(ewma) / self.config.workers.max(1) as u64
    }

    /// Lifetime cache-hit count (coalesced waits not included).
    pub fn cache_hits(&self) -> u64 {
        self.counters.cache_hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of cells actually simulated.
    pub fn cells_executed(&self) -> u64 {
        self.counters.cells_executed.load(Ordering::Relaxed)
    }

    /// Lifetime count of cells that waited on an identical in-flight
    /// execution instead of running their own.
    pub fn cells_coalesced(&self) -> u64 {
        self.counters.cells_coalesced.load(Ordering::Relaxed)
    }

    /// Submits a job, registering `subscriber` for its event stream.
    ///
    /// Returns the job plus `resumed`: `true` when the submit's
    /// `submit_key` matched an existing job and the caller was
    /// attached to it (already-emitted cell events replayed) instead
    /// of a new job being enqueued.
    ///
    /// # Errors
    ///
    /// `(kind, detail)` per the protocol: `draining`, `bad_request`
    /// (unknown grid, disallowed chaos hook), or `overloaded` (queue
    /// at depth, or predicted wait beyond the deadline/SLO).
    pub fn submit(
        self: &Arc<Self>,
        spec: JobSpec,
        subscriber: Option<Sender<String>>,
    ) -> Result<(Arc<Job>, bool), (&'static str, String)> {
        if self.draining() {
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.jobs.rejected", 1);
            return Err(("draining", "server is draining".to_string()));
        }
        if let Some(hook) = &spec.chaos {
            if !self.config.chaos {
                return Err((
                    "bad_request",
                    format!("chaos hook {hook:?} requires the server to run with FLATWALK_CHAOS=1"),
                ));
            }
            if hook != "panic_worker" {
                return Err(("bad_request", format!("unknown chaos hook {hook:?}")));
            }
        }
        // Holding the submit-key map across the whole admission path
        // makes resubmit-vs-create atomic: two racing submits with the
        // same key cannot both enqueue. Lock order: submit_keys →
        // queue.
        let mut keymap = spec.submit_key.as_ref().map(|key| {
            (
                key.clone(),
                self.submit_keys.lock().unwrap_or_else(|e| e.into_inner()),
            )
        });
        if let Some((key, map)) = &keymap {
            if let Some(job) = map.get(key).and_then(|&id| self.job(id)) {
                self.counters.jobs_deduped.fetch_add(1, Ordering::Relaxed);
                metrics::add_global("serve.jobs.deduped", 1);
                trace::emit_serve("dedup", job.id, key);
                if let Some(tx) = subscriber {
                    attach_subscriber(&job, tx);
                }
                return Ok((job, true));
            }
        }
        let grid = spec.resolve().map_err(|e| ("bad_request", e))?;
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.draining() {
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.jobs.rejected", 1);
            return Err(("draining", "server is draining".to_string()));
        }
        if queue.len() >= self.config.queue_depth {
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.jobs.rejected", 1);
            trace::emit_serve("reject", 0, "overloaded");
            return Err((
                "overloaded",
                format!("queue full (depth {})", self.config.queue_depth),
            ));
        }
        // Admission control: reject-fast jobs that would blow their
        // deadline (or the server SLO) just waiting in the queue. A
        // shed is cheaper for everyone than a doomed enqueue.
        let predicted = self.predicted_wait_nanos(queue.len());
        let over = |limit_ms: u64| limit_ms > 0 && predicted > limit_ms.saturating_mul(1_000_000);
        if spec.deadline_ms.is_some_and(over) {
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            self.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.jobs.rejected", 1);
            metrics::add_global("serve.shed.deadline", 1);
            trace::emit_serve("shed", 0, "deadline");
            return Err((
                "overloaded",
                format!(
                    "shed: predicted queue wait ~{}ms exceeds deadline {}ms",
                    predicted / 1_000_000,
                    spec.deadline_ms.unwrap_or(0)
                ),
            ));
        }
        if over(self.config.slo_ms) {
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            self.counters.shed_slo.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.jobs.rejected", 1);
            metrics::add_global("serve.shed.slo", 1);
            trace::emit_serve("shed", 0, "slo");
            return Err((
                "overloaded",
                format!(
                    "shed: predicted queue wait ~{}ms exceeds SLO {}ms",
                    predicted / 1_000_000,
                    self.config.slo_ms
                ),
            ));
        }
        let id = self.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        let cell_count = grid.len();
        let deadline = spec
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let job = Arc::new(Job {
            id,
            spec,
            labels: grid.labels,
            cells: grid.cells,
            state: AtomicU8::new(QUEUED),
            done_cells: AtomicUsize::new(0),
            failed_cells: AtomicUsize::new(0),
            cached_cells: AtomicUsize::new(0),
            coalesced_cells: AtomicUsize::new(0),
            executed_cells: AtomicUsize::new(0),
            records: Mutex::new(vec![None; cell_count]),
            subscribers: Mutex::new(subscriber.into_iter().collect()),
            enqueued: Instant::now(),
            cancel: CancelFlag::new(),
            deadline,
            requeues: AtomicU32::new(0),
            emit_cursor: Mutex::new(0),
        });
        if let Some((key, map)) = keymap.as_mut() {
            map.insert(key.clone(), id);
        }
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        drop(queue);
        drop(keymap);
        self.queue_cv.notify_one();
        self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("serve.jobs.submitted", 1);
        trace::emit_serve("submit", id, &job.spec.grid);
        Ok((job, false))
    }

    /// Looks a job up by id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Runs one cell through cache → coalesce → execute.
    fn execute_cell(&self, job_id: u64, index: usize, total: usize, cell: &Cell) -> CellData {
        let signature = flatwalk_faults::signature_active();
        let key = cell_key(cell, signature, index, total);
        if let Some(hit) = self.cache.get(&key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.cache.hits", 1);
            trace::emit_serve("cache_hit", job_id, &key[..key.len().min(80)]);
            return CellData::Done {
                value: hit,
                cached: true,
                coalesced: false,
            };
        }
        // Miss: claim the key or join whoever already claimed it. The
        // cache is re-checked under the map lock — the previous owner
        // may have inserted and released between our lookup and here.
        let (slot, owner) = {
            let mut map = self
                .inflight_cells
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = self.cache.get(&key) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                metrics::add_global("serve.cache.hits", 1);
                return CellData::Done {
                    value: hit,
                    cached: true,
                    coalesced: false,
                };
            }
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(InflightSlot::default());
                    map.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !owner {
            self.counters
                .cells_coalesced
                .fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.cells.coalesced", 1);
            trace::emit_serve("coalesced", job_id, &key[..key.len().min(80)]);
            let mut done = slot.done.lock().unwrap_or_else(|e| e.into_inner());
            while done.is_none() {
                done = slot.cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
            return match done.clone().expect("loop exits only when fulfilled") {
                Ok(value) => CellData::Done {
                    value,
                    cached: true,
                    coalesced: true,
                },
                Err((error, retries)) => CellData::Failed { error, retries },
            };
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("serve.cache.misses", 1);
        // Owner: before paying for simulation, check the persistent
        // store — a previous process lifetime may have computed this
        // cell. A hit is promoted into the memory cache and fulfils
        // any coalesced waiters, byte-identical to the original run.
        if let Some(hit) = self.store.as_ref().and_then(|s| s.get(&key)) {
            self.cache.insert(key.clone(), hit.clone());
            self.inflight_cells
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            *slot.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(hit.clone()));
            slot.cv.notify_all();
            trace::emit_serve("store_hit", job_id, &key[..key.len().min(80)]);
            return CellData::Done {
                value: hit,
                cached: true,
                coalesced: false,
            };
        }
        let outcome = runner::run_cell_outcome(index, total, cell);
        self.counters.cells_executed.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("serve.cells.executed", 1);
        let result: ExecResult = match outcome {
            CellOutcome::Ok {
                report,
                setup_nanos,
                run_nanos,
                retries,
            } => {
                let value = CachedCell {
                    report_json: Arc::from(report.to_json().to_string()),
                    setup_nanos,
                    run_nanos,
                    retries,
                };
                // Insert before unpublishing the slot so a request
                // arriving in between hits the cache instead of
                // re-executing. Write-through to the persistent store
                // (best-effort: a full disk must not fail the cell).
                self.cache.insert(key.clone(), value.clone());
                if let Some(store) = &self.store {
                    store.put(&key, &value);
                }
                Ok(value)
            }
            CellOutcome::Failed { error, retries } => Err((error, retries)),
        };
        self.inflight_cells
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        *slot.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(result.clone());
        slot.cv.notify_all();
        match result {
            Ok(value) => CellData::Done {
                value,
                cached: false,
                coalesced: false,
            },
            Err((error, retries)) => CellData::Failed { error, retries },
        }
    }

    fn run_job(&self, job: &Arc<Job>) {
        // Queue wait crosses threads (enqueued on the connection
        // thread, dequeued here), so it is a recorded duration rather
        // than a scoped guard.
        let waited = job.enqueued.elapsed().as_nanos() as u64;
        span::record("serve.queue_wait", waited);
        self.note_request("queue_wait", waited);
        let _run_span = span::enter("serve.run");
        let run_started = Instant::now();
        job.state.store(RUNNING, Ordering::Relaxed);
        trace::emit_serve("job_start", job.id, &job.spec.grid);
        // Chaos hook: die exactly once, on the first attempt, so the
        // requeued re-run can prove the supervisor's recovery path.
        if job.spec.chaos.as_deref() == Some("panic_worker") && job.requeues() == 0 {
            trace::emit_serve("chaos_panic", job.id, "panic_worker");
            panic!("chaos: injected worker panic (job {})", job.id);
        }
        // A job whose deadline passed while it waited in the queue is
        // not worth starting: fire its cancel flag so every cell
        // completes as a fast failed record.
        if job.deadline.is_some_and(|d| Instant::now() >= d) && !job.cancel.is_cancelled() {
            job.cancel.cancel();
            self.counters.shed_late.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("serve.shed.late", 1);
            trace::emit_serve("shed", job.id, "late");
        }
        let total = job.cells.len();
        // The job's cells fan out through the work-stealing scheduler.
        // Fault plans are *thread*-scoped, so every per-cell closure
        // re-installs the job's plan on whichever pool thread runs it —
        // `scoped(None)` still pushes a scope, so a job without faults
        // is fault-free even if this process ever had a global plan
        // installed. The job's cancel flag rides along the same way,
        // as the ambient scoped cancel: a deadline or stall firing
        // mid-cell stops the simulation at the next batch boundary.
        // Subscribers still see cell events in index order: each
        // finished cell parks its record, then the emit cursor flushes
        // every consecutive completed record. A requeued job (worker
        // lost mid-run) skips cells that already have records — they
        // were executed, streamed, and counted by the first attempt.
        let plan = job.spec.faults;
        let fan = match self.config.job_threads {
            0 => self.config.workers,
            n => n,
        };
        let progress = runner::Progress::quiet(total);
        runner::run_ordered(
            (0..total).collect(),
            fan,
            &progress,
            |_| 1,
            |index: usize| {
                if job.records.lock().unwrap_or_else(|e| e.into_inner())[index].is_some() {
                    return;
                }
                let _plan_scope = flatwalk_faults::scoped(plan);
                let _cancel_scope = runner::scoped_cancel(job.cancel.clone());
                let data = if self.cancel.is_cancelled() || job.cancel.is_cancelled() {
                    CellData::Failed {
                        error: format!("cancelled before start: cell {index} of {total}"),
                        retries: 0,
                    }
                } else {
                    self.execute_cell(job.id, index, total, &job.cells[index])
                };
                match &data {
                    CellData::Done {
                        cached, coalesced, ..
                    } => {
                        if *cached {
                            job.cached_cells.fetch_add(1, Ordering::Relaxed);
                        } else {
                            job.executed_cells.fetch_add(1, Ordering::Relaxed);
                        }
                        if *coalesced {
                            job.coalesced_cells.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    CellData::Failed { .. } => {
                        job.failed_cells.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let record = render_record(job, index, &data);
                job.records.lock().unwrap_or_else(|e| e.into_inner())[index] = Some(record);
                job.done_cells.fetch_add(1, Ordering::Relaxed);
                // Flush the in-order prefix this completion unblocked.
                // Lock order is emit_cursor → records everywhere; the
                // store above released `records` first, so a racing
                // flusher either emits our record for us or leaves the
                // cursor parked on it for this call.
                let _splice_span = span::enter("serve.splice");
                flush_records(job);
            },
        );
        self.finish_job(job, Some(run_started.elapsed().as_nanos() as u64));
    }

    /// Marks `job` done, streams the final events, and (for measured
    /// runs) folds the duration into the EWMA feeding admission
    /// control. Shared by the normal completion path and supervisor
    /// finalization (which passes `None` — a lost job's wall time says
    /// nothing about healthy job duration).
    fn finish_job(&self, job: &Arc<Job>, run_nanos: Option<u64>) {
        // Flush any tail the per-cell closures did not (a requeued job
        // whose every remaining cell was skipped emits nothing), then
        // set DONE while holding the cursor: a late subscriber holds
        // the same lock while it checks the state, so it either sees
        // RUNNING and registers before our done broadcast, or sees
        // DONE and synthesizes its own done event.
        flush_records(job);
        {
            let _cursor = job.emit_cursor.lock().unwrap_or_else(|e| e.into_inner());
            job.state.store(DONE, Ordering::Relaxed);
        }
        job.broadcast(&done_event_line(job));
        // Closing the channels ends the subscribers' streams.
        job.subscribers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        if let Some(nanos) = run_nanos {
            let _ = self
                .ewma_job_nanos
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                    Some(if old == 0 {
                        nanos
                    } else {
                        (3 * old + nanos) / 4
                    })
                });
        }
        self.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("serve.jobs.completed", 1);
        trace::emit_serve("job_done", job.id, &job.spec.grid);
    }

    /// Supervisor recovery for a job whose worker died mid-run:
    /// re-queue it at the front (already-finished cells keep their
    /// records) while budget remains, otherwise finalize it as failed.
    /// Jobs already cancelled are finalized immediately — a cancelled
    /// re-run could only produce more `cancelled` records.
    fn requeue_or_fail(&self, job: &Arc<Job>) {
        let requeues = job.requeues.fetch_add(1, Ordering::Relaxed) + 1;
        if requeues <= self.config.job_retries && !job.cancel.is_cancelled() {
            job.state.store(QUEUED, Ordering::Relaxed);
            let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_front(Arc::clone(job));
            drop(queue);
            self.queue_cv.notify_one();
            self.counters.jobs_requeued.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("supervisor.jobs.requeued", 1);
            trace::emit_serve("requeue", job.id, &job.spec.grid);
        } else {
            self.finalize_lost(job);
        }
    }

    /// Completes a worker-lost job as failed: every cell without a
    /// record gets a `worker lost` failure, then the job finishes
    /// normally (events stream, queries answer) — never a hang.
    fn finalize_lost(&self, job: &Arc<Job>) {
        {
            let mut records = job.records.lock().unwrap_or_else(|e| e.into_inner());
            for (index, record) in records.iter_mut().enumerate() {
                if record.is_none() {
                    let data = CellData::Failed {
                        error: format!(
                            "worker lost: requeue budget exhausted after {} attempt(s)",
                            job.requeues()
                        ),
                        retries: job.requeues(),
                    };
                    *record = Some(render_record(job, index, &data));
                    job.failed_cells.fetch_add(1, Ordering::Relaxed);
                    job.done_cells.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.jobs_lost.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("supervisor.jobs.lost", 1);
        trace::emit_serve("job_lost", job.id, &job.spec.grid);
        self.finish_job(job, None);
    }

    fn status_line(&self, id: u64) -> String {
        let Some(job) = self.job(id) else {
            return proto::error_line("not_found", &format!("no job {id}"));
        };
        let mut o = Json::obj();
        o.push("ok", true)
            .push("job", id)
            .push("state", state_name(job.state.load(Ordering::Relaxed)))
            .push("grid", job.spec.grid.as_str())
            .push("cells", job.cells.len())
            .push("done_cells", job.done_cells.load(Ordering::Relaxed))
            .push("failed", job.failed_cells.load(Ordering::Relaxed))
            .push("cached", job.cached_cells.load(Ordering::Relaxed))
            .push("coalesced", job.coalesced_cells.load(Ordering::Relaxed))
            .push("executed", job.executed_cells.load(Ordering::Relaxed));
        o.to_string()
    }

    fn result_line(&self, id: u64) -> String {
        let Some(job) = self.job(id) else {
            return proto::error_line("not_found", &format!("no job {id}"));
        };
        let records = job.records.lock().unwrap_or_else(|e| e.into_inner());
        let rendered: Vec<&str> = records.iter().flatten().map(String::as_str).collect();
        let mut prefix = Json::obj();
        prefix
            .push("ok", true)
            .push("job", id)
            .push("state", state_name(job.state.load(Ordering::Relaxed)))
            .push("grid", job.spec.grid.as_str());
        let mut line = prefix.to_string();
        line.pop();
        line.push_str(",\"cells\":[");
        line.push_str(&rendered.join(","));
        line.push_str("]}");
        line
    }

    /// Publishes the live queue-depth / in-flight gauges into the
    /// global registry, so every exposition (JSON and Prometheus) shows
    /// values current as of the scrape.
    fn refresh_gauges(&self) {
        let queue_len = self.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        metrics::gauge_global("serve.queue_len", queue_len as f64);
        metrics::gauge_global(
            "serve.jobs_in_flight",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
    }

    /// Per-op request-latency percentiles as an ordered JSON object:
    /// `{"ping":{"count":N,"p50":…,"p90":…,"p99":…,"p999":…},…}`,
    /// all latencies in nanoseconds.
    fn latency_json(&self) -> Json {
        let stats = self.req_stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut o = Json::obj();
        for (op, h) in stats.iter() {
            let mut e = Json::obj();
            e.push("count", h.count())
                .push("p50", h.p50())
                .push("p90", h.p90())
                .push("p99", h.p99())
                .push("p999", h.p999());
            o.push(op, e);
        }
        o
    }

    /// Pushes the metrics payload fields (`protocol`, `server`,
    /// `latency`, `metrics`) shared by the `metrics` reply and each
    /// `watch` event.
    fn metrics_payload(&self, o: &mut Json) {
        self.refresh_gauges();
        let mut server = Json::obj();
        server
            .push("workers", self.config.workers)
            .push("queue_depth", self.config.queue_depth)
            .push(
                "queue_len",
                self.queue.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .push("jobs_in_flight", self.in_flight.load(Ordering::Relaxed))
            .push(
                "jobs_submitted",
                self.counters.jobs_submitted.load(Ordering::Relaxed),
            )
            .push(
                "jobs_completed",
                self.counters.jobs_completed.load(Ordering::Relaxed),
            )
            .push(
                "jobs_rejected",
                self.counters.jobs_rejected.load(Ordering::Relaxed),
            )
            .push("cells_executed", self.cells_executed())
            .push("cache_hits", self.cache_hits())
            .push(
                "cache_misses",
                self.counters.cache_misses.load(Ordering::Relaxed),
            )
            .push("cells_coalesced", self.cells_coalesced())
            .push("cache_entries", self.cache.len())
            .push("cache_bytes", self.cache.bytes())
            .push("cache_evicted", self.cache.evicted())
            .push(
                "jobs_deduped",
                self.counters.jobs_deduped.load(Ordering::Relaxed),
            )
            .push(
                "shed_deadline",
                self.counters.shed_deadline.load(Ordering::Relaxed),
            )
            .push("shed_slo", self.counters.shed_slo.load(Ordering::Relaxed))
            .push("shed_late", self.counters.shed_late.load(Ordering::Relaxed))
            .push(
                "jobs_requeued",
                self.counters.jobs_requeued.load(Ordering::Relaxed),
            )
            .push("jobs_lost", self.counters.jobs_lost.load(Ordering::Relaxed))
            .push(
                "jobs_stalled",
                self.counters.jobs_stalled.load(Ordering::Relaxed),
            )
            .push(
                "worker_panics",
                self.counters.worker_panics.load(Ordering::Relaxed),
            )
            .push(
                "workers_respawned",
                self.counters.workers_respawned.load(Ordering::Relaxed),
            )
            .push(
                "ewma_job_nanos",
                self.ewma_job_nanos.load(Ordering::Relaxed),
            )
            .push("slo_ms", self.config.slo_ms)
            .push("draining", self.draining());
        if let Some(store) = &self.store {
            let mut s = Json::obj();
            s.push("entries", store.len())
                .push("recovered", store.recovered())
                .push("quarantined", store.quarantined())
                .push("hits", store.hits())
                .push("misses", store.misses())
                .push("writes", store.writes())
                .push("write_errors", store.write_errors());
            server.push("store", s);
        }
        o.push("protocol", PROTOCOL)
            .push("server", server)
            .push("latency", self.latency_json())
            .push("metrics", metrics::global_snapshot().to_json());
    }

    fn metrics_line(&self) -> String {
        let mut o = Json::obj();
        o.push("ok", true);
        self.metrics_payload(&mut o);
        o.to_string()
    }

    /// One `watch` stream event: the metrics payload plus a sequence
    /// number.
    fn watch_event_line(&self, seq: u64) -> String {
        let mut o = Json::obj();
        o.push("ok", true).push("event", "metrics").push("seq", seq);
        self.metrics_payload(&mut o);
        o.to_string()
    }

    /// The full telemetry surface rendered in the Prometheus text
    /// exposition format: the global registry (prefixed `flatwalk_`)
    /// plus a `summary`-typed quantile family per request op.
    fn prometheus_text(&self) -> String {
        self.refresh_gauges();
        let mut text = metrics::global_snapshot().to_prometheus("flatwalk_");
        let stats = self.req_stats.lock().unwrap_or_else(|e| e.into_inner());
        if !stats.is_empty() {
            text.push_str("# TYPE flatwalk_serve_request_latency_nanos summary\n");
            for (op, h) in stats.iter() {
                let op = metrics::sanitize_metric_name(op);
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.9", h.p90()),
                    ("0.99", h.p99()),
                    ("0.999", h.p999()),
                ] {
                    text.push_str(&format!(
                        "flatwalk_serve_request_latency_nanos{{op=\"{op}\",quantile=\"{q}\"}} {v}\n"
                    ));
                }
                text.push_str(&format!(
                    "flatwalk_serve_request_latency_nanos_count{{op=\"{op}\"}} {}\n",
                    h.count()
                ));
            }
        }
        text
    }

    fn prometheus_line(&self) -> String {
        let mut o = Json::obj();
        o.push("ok", true)
            .push("format", "prometheus")
            .push("text", self.prometheus_text());
        o.to_string()
    }
}

/// Renders one `cell` stream event around an already-rendered record.
fn cell_event_line(job_id: u64, record: &str) -> String {
    format!("{{\"ok\":true,\"event\":\"cell\",\"job\":{job_id},\"record\":{record}}}")
}

/// Renders the final `done` stream event for a job.
fn done_event_line(job: &Job) -> String {
    let mut done = Json::obj();
    done.push("ok", true)
        .push("event", "done")
        .push("job", job.id)
        .push("cells", job.cells.len())
        .push("failed", job.failed_cells.load(Ordering::Relaxed))
        .push("cached", job.cached_cells.load(Ordering::Relaxed))
        .push("coalesced", job.coalesced_cells.load(Ordering::Relaxed))
        .push("executed", job.executed_cells.load(Ordering::Relaxed))
        .push("requeues", job.requeues());
    done.to_string()
}

/// Broadcasts every consecutive completed record from the emit cursor
/// onward. Lock order: emit_cursor → records (→ subscribers inside
/// `broadcast`).
fn flush_records(job: &Job) {
    let mut cursor = job.emit_cursor.lock().unwrap_or_else(|e| e.into_inner());
    let records = job.records.lock().unwrap_or_else(|e| e.into_inner());
    while let Some(Some(record)) = records.get(*cursor) {
        job.broadcast(&cell_event_line(job.id, record));
        *cursor += 1;
    }
}

/// Attaches a late subscriber to `job` (idempotent resubmit): replays
/// every already-emitted cell event, then either registers for the
/// rest or — when the job is already done — synthesizes the final
/// `done` event. Holding the emit cursor across replay + registration
/// closes the gap a concurrent flusher could otherwise slip events
/// through.
fn attach_subscriber(job: &Arc<Job>, tx: Sender<String>) {
    let cursor = job.emit_cursor.lock().unwrap_or_else(|e| e.into_inner());
    {
        let records = job.records.lock().unwrap_or_else(|e| e.into_inner());
        for record in records.iter().take(*cursor).flatten() {
            let _ = tx.send(cell_event_line(job.id, record));
        }
    }
    if job.state.load(Ordering::Relaxed) == DONE {
        let _ = tx.send(done_event_line(job));
    } else {
        job.subscribers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tx);
    }
}

/// Renders one cell record. Report bytes come from the cache entry and
/// are spliced in verbatim — byte-identical to `SimReport::to_json()`
/// however many times the cell is served.
fn render_record(job: &Job, index: usize, data: &CellData) -> String {
    let mut o = Json::obj();
    o.push("label", job.spec.grid.as_str())
        .push("index", index)
        .push("cell", job.labels[index].as_str());
    match data {
        CellData::Done {
            value,
            cached,
            coalesced,
        } => {
            o.push("status", if value.retries > 0 { "retried" } else { "ok" });
            if value.retries > 0 {
                o.push("retries", value.retries);
            }
            o.push("cached", *cached)
                .push("coalesced", *coalesced)
                .push("setup_nanos", value.setup_nanos)
                .push("run_nanos", value.run_nanos);
            let mut s = o.to_string();
            s.pop();
            s.push_str(",\"report\":");
            s.push_str(&value.report_json);
            s.push('}');
            s
        }
        CellData::Failed { error, retries } => {
            o.push("status", "failed")
                .push("error", error.as_str())
                .push("retries", *retries)
                .push("cached", false)
                .push("coalesced", false);
            o.to_string()
        }
    }
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Handles one request; returns `false` when the connection should
/// close (write failure). Every request — including a streaming submit
/// or watch, end to end — is timed into the per-op latency histograms
/// and covered by a `serve.request` span.
fn handle_request(inner: &Arc<ServerInner>, line: &str, w: &mut impl Write) -> bool {
    let started = Instant::now();
    let _req_span = span::enter("serve.request");
    let parsed = proto::parse_request(line);
    let op = match &parsed {
        Ok(req) => req.op_name(),
        Err(_) => "bad_request",
    };
    let alive = dispatch_request(inner, parsed, w);
    inner.note_request(op, started.elapsed().as_nanos() as u64);
    alive
}

fn dispatch_request(
    inner: &Arc<ServerInner>,
    parsed: Result<Request, String>,
    w: &mut impl Write,
) -> bool {
    let reply = match parsed {
        Err(e) => proto::error_line("bad_request", &e),
        Ok(Request::Ping) => {
            let mut o = Json::obj();
            o.push("ok", true).push("protocol", PROTOCOL);
            o.to_string()
        }
        Ok(Request::Metrics { prometheus }) => {
            if prometheus {
                inner.prometheus_line()
            } else {
                inner.metrics_line()
            }
        }
        Ok(Request::Watch { interval_ms, count }) => {
            let mut seq = 0u64;
            while count == 0 || seq < count {
                if write_line(w, &inner.watch_event_line(seq)).is_err() {
                    return false;
                }
                seq += 1;
                if (count != 0 && seq >= count) || inner.drained() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(interval_ms));
            }
            let mut o = Json::obj();
            o.push("ok", true)
                .push("event", "done")
                .push("watched", seq);
            return write_line(w, &o.to_string()).is_ok();
        }
        Ok(Request::Status { job }) => inner.status_line(job),
        Ok(Request::Result { job }) => inner.result_line(job),
        Ok(Request::Shutdown) => {
            inner.begin_drain();
            let mut o = Json::obj();
            o.push("ok", true).push("draining", true);
            o.to_string()
        }
        Ok(Request::Submit { spec, stream }) => {
            let (tx, rx) = channel();
            let subscriber = stream.then_some(tx);
            match inner.submit(spec, subscriber) {
                Err((kind, detail)) => proto::error_line(kind, &detail),
                Ok((job, resumed)) => {
                    let mut o = Json::obj();
                    o.push("ok", true)
                        .push("event", "accepted")
                        .push("job", job.id)
                        .push("grid", job.spec.grid.as_str())
                        .push("mode", job.spec.mode_name())
                        .push("cells", job.cells.len())
                        .push("stream", stream);
                    if resumed {
                        o.push("resumed", true);
                    }
                    if write_line(w, &o.to_string()).is_err() {
                        return false;
                    }
                    if stream {
                        for event in rx {
                            if write_line(w, &event).is_err() {
                                return false;
                            }
                        }
                    }
                    return true;
                }
            }
        }
    };
    write_line(w, &reply).is_ok()
}

fn serve_connection(inner: Arc<ServerInner>, reader: impl Read, mut writer: impl Write) {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if !handle_request(&inner, &line, &mut writer) {
            break;
        }
    }
}

/// What a worker is running right now, observable by the supervisor.
/// `Some(job)` from dequeue to completion; a worker that dies by
/// panic leaves its job parked here for the supervisor to recover.
type RunningSlot = Arc<Mutex<Option<Arc<Job>>>>;

fn worker_loop(inner: Arc<ServerInner>, running: RunningSlot) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.in_flight.fetch_add(1, Ordering::Relaxed);
                    break Some(job);
                }
                if inner.draining() {
                    break None;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { break };
        *running.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&job));
        inner.run_job(&job);
        *running.lock().unwrap_or_else(|e| e.into_inner()) = None;
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One supervised worker: its thread handle plus the job it is
/// currently running.
struct WorkerSlot {
    handle: Option<std::thread::JoinHandle<()>>,
    running: RunningSlot,
}

fn spawn_worker(inner: &Arc<ServerInner>) -> WorkerSlot {
    let running: RunningSlot = Arc::new(Mutex::new(None));
    let slot_running = Arc::clone(&running);
    let inner = Arc::clone(inner);
    let handle = std::thread::spawn(move || worker_loop(inner, slot_running));
    WorkerSlot {
        handle: Some(handle),
        running,
    }
}

/// Per-job progress snapshot the stall watchdog compares between
/// sweeps.
struct StallEntry {
    done_cells: usize,
    since: Instant,
}

/// The supervisor: spawns and owns the worker pool, recovers jobs
/// whose worker panicked (decrement in-flight, requeue-or-fail,
/// respawn a replacement), cancels jobs whose deadline passed mid-run,
/// and runs the stall watchdog. Exits — after joining the pool — once
/// the server has drained.
fn supervisor_loop(inner: Arc<ServerInner>) {
    let workers = inner.config.workers.max(1);
    let mut slots: Vec<WorkerSlot> = (0..workers).map(|_| spawn_worker(&inner)).collect();
    let stall_limit = match inner.config.stall_secs {
        0 => None,
        secs => Some(Duration::from_secs(secs)),
    };
    let mut stall: HashMap<u64, StallEntry> = HashMap::new();
    loop {
        std::thread::sleep(SUPERVISE_POLL);
        for slot in &mut slots {
            if !slot.handle.as_ref().is_some_and(|h| h.is_finished()) {
                continue;
            }
            let panicked = slot.handle.take().expect("checked above").join().is_err();
            if !panicked {
                continue; // normal drain exit
            }
            inner.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("supervisor.worker_panics", 1);
            let lost = slot
                .running
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            if let Some(job) = lost {
                // The dead worker never ran its post-job decrement.
                inner.in_flight.fetch_sub(1, Ordering::Relaxed);
                trace::emit_serve("worker_panic", job.id, &job.spec.grid);
                inner.requeue_or_fail(&job);
            } else {
                trace::emit_serve("worker_panic", 0, "idle");
            }
            // Respawn unless the drain already completed: a draining
            // server may still hold the requeued job, and only a live
            // worker can retire it.
            if !inner.drained() {
                *slot = spawn_worker(&inner);
                inner
                    .counters
                    .workers_respawned
                    .fetch_add(1, Ordering::Relaxed);
                metrics::add_global("supervisor.workers_respawned", 1);
            }
        }
        // Deadline + stall watchdogs over whatever is running now.
        let mut live: Vec<u64> = Vec::new();
        for slot in &slots {
            let job = slot
                .running
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            let Some(job) = job else { continue };
            live.push(job.id);
            if job.cancel.is_cancelled() {
                continue;
            }
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                job.cancel.cancel();
                inner.counters.shed_late.fetch_add(1, Ordering::Relaxed);
                metrics::add_global("serve.shed.late", 1);
                trace::emit_serve("deadline_cancel", job.id, &job.spec.grid);
                continue;
            }
            if let Some(limit) = stall_limit {
                let done = job.done_cells.load(Ordering::Relaxed);
                let entry = stall.entry(job.id).or_insert(StallEntry {
                    done_cells: done,
                    since: Instant::now(),
                });
                if done != entry.done_cells {
                    entry.done_cells = done;
                    entry.since = Instant::now();
                } else if entry.since.elapsed() >= limit {
                    job.cancel.cancel();
                    inner.counters.jobs_stalled.fetch_add(1, Ordering::Relaxed);
                    metrics::add_global("supervisor.jobs_stalled", 1);
                    trace::emit_serve("stall_cancel", job.id, &job.spec.grid);
                }
            }
        }
        stall.retain(|id, _| live.contains(id));
        if inner.drained() {
            break;
        }
    }
    for slot in &mut slots {
        if let Some(handle) = slot.handle.take() {
            let _ = handle.join();
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    /// Accepts one connection and spawns its handler thread.
    fn accept_one(&self, inner: &Arc<ServerInner>) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                let reader = stream.try_clone()?;
                let inner = Arc::clone(inner);
                std::thread::spawn(move || serve_connection(inner, reader, stream));
                Ok(())
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                let reader = stream.try_clone()?;
                let inner = Arc::clone(inner);
                std::thread::spawn(move || serve_connection(inner, reader, stream));
                Ok(())
            }
        }
    }
}

fn accept_loop(inner: Arc<ServerInner>, listener: Listener) {
    if let Err(e) = listener.set_nonblocking() {
        eprintln!("flatwalk-serve: cannot poll listener: {e}");
        return;
    }
    loop {
        if inner.drained() {
            break;
        }
        match listener.accept_one(&inner) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                eprintln!("flatwalk-serve: accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// A running server: listeners and workers are live background
/// threads until drain completes.
#[derive(Debug)]
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    addr: Option<SocketAddr>,
    uds: Option<PathBuf>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address, when TCP is enabled.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// The bound Unix-socket path, when one is configured.
    pub fn uds(&self) -> Option<&PathBuf> {
        self.uds.as_ref()
    }

    /// Shared server state (counters, drain control).
    pub fn inner(&self) -> &Arc<ServerInner> {
        &self.inner
    }

    /// Starts draining (see [`ServerInner::begin_drain`]).
    pub fn begin_drain(&self) {
        self.inner.begin_drain();
    }

    /// Fast drain: cancel not-yet-started cells too.
    pub fn cancel_remaining(&self) {
        self.inner.cancel_remaining();
    }

    /// Blocks until drain completes and every service thread has
    /// exited, then removes the Unix socket file. Connection handler
    /// threads are not joined — they end when their peers disconnect.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.uds {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds the configured listeners and spawns the worker pool.
///
/// # Errors
///
/// Propagates listener-bind failures. Configuring neither TCP nor a
/// Unix socket is an invalid-input error.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let mut listeners: Vec<Listener> = Vec::new();
    let mut addr = None;
    if config.tcp {
        let l = TcpListener::bind(("127.0.0.1", config.port))?;
        addr = Some(l.local_addr()?);
        listeners.push(Listener::Tcp(l));
    }
    let mut uds = None;
    #[cfg(unix)]
    if let Some(path) = &config.uds {
        let _ = std::fs::remove_file(path);
        let l = std::os::unix::net::UnixListener::bind(path)?;
        uds = Some(path.clone());
        listeners.push(Listener::Unix(l));
    }
    #[cfg(not(unix))]
    if config.uds.is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "unix sockets are not supported on this platform",
        ));
    }
    if listeners.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "no listener configured (need tcp and/or uds)",
        ));
    }
    let inner = Arc::new(ServerInner::new(config));
    let mut threads = Vec::new();
    for listener in listeners {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || accept_loop(inner, listener)));
    }
    // Workers are spawned (and respawned after panics) by the
    // supervisor, which joins them before exiting itself.
    {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || supervisor_loop(inner)));
    }
    Ok(ServerHandle {
        inner,
        addr,
        uds,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ServerConfig {
        ServerConfig {
            tcp: true,
            port: 0,
            uds: None,
            workers: 2,
            job_threads: 0,
            queue_depth: 4,
            cache_bytes: 1 << 20,
            store_dir: None,
            slo_ms: 0,
            job_retries: 1,
            stall_secs: 0,
            chaos: false,
        }
    }

    #[test]
    fn spawn_binds_ephemeral_port_and_drains_idle() {
        let handle = spawn(test_config()).expect("bind loopback");
        let addr = handle.addr().expect("tcp enabled");
        assert_eq!(addr.ip().to_string(), "127.0.0.1");
        assert_ne!(addr.port(), 0);
        handle.begin_drain();
        handle.wait();
    }

    #[test]
    fn rejects_without_listeners() {
        let config = ServerConfig {
            tcp: false,
            uds: None,
            ..test_config()
        };
        assert!(spawn(config).is_err());
    }

    #[test]
    fn draining_rejects_submissions() {
        let inner = Arc::new(ServerInner::new(test_config()));
        inner.begin_drain();
        let err = inner
            .submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect_err("draining server rejects");
        assert_eq!(err.0, "draining");
    }

    #[test]
    fn zero_depth_queue_reports_overloaded() {
        let config = ServerConfig {
            queue_depth: 0,
            ..test_config()
        };
        let inner = Arc::new(ServerInner::new(config));
        let err = inner
            .submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect_err("zero-depth queue rejects everything");
        assert_eq!(err.0, "overloaded");
        assert_eq!(inner.counters.jobs_rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_grid_is_bad_request() {
        let inner = Arc::new(ServerInner::new(test_config()));
        let err = inner
            .submit(
                JobSpec::new("no_such_grid", flatwalk_bench::Mode::Quick),
                None,
            )
            .expect_err("unknown grid");
        assert_eq!(err.0, "bad_request");
        assert!(err.1.contains("sec71_pwc"), "lists known grids: {}", err.1);
    }

    #[test]
    fn missing_job_queries_are_not_found() {
        let inner = Arc::new(ServerInner::new(test_config()));
        assert!(inner.status_line(42).contains("not_found"));
        assert!(inner.result_line(42).contains("not_found"));
    }

    #[test]
    fn chaos_hooks_are_rejected_unless_enabled() {
        let inner = Arc::new(ServerInner::new(test_config()));
        let mut spec = JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick);
        spec.chaos = Some("panic_worker".to_string());
        let err = inner.submit(spec, None).expect_err("chaos disabled");
        assert_eq!(err.0, "bad_request");
        assert!(err.1.contains("FLATWALK_CHAOS"), "{}", err.1);

        let chaotic = Arc::new(ServerInner::new(ServerConfig {
            chaos: true,
            ..test_config()
        }));
        let mut bogus = JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick);
        bogus.chaos = Some("unplug_everything".to_string());
        let err = chaotic.submit(bogus, None).expect_err("unknown hook");
        assert_eq!(err.0, "bad_request");
    }

    #[test]
    fn submit_key_resubmits_attach_to_the_existing_job() {
        let inner = Arc::new(ServerInner::new(test_config()));
        let mut spec = JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick);
        spec.submit_key = Some(spec.content_key());
        let (first, resumed) = inner.submit(spec.clone(), None).expect("accepted");
        assert!(!resumed);
        let (second, resumed) = inner.submit(spec, None).expect("deduped");
        assert!(resumed);
        assert_eq!(first.id, second.id);
        assert_eq!(inner.counters.jobs_deduped.load(Ordering::Relaxed), 1);
        assert_eq!(inner.counters.jobs_submitted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn predicted_overload_sheds_deadlined_submits() {
        let inner = Arc::new(ServerInner::new(test_config()));
        // Pretend completed jobs took 10s each; with 2 workers, one
        // queued job predicts a 5s wait.
        inner
            .ewma_job_nanos
            .store(10_000_000_000, Ordering::Relaxed);
        let (job, _) = inner
            .submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect("no deadline, no shed");
        assert_eq!(job.id, 1);
        let mut tight = JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick);
        tight.deadline_ms = Some(100);
        let err = inner.submit(tight, None).expect_err("predicted wait 5s");
        assert_eq!(err.0, "overloaded");
        assert!(err.1.contains("deadline"), "{}", err.1);
        assert_eq!(inner.counters.shed_deadline.load(Ordering::Relaxed), 1);

        let slo = Arc::new(ServerInner::new(ServerConfig {
            slo_ms: 50,
            ..test_config()
        }));
        slo.ewma_job_nanos.store(10_000_000_000, Ordering::Relaxed);
        slo.submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect("empty queue predicts zero wait");
        let err = slo
            .submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect_err("one queued job predicts 5s > 50ms SLO");
        assert_eq!(err.0, "overloaded");
        assert!(err.1.contains("SLO"), "{}", err.1);
        assert_eq!(slo.counters.shed_slo.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn finalize_lost_fails_remaining_cells_and_completes() {
        let inner = Arc::new(ServerInner::new(test_config()));
        let (job, _) = inner
            .submit(JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick), None)
            .expect("accepted");
        // Exhaust the budget: first loss requeues, second finalizes.
        inner.requeue_or_fail(&job);
        assert_eq!(job.state.load(Ordering::Relaxed), QUEUED);
        assert_eq!(inner.counters.jobs_requeued.load(Ordering::Relaxed), 1);
        inner.requeue_or_fail(&job);
        assert_eq!(job.state.load(Ordering::Relaxed), DONE);
        assert_eq!(inner.counters.jobs_lost.load(Ordering::Relaxed), 1);
        assert_eq!(job.failed_cells.load(Ordering::Relaxed), job.cell_count());
        let result = inner.result_line(job.id);
        assert!(result.contains("worker lost"), "{result}");
    }
}
