//! flatwalk-serve: a persistent experiment service for the flatwalk
//! simulator.
//!
//! Batch binaries (`sec71_pwc_sweep` & friends) pay full setup and
//! simulation cost on every invocation. This crate keeps a simulator
//! process resident instead: a daemon (`flatwalk-serve`) accepts
//! experiment-grid jobs over a newline-delimited JSON protocol
//! ([`proto`], `flatwalk-serve-v1`), executes them on a worker pool
//! through the same fault-domain runner the batch path uses, and
//! answers repeats from a process-lifetime result cache ([`rcache`]) —
//! a re-submitted grid costs zero simulation and returns
//! byte-identical reports.
//!
//! Modules:
//!
//! - [`proto`] — wire protocol: request parsing, [`proto::JobSpec`],
//!   error replies.
//! - [`rcache`] — content-keyed LRU result cache above the setup
//!   cache.
//! - [`server`] — listeners, bounded job queue with backpressure,
//!   workers, in-flight coalescing, drain/shutdown.
//! - [`client`] — blocking client used by the `flatwalk-client`
//!   binary and the end-to-end tests.
//!
//! Environment knobs: `FLATWALK_QUEUE_DEPTH` (queued-job bound,
//! default 32), `FLATWALK_RESULT_CACHE_MB` (result-cache budget,
//! default 64), plus the simulator-wide `FLATWALK_THREADS`,
//! `FLATWALK_CELL_RETRIES`, `FLATWALK_CELL_DEADLINE_SECS`,
//! `FLATWALK_TRACE`, and `FLATWALK_FAULTS`.

pub mod client;
pub mod proto;
pub mod rcache;
pub mod server;
