//! flatwalk-serve: a persistent experiment service for the flatwalk
//! simulator.
//!
//! Batch binaries (`sec71_pwc_sweep` & friends) pay full setup and
//! simulation cost on every invocation. This crate keeps a simulator
//! process resident instead: a daemon (`flatwalk-serve`) accepts
//! experiment-grid jobs over a newline-delimited JSON protocol
//! ([`proto`], `flatwalk-serve-v1`), executes them on a worker pool
//! through the same fault-domain runner the batch path uses, and
//! answers repeats from a process-lifetime result cache ([`rcache`]) —
//! a re-submitted grid costs zero simulation and returns
//! byte-identical reports.
//!
//! The service is crash-safe and self-healing: results persist in a
//! disk-backed content-addressed store ([`store`]) that survives
//! `kill -9` and re-serves byte-identical replies after a restart; a
//! supervisor respawns panicked workers and re-queues their in-flight
//! jobs under a retry budget; and admission control sheds jobs (fast
//! `overloaded` reply) whose predicted queue wait exceeds the client's
//! deadline or the configured SLO.
//!
//! Modules:
//!
//! - [`proto`] — wire protocol: request parsing, [`proto::JobSpec`],
//!   error replies.
//! - [`rcache`] — content-keyed LRU result cache above the setup
//!   cache.
//! - [`store`] — disk-backed content-addressed result store beneath
//!   the memory cache (tmp + fsync + rename writes, recovery scan,
//!   checksum verification with quarantine).
//! - [`server`] — listeners, bounded job queue with backpressure,
//!   workers, worker supervision, in-flight coalescing, admission
//!   control, drain/shutdown.
//! - [`client`] — blocking client used by the `flatwalk-client`
//!   binary and the end-to-end tests, with jittered-backoff reconnect
//!   helpers.
//!
//! Environment knobs: `FLATWALK_QUEUE_DEPTH` (queued-job bound,
//! default 32), `FLATWALK_RESULT_CACHE_MB` (result-cache budget,
//! default 64), `FLATWALK_STORE_DIR` (persistent store root; unset =
//! memory only), `FLATWALK_SLO_MS` (admission-control SLO; 0 = off),
//! `FLATWALK_JOB_RETRIES` (requeue budget after a worker loss, default
//! 1), `FLATWALK_JOB_STALL_SECS` (stall watchdog, default 600, 0 =
//! off), `FLATWALK_CHAOS` (enable chaos test hooks), plus the
//! simulator-wide `FLATWALK_THREADS`, `FLATWALK_CELL_RETRIES`,
//! `FLATWALK_CELL_DEADLINE_SECS`, `FLATWALK_TRACE`, and
//! `FLATWALK_FAULTS`.

pub mod client;
pub mod proto;
pub mod rcache;
pub mod server;
pub mod store;
