//! `flatwalk-client` — command-line client for a running
//! `flatwalk-serve` daemon.
//!
//! ```text
//! flatwalk-client --connect HOST:PORT <command> [args]
//! flatwalk-client --uds PATH          <command> [args]
//!
//! commands:
//!   ping
//!   submit GRID [--mode quick|std|paper] [--faults SEED[:PROFILE]]
//!               [--warmup-ops N] [--measure-ops N]
//!               [--footprint-divisor N] [--no-stream] [--json PATH]
//!   status JOB
//!   result JOB [--json PATH]
//!   metrics [--prometheus]
//!   watch [--interval-ms N] [--count N]
//!   shutdown
//! ```
//!
//! The connect address defaults to `$FLATWALK_SERVE_ADDR`. Replies are
//! printed to stdout verbatim (newline-delimited JSON); `submit`
//! streams per-cell progress as cells finish. `--json PATH`
//! additionally collects the cell records into a
//! `flatwalk-serve-v1` report file. Exit status is non-zero on
//! connection errors, error replies, and jobs with failed cells.

use std::process::ExitCode;

use flatwalk_bench::Mode;
use flatwalk_obs::{json, Json};
use flatwalk_serve::client::Connection;
use flatwalk_serve::proto::{JobSpec, PROTOCOL};

const USAGE: &str = "usage: flatwalk-client (--connect HOST:PORT | --uds PATH) <command>
commands: ping | submit GRID [opts] | status JOB | result JOB [--json PATH]
          metrics [--prometheus] | watch [--interval-ms N] [--count N] | shutdown
submit opts: --mode quick|std|paper  --faults SEED[:PROFILE]  --warmup-ops N
             --measure-ops N  --footprint-divisor N  --no-stream  --json PATH";

struct Target {
    tcp: Option<String>,
    uds: Option<String>,
}

impl Target {
    fn connect(&self) -> Result<Connection, String> {
        #[cfg(unix)]
        if let Some(path) = &self.uds {
            return Connection::connect_uds(std::path::Path::new(path))
                .map_err(|e| format!("connect {path}: {e}"));
        }
        match &self.tcp {
            Some(addr) => Connection::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}")),
            None => Err(format!(
                "no server address (use --connect/--uds or FLATWALK_SERVE_ADDR)\n{USAGE}"
            )),
        }
    }
}

/// `line` if it parses as an error reply: `(kind, detail)`.
fn parse_error(v: &Json) -> Option<(String, String)> {
    if v.get("ok") != Some(&Json::Bool(false)) {
        return None;
    }
    let field = |key: &str| match v.get(key) {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    };
    Some((field("error"), field("detail")))
}

fn write_json_report(path: &str, job: u64, grid: &str, records: &[Json]) -> Result<(), String> {
    let mut report = Json::obj();
    report
        .push("schema", PROTOCOL)
        .push("job", job)
        .push("grid", grid)
        .push("cells", records.to_vec());
    std::fs::write(path, format!("{report}\n")).map_err(|e| format!("write {path}: {e}"))
}

/// Runs a streaming submit: prints every event, collects cell records,
/// returns the count of failed cells.
fn run_submit(
    conn: &mut Connection,
    spec: &JobSpec,
    stream: bool,
    json_path: Option<&str>,
) -> Result<u64, String> {
    conn.send(&spec.to_request_line(stream))
        .map_err(|e| e.to_string())?;
    let mut job = 0;
    let mut records: Vec<Json> = Vec::new();
    let mut failed = 0;
    loop {
        let Some(line) = conn.recv_line().map_err(|e| e.to_string())? else {
            if stream {
                return Err("server closed the stream before the done event".to_string());
            }
            break;
        };
        println!("{line}");
        let v = json::parse(&line).map_err(|e| format!("unparseable reply: {e}"))?;
        if let Some((kind, detail)) = parse_error(&v) {
            return Err(format!("server error {kind}: {detail}"));
        }
        match v.get("event") {
            Some(Json::Str(event)) if event == "accepted" => {
                job = v.get("job").and_then(Json::as_u64).unwrap_or(0);
                if !stream {
                    break;
                }
            }
            Some(Json::Str(event)) if event == "cell" => {
                if let Some(record) = v.get("record") {
                    records.push(record.clone());
                }
            }
            Some(Json::Str(event)) if event == "done" => {
                failed = v.get("failed").and_then(Json::as_u64).unwrap_or(0);
                break;
            }
            _ => {}
        }
    }
    if let Some(path) = json_path {
        write_json_report(path, job, &spec.grid, &records)?;
    }
    Ok(failed)
}

fn parse_submit(args: &[String]) -> Result<(JobSpec, bool, Option<String>), String> {
    let mut it = args.iter();
    let grid = it
        .next()
        .ok_or(format!("submit needs a grid name\n{USAGE}"))?;
    let mut spec = JobSpec::new(grid, Mode::Quick);
    let mut stream = true;
    let mut json_path = None;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mode" => {
                let name = value("--mode")?;
                spec.mode = Mode::parse(name).ok_or_else(|| format!("unknown mode {name:?}"))?;
            }
            "--faults" => {
                spec.faults = Some(
                    flatwalk_faults::FaultPlan::parse(value("--faults")?)
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--warmup-ops" => {
                spec.warmup_ops = Some(
                    value("--warmup-ops")?
                        .parse()
                        .map_err(|e| format!("--warmup-ops: {e}"))?,
                );
            }
            "--measure-ops" => {
                spec.measure_ops = Some(
                    value("--measure-ops")?
                        .parse()
                        .map_err(|e| format!("--measure-ops: {e}"))?,
                );
            }
            "--footprint-divisor" => {
                spec.footprint_divisor = Some(
                    value("--footprint-divisor")?
                        .parse()
                        .map_err(|e| format!("--footprint-divisor: {e}"))?,
                );
            }
            "--no-stream" => stream = false,
            "--json" => json_path = Some(value("--json")?.clone()),
            other => return Err(format!("unknown submit argument {other:?}")),
        }
    }
    Ok((spec, stream, json_path))
}

fn run(args: &[String]) -> Result<u64, String> {
    let mut target = Target {
        tcp: std::env::var("FLATWALK_SERVE_ADDR").ok(),
        uds: None,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                target.tcp = Some(it.next().ok_or("--connect needs a value")?.clone());
            }
            "--uds" => {
                target.uds = Some(it.next().ok_or("--uds needs a value")?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ => {
                rest.push(arg.clone());
                rest.extend(it.cloned());
                break;
            }
        }
    }
    let Some(command) = rest.first() else {
        return Err(format!("no command given\n{USAGE}"));
    };
    let mut conn = target.connect()?;
    let one_reply = |conn: &mut Connection, line: &str| -> Result<u64, String> {
        let reply = conn.request(line).map_err(|e| e.to_string())?;
        println!("{reply}");
        let v = json::parse(&reply).map_err(|e| format!("unparseable reply: {e}"))?;
        match parse_error(&v) {
            Some((kind, detail)) => Err(format!("server error {kind}: {detail}")),
            None => Ok(0),
        }
    };
    match command.as_str() {
        "ping" => one_reply(&mut conn, r#"{"op":"ping"}"#),
        "metrics" => {
            if rest.iter().any(|a| a == "--prometheus") {
                // Unwrap the exposition text so the output pipes
                // straight into Prometheus-aware tooling.
                let reply = conn
                    .request(r#"{"op":"metrics","format":"prometheus"}"#)
                    .map_err(|e| e.to_string())?;
                let v = json::parse(&reply).map_err(|e| format!("unparseable reply: {e}"))?;
                if let Some((kind, detail)) = parse_error(&v) {
                    return Err(format!("server error {kind}: {detail}"));
                }
                match v.get("text") {
                    Some(Json::Str(text)) => print!("{text}"),
                    _ => return Err("prometheus reply carried no \"text\"".to_string()),
                }
                Ok(0)
            } else {
                one_reply(&mut conn, r#"{"op":"metrics"}"#)
            }
        }
        "watch" => {
            let mut interval_ms = 1000u64;
            let mut count = 0u64;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match arg.as_str() {
                    "--interval-ms" => {
                        interval_ms = value("--interval-ms")?
                            .parse()
                            .map_err(|e| format!("--interval-ms: {e}"))?;
                    }
                    "--count" => {
                        count = value("--count")?
                            .parse()
                            .map_err(|e| format!("--count: {e}"))?;
                    }
                    other => return Err(format!("unknown watch argument {other:?}")),
                }
            }
            conn.send(&format!(
                "{{\"op\":\"watch\",\"interval_ms\":{interval_ms},\"count\":{count}}}"
            ))
            .map_err(|e| e.to_string())?;
            while let Some(line) = conn.recv_line().map_err(|e| e.to_string())? {
                println!("{line}");
                let v = json::parse(&line).map_err(|e| format!("unparseable reply: {e}"))?;
                if let Some((kind, detail)) = parse_error(&v) {
                    return Err(format!("server error {kind}: {detail}"));
                }
                if v.get("event") == Some(&Json::Str("done".into())) {
                    break;
                }
            }
            Ok(0)
        }
        "shutdown" => one_reply(&mut conn, r#"{"op":"shutdown"}"#),
        "status" | "result" => {
            let job: u64 = rest
                .get(1)
                .ok_or_else(|| format!("{command} needs a job id"))?
                .parse()
                .map_err(|e| format!("job id: {e}"))?;
            let reply = conn
                .request(&format!("{{\"op\":{:?},\"job\":{job}}}", command.as_str()))
                .map_err(|e| e.to_string())?;
            println!("{reply}");
            let v = json::parse(&reply).map_err(|e| format!("unparseable reply: {e}"))?;
            if let Some((kind, detail)) = parse_error(&v) {
                return Err(format!("server error {kind}: {detail}"));
            }
            if command == "result" {
                if let Some(path) = rest.iter().position(|a| a == "--json") {
                    let path = rest.get(path + 1).ok_or("--json needs a value")?;
                    std::fs::write(path, format!("{reply}\n"))
                        .map_err(|e| format!("write {path}: {e}"))?;
                }
            }
            Ok(0)
        }
        "submit" => {
            let (spec, stream, json_path) = parse_submit(&rest[1..])?;
            run_submit(&mut conn, &spec, stream, json_path.as_deref())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failed) => {
            eprintln!("flatwalk-client: {failed} cell(s) failed");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("flatwalk-client: {msg}");
            ExitCode::FAILURE
        }
    }
}
