//! `flatwalk-client` — command-line client for a running
//! `flatwalk-serve` daemon.
//!
//! ```text
//! flatwalk-client --connect HOST:PORT <command> [args]
//! flatwalk-client --uds PATH          <command> [args]
//!
//! commands:
//!   ping
//!   submit GRID [--mode quick|std|paper] [--faults SEED[:PROFILE]]
//!               [--warmup-ops N] [--measure-ops N]
//!               [--footprint-divisor N] [--no-stream] [--json PATH]
//!               [--deadline-ms N] [--retries N] [--backoff-ms N]
//!               [--submit-key KEY] [--chaos HOOK]
//!   status JOB
//!   result JOB [--json PATH]
//!   metrics [--prometheus]
//!   watch [--interval-ms N] [--count N]
//!   shutdown
//! ```
//!
//! The connect address defaults to `$FLATWALK_SERVE_ADDR`. Replies are
//! printed to stdout verbatim (newline-delimited JSON); `submit`
//! streams per-cell progress as cells finish. `--json PATH`
//! additionally collects the cell records into a
//! `flatwalk-serve-v1` report file.
//!
//! `submit --retries N` rides out server restarts and transient
//! overload: connect failures, dropped streams, and `overloaded` /
//! `draining` replies are retried up to N times with jittered
//! exponential backoff (`--backoff-ms` sets the base delay). Retried
//! submits are idempotent — the client sends a `submit_key` (explicit
//! `--submit-key`, or derived from the spec's content hash) so a
//! resubmit after a dropped stream reattaches to the original job
//! instead of re-running it. `--deadline-ms` propagates an end-to-end
//! deadline the server enforces (shedding the submit fast when its
//! queue is too long, cancelling the job if the deadline passes
//! mid-run).
//!
//! Exit status is 0 on success and distinguishes failure classes:
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 1    | job finished with failed cells                      |
//! | 2    | usage error (bad arguments)                         |
//! | 3    | connection error (refused, dropped, retries spent)  |
//! | 4    | protocol error (`bad_request`, `not_found`, bad replies) |
//! | 5    | server rejected the job (`overloaded` / `draining`) |

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

use flatwalk_bench::Mode;
use flatwalk_obs::{json, Json};
use flatwalk_serve::client::{Backoff, Connection};
use flatwalk_serve::proto::{JobSpec, PROTOCOL};

const USAGE: &str = "usage: flatwalk-client (--connect HOST:PORT | --uds PATH) <command>
commands: ping | submit GRID [opts] | status JOB | result JOB [--json PATH]
          metrics [--prometheus] | watch [--interval-ms N] [--count N] | shutdown
submit opts: --mode quick|std|paper  --faults SEED[:PROFILE]  --warmup-ops N
             --measure-ops N  --footprint-divisor N  --no-stream  --json PATH
             --deadline-ms N  --retries N  --backoff-ms N  --submit-key KEY
             --chaos HOOK
exit codes: 1 failed cells, 2 usage, 3 connection, 4 protocol, 5 overloaded/draining";

/// A failure, classified for the exit code.
enum ClientError {
    /// Bad arguments (exit 2).
    Usage(String),
    /// Could not reach the server, or lost it and ran out of retries
    /// (exit 3).
    Connect(String),
    /// The server answered, but not usefully: malformed replies,
    /// `bad_request`, `not_found` (exit 4).
    Protocol(String),
    /// The server refused the work: `overloaded` or `draining`
    /// (exit 5).
    Rejected { kind: String, detail: String },
}

impl ClientError {
    fn exit_code(&self) -> u8 {
        match self {
            ClientError::Usage(_) => 2,
            ClientError::Connect(_) => 3,
            ClientError::Protocol(_) => 4,
            ClientError::Rejected { .. } => 5,
        }
    }

    fn message(&self) -> String {
        match self {
            ClientError::Usage(msg) => msg.clone(),
            ClientError::Connect(msg) => format!("connection error: {msg}"),
            ClientError::Protocol(msg) => format!("protocol error: {msg}"),
            ClientError::Rejected { kind, detail } => format!("server rejected: {kind}: {detail}"),
        }
    }
}

/// Classifies a server error reply: shed/drain rejections are
/// retryable and exit 5, everything else is a protocol error (exit 4).
fn reply_error(kind: String, detail: String) -> ClientError {
    match kind.as_str() {
        "overloaded" | "draining" => ClientError::Rejected { kind, detail },
        _ => ClientError::Protocol(format!("server error {kind}: {detail}")),
    }
}

struct Target {
    tcp: Option<String>,
    uds: Option<String>,
}

impl Target {
    fn connect(&self) -> Result<Connection, ClientError> {
        #[cfg(unix)]
        if let Some(path) = &self.uds {
            return Connection::connect_uds(std::path::Path::new(path))
                .map_err(|e| ClientError::Connect(format!("connect {path}: {e}")));
        }
        match &self.tcp {
            Some(addr) => Connection::connect_tcp(addr)
                .map_err(|e| ClientError::Connect(format!("connect {addr}: {e}"))),
            None => Err(ClientError::Usage(format!(
                "no server address (use --connect/--uds or FLATWALK_SERVE_ADDR)\n{USAGE}"
            ))),
        }
    }
}

/// `line` if it parses as an error reply: `(kind, detail)`.
fn parse_error(v: &Json) -> Option<(String, String)> {
    if v.get("ok") != Some(&Json::Bool(false)) {
        return None;
    }
    let field = |key: &str| match v.get(key) {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    };
    Some((field("error"), field("detail")))
}

fn write_json_report(
    path: &str,
    job: u64,
    grid: &str,
    records: &BTreeMap<u64, Json>,
) -> Result<(), ClientError> {
    let mut report = Json::obj();
    report
        .push("schema", PROTOCOL)
        .push("job", job)
        .push("grid", grid)
        .push("cells", records.values().cloned().collect::<Vec<_>>());
    std::fs::write(path, format!("{report}\n"))
        .map_err(|e| ClientError::Usage(format!("write {path}: {e}")))
}

/// Options steering one (possibly retried) submit.
struct SubmitOptions {
    stream: bool,
    json_path: Option<String>,
    retries: u32,
    backoff_ms: u64,
}

/// One submit attempt over a fresh connection. `records` accumulates
/// cell records across attempts, keyed by cell index so replayed
/// events after a resubmit overwrite instead of duplicating.
/// `Err(true)` means retryable (connection lost, overloaded);
/// `Err(false)` wraps a terminal error in `terminal`.
fn submit_once(
    target: &Target,
    spec: &JobSpec,
    opts: &SubmitOptions,
    records: &mut BTreeMap<u64, Json>,
    job: &mut u64,
    terminal: &mut Option<ClientError>,
) -> Result<u64, bool> {
    let fail = |terminal: &mut Option<ClientError>, e: ClientError| -> Result<u64, bool> {
        let retryable = matches!(e, ClientError::Connect(_) | ClientError::Rejected { .. });
        *terminal = Some(e);
        Err(retryable)
    };
    let mut conn = match target.connect() {
        Ok(conn) => conn,
        Err(e) => return fail(terminal, e),
    };
    if conn.send(&spec.to_request_line(opts.stream)).is_err() {
        return fail(
            terminal,
            ClientError::Connect("server closed the connection".to_string()),
        );
    }
    loop {
        let line = match conn.recv_line() {
            Err(e) => return fail(terminal, ClientError::Connect(e.to_string())),
            Ok(None) => {
                if opts.stream {
                    return fail(
                        terminal,
                        ClientError::Connect(
                            "server closed the stream before the done event".to_string(),
                        ),
                    );
                }
                return Ok(0);
            }
            Ok(Some(line)) => line,
        };
        println!("{line}");
        let v = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                return fail(
                    terminal,
                    ClientError::Protocol(format!("unparseable reply: {e}")),
                )
            }
        };
        if let Some((kind, detail)) = parse_error(&v) {
            return fail(terminal, reply_error(kind, detail));
        }
        match v.get("event") {
            Some(Json::Str(event)) if event == "accepted" => {
                *job = v.get("job").and_then(Json::as_u64).unwrap_or(0);
                if !opts.stream {
                    return Ok(0);
                }
            }
            Some(Json::Str(event)) if event == "cell" => {
                if let Some(record) = v.get("record") {
                    let index = record.get("index").and_then(Json::as_u64).unwrap_or(0);
                    records.insert(index, record.clone());
                }
            }
            Some(Json::Str(event)) if event == "done" => {
                return Ok(v.get("failed").and_then(Json::as_u64).unwrap_or(0));
            }
            _ => {}
        }
    }
}

/// Runs a submit with the retry/backoff/idempotency policy: prints
/// every event, collects cell records, returns the count of failed
/// cells.
fn run_submit(target: &Target, spec: &JobSpec, opts: &SubmitOptions) -> Result<u64, ClientError> {
    let mut backoff = Backoff::new(
        Duration::from_millis(opts.backoff_ms.max(1)),
        Duration::from_secs(5),
        u64::from(std::process::id()),
    );
    let mut records: BTreeMap<u64, Json> = BTreeMap::new();
    let mut job = 0u64;
    let mut terminal: Option<ClientError> = None;
    let mut failed = None;
    for attempt in 0..=opts.retries {
        match submit_once(target, spec, opts, &mut records, &mut job, &mut terminal) {
            Ok(n) => {
                failed = Some(n);
                break;
            }
            Err(retryable) => {
                if !retryable || attempt == opts.retries {
                    return Err(terminal.expect("submit_once set the error"));
                }
                let delay = backoff.next_delay();
                eprintln!(
                    "flatwalk-client: {}; retrying in {:?} ({} retr{} left)",
                    terminal
                        .as_ref()
                        .map_or_else(String::new, ClientError::message),
                    delay,
                    opts.retries - attempt,
                    if opts.retries - attempt == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                );
                std::thread::sleep(delay);
            }
        }
    }
    let failed = failed.expect("loop either breaks with a count or returns");
    if let Some(path) = &opts.json_path {
        write_json_report(path, job, &spec.grid, &records)?;
    }
    Ok(failed)
}

fn parse_submit(args: &[String]) -> Result<(JobSpec, SubmitOptions), ClientError> {
    let usage = |msg: String| ClientError::Usage(msg);
    let mut it = args.iter();
    let grid = it
        .next()
        .ok_or_else(|| usage(format!("submit needs a grid name\n{USAGE}")))?;
    let mut spec = JobSpec::new(grid, Mode::Quick);
    let mut opts = SubmitOptions {
        stream: true,
        json_path: None,
        retries: 0,
        backoff_ms: 50,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, ClientError> {
            it.next()
                .ok_or_else(|| ClientError::Usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--mode" => {
                let name = value("--mode")?;
                spec.mode =
                    Mode::parse(name).ok_or_else(|| usage(format!("unknown mode {name:?}")))?;
            }
            "--faults" => {
                spec.faults = Some(
                    flatwalk_faults::FaultPlan::parse(value("--faults")?)
                        .map_err(|e| usage(format!("--faults: {e}")))?,
                );
            }
            "--warmup-ops" => {
                spec.warmup_ops = Some(
                    value("--warmup-ops")?
                        .parse()
                        .map_err(|e| usage(format!("--warmup-ops: {e}")))?,
                );
            }
            "--measure-ops" => {
                spec.measure_ops = Some(
                    value("--measure-ops")?
                        .parse()
                        .map_err(|e| usage(format!("--measure-ops: {e}")))?,
                );
            }
            "--footprint-divisor" => {
                spec.footprint_divisor = Some(
                    value("--footprint-divisor")?
                        .parse()
                        .map_err(|e| usage(format!("--footprint-divisor: {e}")))?,
                );
            }
            "--deadline-ms" => {
                spec.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| usage(format!("--deadline-ms: {e}")))?,
                );
            }
            "--retries" => {
                opts.retries = value("--retries")?
                    .parse()
                    .map_err(|e| usage(format!("--retries: {e}")))?;
            }
            "--backoff-ms" => {
                opts.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|e| usage(format!("--backoff-ms: {e}")))?;
            }
            "--submit-key" => spec.submit_key = Some(value("--submit-key")?.clone()),
            "--chaos" => spec.chaos = Some(value("--chaos")?.clone()),
            "--no-stream" => opts.stream = false,
            "--json" => opts.json_path = Some(value("--json")?.clone()),
            other => return Err(usage(format!("unknown submit argument {other:?}"))),
        }
    }
    // A retried submit must be idempotent: without an explicit key,
    // derive it from the spec's content hash so a resubmit after a
    // dropped stream reattaches to the first attempt's job.
    if opts.retries > 0 && spec.submit_key.is_none() {
        spec.submit_key = Some(spec.content_key());
    }
    Ok((spec, opts))
}

fn run(args: &[String]) -> Result<u64, ClientError> {
    let mut target = Target {
        tcp: std::env::var("FLATWALK_SERVE_ADDR").ok(),
        uds: None,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                target.tcp = Some(
                    it.next()
                        .ok_or_else(|| ClientError::Usage("--connect needs a value".into()))?
                        .clone(),
                );
            }
            "--uds" => {
                target.uds = Some(
                    it.next()
                        .ok_or_else(|| ClientError::Usage("--uds needs a value".into()))?
                        .clone(),
                );
            }
            "--help" | "-h" => return Err(ClientError::Usage(USAGE.to_string())),
            _ => {
                rest.push(arg.clone());
                rest.extend(it.cloned());
                break;
            }
        }
    }
    let Some(command) = rest.first() else {
        return Err(ClientError::Usage(format!("no command given\n{USAGE}")));
    };
    if command == "submit" {
        // Submit manages its own connections (it may retry across
        // several).
        let (spec, opts) = parse_submit(&rest[1..])?;
        return run_submit(&target, &spec, &opts);
    }
    let mut conn = target.connect()?;
    let one_reply = |conn: &mut Connection, line: &str| -> Result<u64, ClientError> {
        let reply = conn
            .request(line)
            .map_err(|e| ClientError::Connect(e.to_string()))?;
        println!("{reply}");
        let v = json::parse(&reply)
            .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
        match parse_error(&v) {
            Some((kind, detail)) => Err(reply_error(kind, detail)),
            None => Ok(0),
        }
    };
    match command.as_str() {
        "ping" => one_reply(&mut conn, r#"{"op":"ping"}"#),
        "metrics" => {
            if rest.iter().any(|a| a == "--prometheus") {
                // Unwrap the exposition text so the output pipes
                // straight into Prometheus-aware tooling.
                let reply = conn
                    .request(r#"{"op":"metrics","format":"prometheus"}"#)
                    .map_err(|e| ClientError::Connect(e.to_string()))?;
                let v = json::parse(&reply)
                    .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
                if let Some((kind, detail)) = parse_error(&v) {
                    return Err(reply_error(kind, detail));
                }
                match v.get("text") {
                    Some(Json::Str(text)) => print!("{text}"),
                    _ => {
                        return Err(ClientError::Protocol(
                            "prometheus reply carried no \"text\"".to_string(),
                        ))
                    }
                }
                Ok(0)
            } else {
                one_reply(&mut conn, r#"{"op":"metrics"}"#)
            }
        }
        "watch" => {
            let mut interval_ms = 1000u64;
            let mut count = 0u64;
            let mut it = rest[1..].iter();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| -> Result<&String, ClientError> {
                    it.next()
                        .ok_or_else(|| ClientError::Usage(format!("{name} needs a value")))
                };
                match arg.as_str() {
                    "--interval-ms" => {
                        interval_ms = value("--interval-ms")?
                            .parse()
                            .map_err(|e| ClientError::Usage(format!("--interval-ms: {e}")))?;
                    }
                    "--count" => {
                        count = value("--count")?
                            .parse()
                            .map_err(|e| ClientError::Usage(format!("--count: {e}")))?;
                    }
                    other => {
                        return Err(ClientError::Usage(format!(
                            "unknown watch argument {other:?}"
                        )))
                    }
                }
            }
            conn.send(&format!(
                "{{\"op\":\"watch\",\"interval_ms\":{interval_ms},\"count\":{count}}}"
            ))
            .map_err(|e| ClientError::Connect(e.to_string()))?;
            while let Some(line) = conn
                .recv_line()
                .map_err(|e| ClientError::Connect(e.to_string()))?
            {
                println!("{line}");
                let v = json::parse(&line)
                    .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
                if let Some((kind, detail)) = parse_error(&v) {
                    return Err(reply_error(kind, detail));
                }
                if v.get("event") == Some(&Json::Str("done".into())) {
                    break;
                }
            }
            Ok(0)
        }
        "shutdown" => one_reply(&mut conn, r#"{"op":"shutdown"}"#),
        "status" | "result" => {
            let job: u64 = rest
                .get(1)
                .ok_or_else(|| ClientError::Usage(format!("{command} needs a job id")))?
                .parse()
                .map_err(|e| ClientError::Usage(format!("job id: {e}")))?;
            let reply = conn
                .request(&format!("{{\"op\":{:?},\"job\":{job}}}", command.as_str()))
                .map_err(|e| ClientError::Connect(e.to_string()))?;
            println!("{reply}");
            let v = json::parse(&reply)
                .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))?;
            if let Some((kind, detail)) = parse_error(&v) {
                return Err(reply_error(kind, detail));
            }
            if command == "result" {
                if let Some(path) = rest.iter().position(|a| a == "--json") {
                    let path = rest
                        .get(path + 1)
                        .ok_or_else(|| ClientError::Usage("--json needs a value".into()))?;
                    std::fs::write(path, format!("{reply}\n"))
                        .map_err(|e| ClientError::Usage(format!("write {path}: {e}")))?;
                }
            }
            Ok(0)
        }
        other => Err(ClientError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failed) => {
            eprintln!("flatwalk-client: {failed} cell(s) failed");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("flatwalk-client: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
