//! `flatwalk-serve` — the resident experiment daemon.
//!
//! ```text
//! flatwalk-serve [--port N] [--uds PATH] [--no-tcp] [--workers N]
//!                [--job-threads N] [--queue-depth N] [--cache-mb N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (default: an ephemeral port, announced on
//! stdout as `listening on 127.0.0.1:PORT`) and/or a Unix socket, then
//! serves `flatwalk-serve-v1` requests until told to stop. Graceful
//! shutdown: a client `shutdown` op or the first SIGTERM/SIGINT drains
//! — queued and in-flight jobs finish, new submissions are rejected
//! with `draining`, and the process exits 0 once idle. A second
//! SIGTERM/SIGINT also cancels cells that have not started yet (they
//! complete as failed `cancelled` records), for a fast but still
//! orderly exit.

use std::process::ExitCode;
use std::time::Duration;

use flatwalk_serve::server::{self, ServerConfig};

/// Minimal signal plumbing: handlers only bump an atomic the main loop
/// polls. Raw `signal(2)` FFI keeps the workspace dependency-free.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub static RECEIVED: AtomicUsize = AtomicUsize::new(0);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn bump(_signum: i32) {
        // Atomic increment is async-signal-safe.
        RECEIVED.fetch_add(1, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, bump as *const () as usize);
            signal(SIGINT, bump as *const () as usize);
        }
    }

    pub fn received() -> usize {
        RECEIVED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn received() -> usize {
        0
    }
}

const USAGE: &str = "usage: flatwalk-serve [--port N] [--uds PATH] [--no-tcp] \
[--workers N] [--job-threads N] [--queue-depth N] [--cache-mb N]";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::from_env();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--port" => {
                config.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--uds" => config.uds = Some(value("--uds")?.into()),
            "--no-tcp" => config.tcp = false,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|e| format!("--job-threads: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--cache-mb" => {
                let mb: u64 = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
                config.cache_bytes = mb << 20;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    flatwalk_obs::trace::init_from_env();
    sig::install();
    let handle = match server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("flatwalk-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = handle.addr() {
        println!("listening on {addr}");
    }
    if let Some(path) = handle.uds() {
        println!("listening on uds {}", path.display());
    }
    println!(
        "flatwalk-serve ready ({} workers, queue depth {}); send {{\"op\":\"shutdown\"}} or SIGTERM to drain",
        handle.inner().config().workers.max(1),
        handle.inner().config().queue_depth,
    );
    let mut signalled = 0;
    while !handle.inner().drained() {
        let seen = sig::received();
        if seen > signalled {
            signalled = seen;
            if signalled == 1 {
                eprintln!("flatwalk-serve: draining (signal); repeat to cancel queued cells");
                handle.begin_drain();
            } else {
                eprintln!("flatwalk-serve: cancelling remaining cells");
                handle.cancel_remaining();
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.wait();
    println!("flatwalk-serve: drained, exiting");
    ExitCode::SUCCESS
}
