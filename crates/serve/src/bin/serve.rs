//! `flatwalk-serve` — the resident experiment daemon.
//!
//! ```text
//! flatwalk-serve [--port N] [--uds PATH] [--no-tcp] [--workers N]
//!                [--job-threads N] [--queue-depth N] [--cache-mb N]
//!                [--store DIR] [--slo-ms N] [--job-retries N]
//!                [--stall-secs N] [--chaos]
//! ```
//!
//! Binds `127.0.0.1:<port>` (default: an ephemeral port, announced on
//! stdout as `listening on 127.0.0.1:PORT`) and/or a Unix socket, then
//! serves `flatwalk-serve-v1` requests until told to stop. Graceful
//! shutdown: a client `shutdown` op or the first SIGTERM/SIGINT drains
//! — queued and in-flight jobs finish, new submissions are rejected
//! with `draining`, and the process exits 0 once idle. A second
//! SIGTERM/SIGINT also cancels cells that have not started yet (they
//! complete as failed `cancelled` records), for a fast but still
//! orderly exit.
//!
//! `--store DIR` makes results durable: computed cells are written to
//! a content-addressed store under `DIR` (tmp + fsync + atomic
//! rename), recovered on the next start, and re-served byte-identical
//! — a `kill -9` loses at most the cells in flight. `--slo-ms`,
//! `--job-retries`, and `--stall-secs` tune admission control and the
//! worker supervisor; `--chaos` allows chaos test hooks in
//! submissions. Each flag overrides its environment knob
//! (`FLATWALK_STORE_DIR`, `FLATWALK_SLO_MS`, `FLATWALK_JOB_RETRIES`,
//! `FLATWALK_JOB_STALL_SECS`, `FLATWALK_CHAOS`).

use std::process::ExitCode;
use std::time::Duration;

use flatwalk_serve::server::{self, ServerConfig};

/// Minimal signal plumbing: handlers only bump an atomic the main loop
/// polls. Raw `signal(2)` FFI keeps the workspace dependency-free.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub static RECEIVED: AtomicUsize = AtomicUsize::new(0);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn bump(_signum: i32) {
        // Atomic increment is async-signal-safe.
        RECEIVED.fetch_add(1, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, bump as *const () as usize);
            signal(SIGINT, bump as *const () as usize);
        }
    }

    pub fn received() -> usize {
        RECEIVED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn received() -> usize {
        0
    }
}

const USAGE: &str = "usage: flatwalk-serve [--port N] [--uds PATH] [--no-tcp] \
[--workers N] [--job-threads N] [--queue-depth N] [--cache-mb N] \
[--store DIR] [--slo-ms N] [--job-retries N] [--stall-secs N] [--chaos]";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::from_env();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--port" => {
                config.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--uds" => config.uds = Some(value("--uds")?.into()),
            "--no-tcp" => config.tcp = false,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|e| format!("--job-threads: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--cache-mb" => {
                let mb: u64 = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
                config.cache_bytes = mb << 20;
            }
            "--store" => config.store_dir = Some(value("--store")?.into()),
            "--slo-ms" => {
                config.slo_ms = value("--slo-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-ms: {e}"))?;
            }
            "--job-retries" => {
                config.job_retries = value("--job-retries")?
                    .parse()
                    .map_err(|e| format!("--job-retries: {e}"))?;
            }
            "--stall-secs" => {
                config.stall_secs = value("--stall-secs")?
                    .parse()
                    .map_err(|e| format!("--stall-secs: {e}"))?;
            }
            "--chaos" => config.chaos = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    flatwalk_obs::trace::init_from_env();
    sig::install();
    let handle = match server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("flatwalk-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = handle.addr() {
        println!("listening on {addr}");
    }
    if let Some(path) = handle.uds() {
        println!("listening on uds {}", path.display());
    }
    if let Some(store) = handle.inner().store() {
        println!(
            "store at {} ({} entries recovered, {} quarantined)",
            store.root().display(),
            store.recovered(),
            store.quarantined(),
        );
    }
    println!(
        "flatwalk-serve ready ({} workers, queue depth {}); send {{\"op\":\"shutdown\"}} or SIGTERM to drain",
        handle.inner().config().workers.max(1),
        handle.inner().config().queue_depth,
    );
    let mut signalled = 0;
    while !handle.inner().drained() {
        let seen = sig::received();
        if seen > signalled {
            signalled = seen;
            if signalled == 1 {
                eprintln!("flatwalk-serve: draining (signal); repeat to cancel queued cells");
                handle.begin_drain();
            } else {
                eprintln!("flatwalk-serve: cancelling remaining cells");
                handle.cancel_remaining();
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.wait();
    // The trace sink lives in a static that is never dropped at exit;
    // flush it explicitly or the BufWriter's tail is lost.
    flatwalk_obs::trace::uninstall();
    println!("flatwalk-serve: drained, exiting");
    ExitCode::SUCCESS
}
