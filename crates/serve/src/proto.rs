//! The `flatwalk-serve-v1` wire protocol.
//!
//! Newline-delimited JSON over a local stream (TCP on `127.0.0.1` or a
//! Unix socket). The client writes one request object per line; the
//! server answers with one or more reply lines. Every reply carries
//! `"ok"`: errors are `{"ok":false,"error":<kind>,"detail":…}` with
//! `kind` ∈ `bad_request` | `overloaded` | `draining` | `not_found`.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","grid":<name>,"mode":"quick"|"std"|"paper",
//!  "faults":<spec>?,"warmup_ops":N?,"measure_ops":N?,
//!  "footprint_divisor":N?,"stream":true?,"deadline_ms":N?,
//!  "submit_key":S?,"chaos":"panic_worker"?}
//! {"op":"status","job":N}
//! {"op":"result","job":N}
//! {"op":"metrics","format":"json"|"prometheus"?}
//! {"op":"watch","interval_ms":N?,"count":N?}
//! {"op":"shutdown"}
//! ```
//!
//! `metrics` defaults to the JSON snapshot (server counters, per-op
//! request-latency percentiles, and the merged global registry); with
//! `"format":"prometheus"` the reply instead carries the same data
//! rendered in the Prometheus text exposition format under `"text"`.
//! `watch` streams one `metrics` event every `interval_ms` (default
//! 1000) for `count` snapshots (default 0 = until the server drains or
//! the connection drops), then a final `done` event.
//!
//! `deadline_ms` bounds the job end-to-end: the server sheds the
//! submit (fast `overloaded` reply) when its predicted queue wait
//! already exceeds the deadline, and cancels the job at the next batch
//! boundary once the deadline passes mid-run. `submit_key` makes the
//! submit idempotent: a resubmit carrying the key of a job the server
//! already knows attaches to that job instead of re-executing it (the
//! `accepted` event then carries `"resumed":true`, and already-finished
//! cell events are replayed). [`JobSpec::content_key`] derives the
//! canonical key from the spec's execution-relevant fields. `chaos`
//! requests a fault-injection hook (`"panic_worker"` panics the worker
//! mid-job on the first attempt) and is rejected unless the server was
//! started with `FLATWALK_CHAOS=1`.
//!
//! A `submit` is answered with an `accepted` event; with
//! `"stream":true` the connection then receives one `cell` event per
//! finished cell (in completion order — cells of one job run in index
//! order) and a final `done` event. Cell events embed the same record
//! the `result` op returns: the per-cell report JSON is byte-identical
//! to `SimReport::to_json()` in the batch binaries' `--json` output,
//! plus service fields `"cached"`/`"coalesced"`.

use flatwalk_bench::grids::{self, Grid};
use flatwalk_bench::Mode;
use flatwalk_faults::FaultPlan;
use flatwalk_obs::Json;

/// Protocol identifier, echoed by `ping` and `metrics`.
pub const PROTOCOL: &str = "flatwalk-serve-v1";

/// One experiment-grid job as submitted on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registered grid name (see [`grids::GRIDS`]).
    pub grid: String,
    /// Scale mode the grid is built for.
    pub mode: Mode,
    /// Optional per-job fault plan (scoped to this job's worker; other
    /// jobs are unaffected).
    pub faults: Option<FaultPlan>,
    /// Override for `SimOptions::warmup_ops`.
    pub warmup_ops: Option<u64>,
    /// Override for `SimOptions::measure_ops`.
    pub measure_ops: Option<u64>,
    /// Override for `SimOptions::footprint_divisor`.
    pub footprint_divisor: Option<u64>,
    /// End-to-end deadline in milliseconds. The server sheds the
    /// submit when the predicted queue wait exceeds it, and cancels
    /// the job at the next batch boundary once it passes mid-run.
    pub deadline_ms: Option<u64>,
    /// Idempotency key: a resubmit carrying a known key attaches to
    /// the existing job instead of re-executing it.
    pub submit_key: Option<String>,
    /// Chaos hook (`"panic_worker"`); rejected unless the server was
    /// started with `FLATWALK_CHAOS=1`.
    pub chaos: Option<String>,
}

impl JobSpec {
    /// A spec for `grid` at quick scale with no overrides.
    pub fn new(grid: &str, mode: Mode) -> JobSpec {
        JobSpec {
            grid: grid.to_string(),
            mode,
            faults: None,
            warmup_ops: None,
            measure_ops: None,
            footprint_divisor: None,
            deadline_ms: None,
            submit_key: None,
            chaos: None,
        }
    }

    /// The canonical idempotency key for this spec: a content hash
    /// over every field that affects execution (grid, mode, faults,
    /// option overrides). Two specs that would run the same cells get
    /// the same key; `deadline_ms`/`submit_key`/`chaos` are excluded
    /// because they shape delivery, not results.
    pub fn content_key(&self) -> String {
        let basis = format!(
            "{}|{}|{:?}|{:?}|{:?}|{:?}",
            self.grid,
            self.mode_name(),
            self.faults,
            self.warmup_ops,
            self.measure_ops,
            self.footprint_divisor
        );
        crate::store::content_hash(&basis)
    }

    /// Builds the grid this spec describes: the registered builder run
    /// on the mode's server options with this spec's overrides applied.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown grid.
    pub fn resolve(&self) -> Result<Grid, String> {
        let def = grids::by_name(&self.grid).ok_or_else(|| {
            format!(
                "unknown grid {:?} (known: {})",
                self.grid,
                grids::names().join(", ")
            )
        })?;
        let mut opts = self.mode.server_options();
        if let Some(v) = self.warmup_ops {
            opts.warmup_ops = v;
        }
        if let Some(v) = self.measure_ops {
            opts.measure_ops = v;
        }
        if let Some(v) = self.footprint_divisor {
            opts.footprint_divisor = v.max(1);
        }
        Ok((def.build)(self.mode, &opts))
    }

    /// The spec's mode name as it appears on the wire.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Quick => "quick",
            Mode::Std => "std",
            Mode::Paper => "paper",
        }
    }

    /// Renders the submit request line for this spec.
    pub fn to_request_line(&self, stream: bool) -> String {
        let mut o = Json::obj();
        o.push("op", "submit")
            .push("grid", self.grid.as_str())
            .push("mode", self.mode_name());
        if let Some(plan) = self.faults {
            o.push("faults", format!("{}:{}", plan.seed, plan.profile.name()));
        }
        if let Some(v) = self.warmup_ops {
            o.push("warmup_ops", v);
        }
        if let Some(v) = self.measure_ops {
            o.push("measure_ops", v);
        }
        if let Some(v) = self.footprint_divisor {
            o.push("footprint_divisor", v);
        }
        if let Some(v) = self.deadline_ms {
            o.push("deadline_ms", v);
        }
        if let Some(key) = &self.submit_key {
            o.push("submit_key", key.as_str());
        }
        if let Some(hook) = &self.chaos {
            o.push("chaos", hook.as_str());
        }
        if stream {
            o.push("stream", true);
        }
        o.to_string()
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / protocol check.
    Ping,
    /// Submit a job; `stream` asks for per-cell events on this
    /// connection.
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Whether to stream per-cell events.
        stream: bool,
    },
    /// Progress of a job.
    Status {
        /// Server-assigned job id.
        job: u64,
    },
    /// Collected cell records of a job.
    Result {
        /// Server-assigned job id.
        job: u64,
    },
    /// Merged metrics snapshot + server counters.
    Metrics {
        /// Render as Prometheus text exposition instead of JSON.
        prometheus: bool,
    },
    /// Stream periodic metrics snapshots on this connection.
    Watch {
        /// Milliseconds between snapshots.
        interval_ms: u64,
        /// Snapshots to emit (0 = until drain or disconnect).
        count: u64,
    },
    /// Begin draining: finish queued/in-flight jobs, reject new ones,
    /// exit.
    Shutdown,
}

impl Request {
    /// The request's op name as it appears on the wire (the key the
    /// server's request-latency histograms are bucketed by).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Result { .. } => "result",
            Request::Metrics { .. } => "metrics",
            Request::Watch { .. } => "watch",
            Request::Shutdown => "shutdown",
        }
    }
}

fn get_str<'a>(o: &'a Json, key: &str) -> Option<&'a str> {
    match o.get(key) {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

fn get_u64(o: &Json, key: &str) -> Option<u64> {
    o.get(key).and_then(Json::as_u64)
}

fn get_bool(o: &Json, key: &str) -> bool {
    matches!(o.get(key), Some(Json::Bool(true)))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown ops,
/// or missing/invalid fields (the server wraps it in a `bad_request`
/// reply).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = flatwalk_obs::json::parse(line.trim()).map_err(|e| e.to_string())?;
    let op = get_str(&v, "op").ok_or("missing \"op\"")?;
    match op {
        "ping" => Ok(Request::Ping),
        "metrics" => match get_str(&v, "format") {
            None | Some("json") => Ok(Request::Metrics { prometheus: false }),
            Some("prometheus") => Ok(Request::Metrics { prometheus: true }),
            Some(other) => Err(format!("unknown metrics format {other:?}")),
        },
        "watch" => Ok(Request::Watch {
            interval_ms: get_u64(&v, "interval_ms").unwrap_or(1000).max(1),
            count: get_u64(&v, "count").unwrap_or(0),
        }),
        "shutdown" => Ok(Request::Shutdown),
        "status" | "result" => {
            let job = get_u64(&v, "job").ok_or("missing \"job\"")?;
            Ok(if op == "status" {
                Request::Status { job }
            } else {
                Request::Result { job }
            })
        }
        "submit" => {
            let grid = get_str(&v, "grid").ok_or("missing \"grid\"")?.to_string();
            let mode = match get_str(&v, "mode") {
                None => Mode::Quick,
                Some(name) => Mode::parse(name).ok_or_else(|| format!("unknown mode {name:?}"))?,
            };
            let faults = match get_str(&v, "faults") {
                None => None,
                Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("faults: {e}"))?),
            };
            Ok(Request::Submit {
                spec: JobSpec {
                    grid,
                    mode,
                    faults,
                    warmup_ops: get_u64(&v, "warmup_ops"),
                    measure_ops: get_u64(&v, "measure_ops"),
                    footprint_divisor: get_u64(&v, "footprint_divisor"),
                    deadline_ms: get_u64(&v, "deadline_ms"),
                    submit_key: get_str(&v, "submit_key").map(str::to_string),
                    chaos: get_str(&v, "chaos").map(str::to_string),
                },
                stream: get_bool(&v, "stream"),
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders an error reply line.
pub fn error_line(kind: &str, detail: &str) -> String {
    let mut o = Json::obj();
    o.push("ok", false)
        .push("error", kind)
        .push("detail", detail);
    o.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_request_line() {
        let mut spec = JobSpec::new("sec71_pwc", Mode::Quick);
        spec.faults = Some(FaultPlan::parse("7:alloc").unwrap());
        spec.warmup_ops = Some(500);
        spec.measure_ops = Some(2500);
        spec.footprint_divisor = Some(512);
        spec.deadline_ms = Some(30_000);
        spec.submit_key = Some(spec.content_key());
        spec.chaos = Some("panic_worker".to_string());
        let line = spec.to_request_line(true);
        match parse_request(&line).unwrap() {
            Request::Submit { spec: back, stream } => {
                assert!(stream);
                assert_eq!(back, spec);
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn content_key_tracks_execution_fields_only() {
        let spec = JobSpec::new("sec71_pwc", Mode::Quick);
        let mut same = spec.clone();
        same.deadline_ms = Some(5);
        same.submit_key = Some("x".to_string());
        same.chaos = Some("panic_worker".to_string());
        assert_eq!(spec.content_key(), same.content_key());

        let mut other_mode = spec.clone();
        other_mode.mode = Mode::Std;
        assert_ne!(spec.content_key(), other_mode.content_key());
        let mut other_ops = spec.clone();
        other_ops.measure_ops = Some(100);
        assert_ne!(spec.content_key(), other_ops.content_key());
        assert_eq!(spec.content_key().len(), 32);
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#),
            Ok(Request::Metrics { prometheus: false })
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#),
            Ok(Request::Metrics { prometheus: true })
        );
        assert_eq!(
            parse_request(r#"{"op":"watch"}"#),
            Ok(Request::Watch {
                interval_ms: 1000,
                count: 0
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","interval_ms":0,"count":3}"#),
            Ok(Request::Watch {
                interval_ms: 1,
                count: 3
            }),
            "interval clamps to at least 1ms"
        );
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        assert_eq!(
            parse_request(r#"{"op":"status","job":7}"#),
            Ok(Request::Status { job: 7 })
        );
        assert_eq!(
            parse_request(r#"{"op":"result","job":7}"#),
            Ok(Request::Result { job: 7 })
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"no":"op"}"#).is_err());
        assert!(parse_request(r#"{"op":"dance"}"#).is_err());
        assert!(parse_request(r#"{"op":"status"}"#).is_err(), "missing job");
        assert!(parse_request(r#"{"op":"submit"}"#).is_err(), "missing grid");
        assert!(
            parse_request(r#"{"op":"submit","grid":"g","mode":"warp"}"#).is_err(),
            "unknown mode"
        );
        assert!(
            parse_request(r#"{"op":"submit","grid":"g","faults":"x"}"#).is_err(),
            "bad fault spec"
        );
        assert!(
            parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err(),
            "unknown metrics format"
        );
    }

    #[test]
    fn op_names_match_the_wire() {
        assert_eq!(Request::Ping.op_name(), "ping");
        assert_eq!(Request::Metrics { prometheus: true }.op_name(), "metrics");
        assert_eq!(
            Request::Watch {
                interval_ms: 1,
                count: 1
            }
            .op_name(),
            "watch"
        );
    }

    #[test]
    fn resolve_applies_overrides() {
        let mut spec = JobSpec::new("sec71_pwc", Mode::Quick);
        spec.warmup_ops = Some(500);
        spec.measure_ops = Some(2500);
        spec.footprint_divisor = Some(512);
        let grid = spec.resolve().unwrap();
        assert_eq!(grid.len(), 9);
        let opts = &grid.cells[0].opts;
        assert_eq!(opts.warmup_ops, 500);
        assert_eq!(opts.measure_ops, 2500);
        assert_eq!(opts.footprint_divisor, 512);
        assert!(JobSpec::new("no_such_grid", Mode::Quick).resolve().is_err());
    }

    #[test]
    fn error_lines_are_structured() {
        let line = error_line("overloaded", "queue full (depth 32)");
        let v = flatwalk_obs::json::parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error"), Some(&Json::Str("overloaded".into())));
    }
}
