//! Disk-backed, content-addressed persistence for finished grid cells,
//! layered **beneath** the in-memory result cache ([`crate::rcache`]):
//! the memory cache answers repeats within one server lifetime, this
//! store answers them across lifetimes. A server restarted after a
//! crash (`kill -9` included) re-serves every previously computed cell
//! with byte-identical spliced report JSON and zero re-execution.
//!
//! Layout under the store root:
//!
//! ```text
//! objects/<hh>/<32-hex content hash>.entry   durable entries
//! tmp/                                       in-progress writes
//! quarantine/                                entries that failed verification
//! ```
//!
//! Entries are addressed by a 128-bit hash of their [`cell_key`]
//! (two independently seeded FNV-1a folds), sharded by the first hash
//! byte. Every entry embeds the *full* key and is verified against it
//! on read, so even a hash collision can never alias two computations.
//!
//! Durability follows the classic tmp + `fsync` + atomic `rename`
//! discipline: an entry is written to `tmp/`, synced, renamed into
//! `objects/`, and the object directory is synced — a crash at any
//! point leaves either no entry or a complete one, never a torn one.
//! The entry format is self-verifying (`flatwalk-store-v1`): a JSON
//! header line carrying the byte lengths and an FNV-1a checksum of the
//! key + report bytes, followed by the raw key and report. The startup
//! recovery scan ([`ResultStore::open`]) re-indexes every entry that
//! verifies and moves everything else — truncated headers, length
//! mismatches, checksum failures — into `quarantine/` for post-mortem
//! inspection instead of deleting or serving it.
//!
//! Concurrency: the key→path index is a lock-free
//! [`flatwalk_sync::SwapMap`] and all counters are atomics — no lock
//! anywhere in this module (`scripts/lint_lockfree.sh` enforces this).
//! Concurrent writers of the same key are idempotent by content
//! addressing: both render identical bytes, and the second rename
//! simply replaces the first atomically.
//!
//! Observability: spans `store.recover` / `store.read` / `store.write`;
//! counters `store.recovered`, `store.quarantined`, `store.hits`,
//! `store.misses`, `store.writes`, `store.write_errors`.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flatwalk_obs::{metrics, span, Json};
use flatwalk_sync::SwapMap;

use crate::rcache::CachedCell;

/// On-disk entry format identifier (first header field of every entry).
pub const SCHEMA: &str = "flatwalk-store-v1";

/// Seeded FNV-1a 64-bit fold — stable across processes and platforms,
/// dependency-free, and fast enough that hashing a report is noise next
/// to the simulation that produced it.
fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The 128-bit content address of a cell key, as 32 lowercase hex
/// digits (two independently seeded FNV-1a folds). Used as the entry
/// file name; the embedded full key disambiguates any residual
/// collision.
pub fn content_hash(key: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(key.as_bytes(), 0),
        fnv1a64(key.as_bytes(), 0x9E37_79B9_7F4A_7C15)
    )
}

/// Renders one durable entry: header line, raw key, raw report.
fn render_entry(key: &str, value: &CachedCell) -> Vec<u8> {
    let mut checksum_input = Vec::with_capacity(key.len() + value.report_json.len());
    checksum_input.extend_from_slice(key.as_bytes());
    checksum_input.extend_from_slice(value.report_json.as_bytes());
    let mut header = Json::obj();
    header
        .push("schema", SCHEMA)
        .push("checksum", format!("{:016x}", fnv1a64(&checksum_input, 0)))
        .push("key_len", key.len() as u64)
        .push("report_len", value.report_json.len() as u64)
        .push("setup_nanos", value.setup_nanos)
        .push("run_nanos", value.run_nanos)
        .push("retries", u64::from(value.retries));
    let header = header.to_string();
    let mut out = Vec::with_capacity(header.len() + key.len() + value.report_json.len() + 3);
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(key.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(value.report_json.as_bytes());
    out.push(b'\n');
    out
}

/// Parses and verifies one entry file's bytes back into its key and
/// cached value.
///
/// # Errors
///
/// A human-readable description of the first defect found (unreadable
/// header, schema/length mismatch, checksum failure).
fn parse_entry(bytes: &[u8]) -> Result<(String, CachedCell), String> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("no header line")?;
    let header = std::str::from_utf8(&bytes[..header_end]).map_err(|_| "header not UTF-8")?;
    let header = flatwalk_obs::json::parse(header).map_err(|e| format!("bad header: {e}"))?;
    let field = |name: &str| -> Result<u64, String> {
        header
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("header missing {name:?}"))
    };
    match header.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        other => return Err(format!("unknown schema {other:?}")),
    }
    let key_len = field("key_len")? as usize;
    let report_len = field("report_len")? as usize;
    let expected_len = header_end + 1 + key_len + 1 + report_len + 1;
    if bytes.len() != expected_len {
        return Err(format!(
            "length mismatch: {} bytes on disk, header describes {expected_len}",
            bytes.len()
        ));
    }
    let key = &bytes[header_end + 1..header_end + 1 + key_len];
    let report = &bytes[header_end + 2 + key_len..header_end + 2 + key_len + report_len];
    let mut checksum_input = Vec::with_capacity(key.len() + report.len());
    checksum_input.extend_from_slice(key);
    checksum_input.extend_from_slice(report);
    let actual = format!("{:016x}", fnv1a64(&checksum_input, 0));
    match header.get("checksum") {
        Some(Json::Str(expected)) if *expected == actual => {}
        other => return Err(format!("checksum mismatch: {other:?} vs {actual}")),
    }
    let key = std::str::from_utf8(key)
        .map_err(|_| "key not UTF-8")?
        .into();
    let report = std::str::from_utf8(report)
        .map_err(|_| "report not UTF-8")?
        .into();
    Ok((
        key,
        CachedCell {
            report_json: report,
            setup_nanos: field("setup_nanos")?,
            run_nanos: field("run_nanos")?,
            retries: field("retries")? as u32,
        },
    ))
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
/// Best-effort: some filesystems refuse directory fsync; the rename
/// itself is still atomic.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The persistent content-addressed result store.
///
/// See the module docs for layout and durability guarantees. All
/// methods are callable from any thread; nothing in here blocks on a
/// lock.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    /// key → durable entry path, repopulated by the recovery scan.
    index: SwapMap<String, Arc<PathBuf>>,
    tmp_seq: AtomicU64,
    quarantine_seq: AtomicU64,
    recovered: AtomicU64,
    quarantined: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `root` and runs
    /// the recovery scan: every verifiable entry under `objects/` is
    /// re-indexed, every corrupt one is moved to `quarantine/`, and
    /// leftover `tmp/` files from interrupted writes are deleted.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/readdir failures on the root
    /// itself; per-entry defects never fail the open.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let _span = span::enter("store.recover");
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        let store = ResultStore {
            root: root.to_path_buf(),
            index: SwapMap::new(),
            tmp_seq: AtomicU64::new(0),
            quarantine_seq: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        };
        // A tmp file is by definition an interrupted write: its entry
        // was never renamed in, so nothing references it.
        for leftover in fs::read_dir(store.root.join("tmp"))?.flatten() {
            let _ = fs::remove_file(leftover.path());
        }
        for shard in fs::read_dir(store.root.join("objects"))?.flatten() {
            let Ok(entries) = fs::read_dir(shard.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                match fs::read(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|bytes| {
                        let parsed = parse_entry(&bytes)?;
                        // The file must sit at its key's content address;
                        // anything else was tampered with or misplaced.
                        let expected = format!("{}.entry", content_hash(&parsed.0));
                        if path.file_name().and_then(|n| n.to_str()) != Some(expected.as_str()) {
                            return Err(format!("entry misfiled: expected name {expected}"));
                        }
                        Ok(parsed)
                    }) {
                    Ok((key, _)) => {
                        store.index.insert(key, Arc::new(path));
                        store.recovered.fetch_add(1, Ordering::Relaxed);
                        metrics::add_global("store.recovered", 1);
                    }
                    Err(why) => store.quarantine(&path, &why),
                }
            }
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Moves a failed entry into `quarantine/` (never deletes it) and
    /// counts it. Best-effort: if even the move fails the entry is left
    /// in place and simply stays unindexed.
    fn quarantine(&self, path: &Path, why: &str) {
        let seq = self.quarantine_seq.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("entry")
            .to_string();
        let dest = self.root.join("quarantine").join(format!("{name}.{seq}"));
        let moved = fs::rename(path, &dest).is_ok();
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("store.quarantined", 1);
        eprintln!(
            "flatwalk-serve: store quarantined {} ({why}){}",
            path.display(),
            if moved {
                format!(" -> {}", dest.display())
            } else {
                String::new()
            }
        );
    }

    /// Looks `key` up on disk, verifying the entry end to end. A
    /// corrupt or vanished entry is quarantined (when still present)
    /// and reported as a miss — the caller re-executes and the next
    /// [`put`](ResultStore::put) heals the store.
    pub fn get(&self, key: &str) -> Option<CachedCell> {
        let _span = span::enter("store.read");
        let Some(path) = self.index.get(&key.to_string()) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("store.misses", 1);
            return None;
        };
        let verified = fs::read(path.as_path())
            .map_err(|e| e.to_string())
            .and_then(|bytes| parse_entry(&bytes))
            .and_then(|(stored_key, value)| {
                if stored_key == key {
                    Ok(value)
                } else {
                    Err("key mismatch (content-hash collision?)".to_string())
                }
            });
        match verified {
            Ok(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::add_global("store.hits", 1);
                Some(value)
            }
            Err(why) => {
                self.index.remove(&key.to_string());
                if path.exists() {
                    self.quarantine(&path, &why);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::add_global("store.misses", 1);
                None
            }
        }
    }

    /// Durably writes `key`'s entry (tmp + fsync + rename + dir sync)
    /// and indexes it. Write failures are counted and logged, never
    /// propagated: the serve path must keep answering from memory even
    /// on a full or read-only disk.
    pub fn put(&self, key: &str, value: &CachedCell) {
        let _span = span::enter("store.write");
        if let Err(e) = self.put_inner(key, value) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            metrics::add_global("store.write_errors", 1);
            eprintln!("flatwalk-serve: store write for key hash {} failed: {e}", {
                content_hash(key)
            });
        }
    }

    fn put_inner(&self, key: &str, value: &CachedCell) -> io::Result<()> {
        let hash = content_hash(key);
        let shard = self.root.join("objects").join(&hash[..2]);
        fs::create_dir_all(&shard)?;
        let final_path = shard.join(format!("{hash}.entry"));
        let tmp_path = self.root.join("tmp").join(format!(
            "{hash}.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = render_entry(key, value);
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_all()?;
        drop(tmp);
        if let Err(e) = fs::rename(&tmp_path, &final_path) {
            let _ = fs::remove_file(&tmp_path);
            return Err(e);
        }
        sync_dir(&shard);
        self.index.insert(key.to_string(), Arc::new(final_path));
        self.writes.fetch_add(1, Ordering::Relaxed);
        metrics::add_global("store.writes", 1);
        Ok(())
    }

    /// Indexed entries (verified at recovery or written this lifetime).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entries re-indexed by this process's recovery scan.
    pub fn recovered(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Entries moved to `quarantine/` by this process.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Disk hits served by this process.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Disk misses (unindexed keys and failed verifications).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries durably written by this process.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Write attempts that failed (disk full, permissions, …).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flatwalk-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cell(report: &str) -> CachedCell {
        CachedCell {
            report_json: Arc::from(report),
            setup_nanos: 11,
            run_nanos: 22,
            retries: 1,
        }
    }

    #[test]
    fn roundtrip_within_one_lifetime() {
        let dir = tempdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get("k1").is_none());
        store.put("k1", &cell("{\"r\":1}"));
        let hit = store.get("k1").unwrap();
        assert_eq!(&*hit.report_json, "{\"r\":1}");
        assert_eq!((hit.setup_nanos, hit.run_nanos, hit.retries), (11, 22, 1));
        assert_eq!((store.writes(), store.hits(), store.misses()), (1, 1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_entries_byte_identically() {
        let dir = tempdir("reopen");
        let report = "{\"cells\":[1,2,3],\"f\":0.25}";
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put("cell-key|a", &cell(report));
            store.put("cell-key|b", &cell("{\"other\":true}"));
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.recovered(), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.quarantined(), 0);
        assert_eq!(&*store.get("cell-key|a").unwrap().report_json, report);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Finds the single `.entry` file for `key` under the store root.
    fn entry_path(root: &Path, key: &str) -> PathBuf {
        let hash = content_hash(key);
        root.join("objects")
            .join(&hash[..2])
            .join(format!("{hash}.entry"))
    }

    #[test]
    fn corrupt_and_truncated_entries_are_quarantined_on_open() {
        let dir = tempdir("corrupt");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put("good", &cell("{\"g\":1}"));
            store.put("flipped", &cell("{\"f\":2}"));
            store.put("truncated", &cell("{\"t\":3}"));
        }
        // Flip one report byte (checksum must catch it) and truncate
        // another entry (length check must catch it).
        let flipped = entry_path(&dir, "flipped");
        let mut bytes = fs::read(&flipped).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x20;
        fs::write(&flipped, &bytes).unwrap();
        let truncated = entry_path(&dir, "truncated");
        let bytes = fs::read(&truncated).unwrap();
        fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.recovered(), 1, "only the intact entry survives");
        assert_eq!(store.quarantined(), 2);
        assert!(store.get("good").is_some());
        assert!(store.get("flipped").is_none());
        assert!(store.get("truncated").is_none());
        assert_eq!(
            fs::read_dir(dir.join("quarantine")).unwrap().count(),
            2,
            "quarantined entries are preserved for inspection, not deleted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_after_open_is_caught_on_read() {
        let dir = tempdir("read-verify");
        let store = ResultStore::open(&dir).unwrap();
        store.put("k", &cell("{\"x\":9}"));
        let path = entry_path(&dir, "k");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get("k").is_none(), "read path verifies the checksum");
        assert_eq!(store.quarantined(), 1);
        assert!(!path.exists(), "corrupt entry moved out of objects/");
        // A healing re-put serves again.
        store.put("k", &cell("{\"x\":9}"));
        assert_eq!(&*store.get("k").unwrap().report_json, "{\"x\":9}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_swept_on_open() {
        let dir = tempdir("tmp-sweep");
        {
            let _ = ResultStore::open(&dir).unwrap();
        }
        fs::write(dir.join("tmp").join("orphan.123.0"), b"partial write").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
        assert_eq!(store.recovered(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hash_is_stable_and_key_sensitive() {
        assert_eq!(content_hash("a"), content_hash("a"));
        assert_ne!(content_hash("a"), content_hash("b"));
        assert_eq!(content_hash("a").len(), 32);
        assert!(content_hash("a").chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn entry_format_rejects_schema_drift() {
        let bytes = render_entry("k", &cell("{}"));
        assert!(parse_entry(&bytes).is_ok());
        let drifted = String::from_utf8(bytes).unwrap().replace(SCHEMA, "v0");
        assert!(parse_entry(drifted.as_bytes()).is_err());
        assert!(parse_entry(b"garbage, no header").is_err());
        assert!(parse_entry(b"").is_err());
    }
}
