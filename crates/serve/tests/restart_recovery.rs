//! Crash-recovery end-to-end tests: a real `flatwalk-serve` process
//! with a persistent store, killed with SIGKILL (no drain, no
//! cleanup), restarted on the same directory.
//!
//! The durability claims under test:
//!
//! - results computed before the kill are served from the store after
//!   the restart, **byte-identical** and with **zero re-execution**;
//! - an entry corrupted on disk while the server is down is
//!   quarantined by the recovery scan, and its cell transparently
//!   re-executes to the same bytes.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use flatwalk_obs::{json, Json};
use flatwalk_serve::client::Connection;
use flatwalk_serve::proto::JobSpec;

/// A spawned server process and the address it announced.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(store: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_flatwalk-serve"))
            .args(["--port", "0", "--workers", "2"])
            .arg("--store")
            .arg(store)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn flatwalk-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server announces its address before EOF")
                .expect("read server stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.to_string();
            }
        };
        // Drain the rest of stdout in the background so the server
        // never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn connect(&self) -> Connection {
        Connection::connect_tcp(&self.addr).expect("connect to spawned server")
    }

    /// SIGKILL — no drain, no atexit, nothing.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 the server");
        self.child.wait().expect("reap");
    }
}

fn small_spec() -> JobSpec {
    let mut spec = JobSpec::new("sec71_pwc", flatwalk_bench::Mode::Quick);
    spec.warmup_ops = Some(500);
    spec.measure_ops = Some(2500);
    spec.footprint_divisor = Some(512);
    spec
}

/// Streams a submit; returns `(reports, cached_flags)` index-ordered.
fn submit(conn: &mut Connection, spec: &JobSpec) -> (Vec<String>, Vec<bool>) {
    conn.send(&spec.to_request_line(true)).expect("send submit");
    let mut reports = Vec::new();
    let mut cached = Vec::new();
    loop {
        let line = conn.recv_line().expect("read").expect("stream open");
        let v = json::parse(&line).expect("event parses");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "event: {line}");
        match v.get("event") {
            Some(Json::Str(e)) if e == "cell" => {
                let record = v.get("record").expect("cell has record");
                assert_eq!(
                    record.get("status"),
                    Some(&Json::Str("ok".into())),
                    "cell failed: {record}"
                );
                reports.push(record.get("report").expect("report").to_string());
                cached.push(record.get("cached") == Some(&Json::Bool(true)));
            }
            Some(Json::Str(e)) if e == "done" => break,
            _ => {}
        }
    }
    (reports, cached)
}

/// The `server` object from a `metrics` reply.
fn server_metrics(conn: &mut Connection) -> Json {
    let reply = conn.request(r#"{"op":"metrics"}"#).expect("metrics");
    let v = json::parse(&reply).expect("metrics parses");
    v.get("server").expect("server object").clone()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flatwalk-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_then_restart_serves_byte_identical_results_without_reexecution() {
    let store = fresh_dir("recover");

    // First lifetime: compute and persist.
    let first = ServerProc::start(&store);
    let mut conn = first.connect();
    let (cold_reports, cold_cached) = submit(&mut conn, &small_spec());
    assert!(!cold_reports.is_empty());
    assert!(
        cold_cached.iter().all(|&c| !c),
        "first lifetime computes everything"
    );
    // The done event was received, so every cell was written through
    // (fsync + rename) before its record streamed. Now die hard.
    first.kill9();

    // Second lifetime, same directory: everything served from disk.
    let second = ServerProc::start(&store);
    let mut conn = second.connect();
    let (warm_reports, warm_cached) = submit(&mut conn, &small_spec());
    assert_eq!(warm_reports, cold_reports, "byte-identical across kill -9");
    assert!(
        warm_cached.iter().all(|&c| c),
        "every cell served from the store: {warm_cached:?}"
    );
    let server = server_metrics(&mut conn);
    assert_eq!(
        server.get("cells_executed").and_then(Json::as_u64),
        Some(0),
        "zero re-execution after restart: {server}"
    );
    let recovered = server
        .get("store")
        .and_then(|s| s.get("recovered"))
        .and_then(Json::as_u64)
        .expect("store metrics present");
    assert_eq!(recovered, cold_reports.len() as u64);
    second.kill9();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn corrupted_entry_is_quarantined_and_reexecuted_to_the_same_bytes() {
    let store = fresh_dir("quarantine");

    let first = ServerProc::start(&store);
    let mut conn = first.connect();
    let (cold_reports, _) = submit(&mut conn, &small_spec());
    first.kill9();

    // Flip bytes in one persisted entry while the server is down.
    let mut entries: Vec<PathBuf> = Vec::new();
    for shard in std::fs::read_dir(store.join("objects")).expect("objects dir") {
        for entry in std::fs::read_dir(shard.expect("shard").path()).expect("shard dir") {
            entries.push(entry.expect("entry").path());
        }
    }
    assert_eq!(entries.len(), cold_reports.len(), "one file per cell");
    entries.sort();
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(victim, &bytes).expect("corrupt entry");

    // The recovery scan must quarantine it; the resubmit re-executes
    // that one cell and still returns the original bytes.
    let second = ServerProc::start(&store);
    let mut conn = second.connect();
    let (warm_reports, _) = submit(&mut conn, &small_spec());
    assert_eq!(
        warm_reports, cold_reports,
        "corruption never changes replies"
    );
    let server = server_metrics(&mut conn);
    let store_stats = server.get("store").expect("store metrics");
    assert_eq!(
        store_stats.get("quarantined").and_then(Json::as_u64),
        Some(1),
        "{store_stats}"
    );
    assert_eq!(
        store_stats.get("recovered").and_then(Json::as_u64),
        Some(cold_reports.len() as u64 - 1),
        "{store_stats}"
    );
    assert_eq!(
        server.get("cells_executed").and_then(Json::as_u64),
        Some(1),
        "exactly the corrupted cell re-executed: {server}"
    );
    assert!(
        store.join("quarantine").read_dir().expect("dir").count() >= 1,
        "corrupt bytes preserved for inspection"
    );
    second.kill9();
    let _ = std::fs::remove_dir_all(&store);
}
