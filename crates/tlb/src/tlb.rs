//! Set-associative translation lookaside buffers.

use flatwalk_types::stats::HitMiss;
use flatwalk_types::{PageSize, PhysAddr, VirtAddr};

/// Geometry and latency of one TLB array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Name used in reports (e.g. `"L1D-4K"`).
    pub name: &'static str,
    /// Total entries.
    pub entries: usize,
    /// Associativity (`entries` for fully associative).
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
    /// The page size this array holds translations for.
    pub page_size: PageSize,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways` or the
    /// set count is not a power of two.
    pub fn new(
        name: &'static str,
        entries: usize,
        ways: usize,
        latency: u64,
        page_size: PageSize,
    ) -> Self {
        assert!(ways > 0 && entries > 0, "degenerate TLB geometry");
        assert_eq!(entries % ways, 0, "entries must divide into ways");
        assert!(
            ways <= 64,
            "at most 64 ways (validity is a per-set u64 bitmask)"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        TlbConfig {
            name,
            entries,
            ways,
            latency,
            page_size,
        }
    }

    fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (VA >> page-size shift).
    pub vpn: u64,
    /// Physical base address of the page.
    pub frame: PhysAddr,
    /// The translation granularity.
    pub size: PageSize,
}

impl TlbEntry {
    /// Translates `va`, assuming it falls in this entry's page.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        self.frame.add(va.offset(self.size))
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    vpn: u64,
    frame: PhysAddr,
    stamp: u64,
}

impl Slot {
    /// Placeholder occupying ways whose validity bit is clear.
    const EMPTY: Slot = Slot {
        vpn: 0,
        frame: PhysAddr::new(0),
        stamp: 0,
    };
}

/// One set-associative TLB array holding translations of a single page
/// size (hardware looks the size classes up in parallel;
/// [`TlbSystem`](crate::TlbSystem) models that).
///
/// Slots live in one contiguous slab (set-major, way-stride 1) with a
/// per-set validity bitmask, so a lookup is a single indexed scan with
/// no nested-`Vec` pointer chasing.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    slots: Box<[Slot]>,
    valid: Box<[u64]>,
    set_mask: usize,
    clock: u64,
    stats: HitMiss,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        let sets = cfg.sets();
        Tlb {
            slots: vec![Slot::EMPTY; sets * cfg.ways].into_boxed_slice(),
            valid: vec![0u64; sets].into_boxed_slice(),
            set_mask: sets - 1,
            clock: 0,
            cfg,
            stats: HitMiss::default(),
        }
    }

    /// This TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Clears statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::default();
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & self.set_mask
    }

    /// Finds `vpn`'s way within `set`, if resident.
    #[inline]
    fn find_way(&self, set: usize, vpn: u64) -> Option<usize> {
        let base = set * self.cfg.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.slots[base + way].vpn == vpn {
                return Some(way);
            }
        }
        None
    }

    /// Looks up the translation for `va`; updates LRU and statistics.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        self.clock += 1;
        let vpn = va.page_number(self.cfg.page_size);
        let set = self.set_of(vpn);
        // Single pass: find the way and refresh its stamp in place
        // (every simulated access probes all three L1 arrays).
        let base = set * self.cfg.ways;
        let mut mask = self.valid[set];
        let mut found = None;
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let slot = &mut self.slots[base + way];
            if slot.vpn == vpn {
                slot.stamp = self.clock;
                found = Some(TlbEntry {
                    vpn,
                    frame: slot.frame,
                    size: self.cfg.page_size,
                });
                break;
            }
        }
        self.stats.record(found.is_some());
        found
    }

    /// Looks up without touching LRU or statistics (for tests).
    pub fn peek(&self, va: VirtAddr) -> Option<TlbEntry> {
        let vpn = va.page_number(self.cfg.page_size);
        let set = self.set_of(vpn);
        self.find_way(set, vpn).map(|way| {
            let slot = &self.slots[set * self.cfg.ways + way];
            TlbEntry {
                vpn,
                frame: slot.frame,
                size: self.cfg.page_size,
            }
        })
    }

    /// Installs a translation (LRU replacement within the set).
    ///
    /// # Panics
    ///
    /// Panics if `size` differs from this array's page size, or `frame`
    /// is not size-aligned.
    pub fn insert(&mut self, va: VirtAddr, frame: PhysAddr, size: PageSize) {
        assert_eq!(size, self.cfg.page_size, "wrong size class for this TLB");
        assert_eq!(frame.offset(size), 0, "frame must be page-aligned");
        self.clock += 1;
        let vpn = va.page_number(size);
        let set = self.set_of(vpn);
        let base = set * self.cfg.ways;
        let slot = Slot {
            vpn,
            frame,
            stamp: self.clock,
        };
        // Update in place if present.
        if let Some(way) = self.find_way(set, vpn) {
            self.slots[base + way] = slot;
            return;
        }
        // Free way? (lowest clear bit, matching the old first-empty scan).
        let ways_mask = if self.cfg.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.ways) - 1
        };
        let free = !self.valid[set] & ways_mask;
        if free != 0 {
            let way = free.trailing_zeros() as usize;
            self.valid[set] |= 1 << way;
            self.slots[base + way] = slot;
            return;
        }
        // LRU victim (first minimum stamp, like the old per-set scan).
        let victim = (0..self.cfg.ways)
            .min_by_key(|&way| self.slots[base + way].stamp)
            .expect("non-empty ways");
        self.slots[base + victim] = slot;
    }

    /// Empties the TLB (used between multiprogrammed schedule slices).
    pub fn flush(&mut self) {
        self.valid.fill(0);
    }

    /// Number of valid entries currently cached (shootdown accounting).
    pub fn occupancy(&self) -> u64 {
        self.valid.iter().map(|m| m.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb4k(entries: usize, ways: usize) -> Tlb {
        Tlb::new(TlbConfig::new("t", entries, ways, 1, PageSize::Size4K))
    }

    #[test]
    fn miss_insert_hit() {
        let mut t = tlb4k(8, 2);
        let va = VirtAddr::new(0x1234_5000);
        assert!(t.lookup(va).is_none());
        t.insert(va, PhysAddr::new(0x9000_0000), PageSize::Size4K);
        let e = t.lookup(va.add(0xabc)).expect("same page hits");
        assert_eq!(e.translate(va.add(0xabc)).raw(), 0x9000_0abc);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut t = tlb4k(4, 2); // 2 sets x 2 ways
                                 // VPNs 0, 2, 4 all map to set 0.
        let page = |n: u64| VirtAddr::new(n * 4096);
        t.insert(page(0), PhysAddr::new(0x1000), PageSize::Size4K);
        t.insert(page(2), PhysAddr::new(0x2000), PageSize::Size4K);
        t.lookup(page(0)); // refresh 0 → vpn 2 is LRU
        t.insert(page(4), PhysAddr::new(0x3000), PageSize::Size4K);
        assert!(t.peek(page(0)).is_some());
        assert!(t.peek(page(2)).is_none());
        assert!(t.peek(page(4)).is_some());
    }

    #[test]
    fn two_meg_entries_translate_with_21_bit_offset() {
        let mut t = Tlb::new(TlbConfig::new("t2m", 4, 4, 1, PageSize::Size2M));
        let va = VirtAddr::new(0x4000_0000);
        t.insert(va, PhysAddr::new(0x8000_0000), PageSize::Size2M);
        let probe = VirtAddr::new(0x4012_3456);
        let e = t.lookup(probe).unwrap();
        assert_eq!(e.translate(probe).raw(), 0x8012_3456);
    }

    #[test]
    fn reinsert_updates_frame() {
        let mut t = tlb4k(4, 4);
        let va = VirtAddr::new(0x5000);
        t.insert(va, PhysAddr::new(0x1000), PageSize::Size4K);
        t.insert(va, PhysAddr::new(0x2000), PageSize::Size4K);
        assert_eq!(t.peek(va).unwrap().frame.raw(), 0x2000);
    }

    #[test]
    fn flush_empties() {
        let mut t = tlb4k(4, 4);
        t.insert(
            VirtAddr::new(0x5000),
            PhysAddr::new(0x1000),
            PageSize::Size4K,
        );
        t.flush();
        assert!(t.peek(VirtAddr::new(0x5000)).is_none());
    }

    #[test]
    #[should_panic(expected = "wrong size class")]
    fn size_class_enforced() {
        let mut t = tlb4k(4, 4);
        t.insert(VirtAddr::new(0), PhysAddr::new(0), PageSize::Size2M);
    }
}
