//! Detection of high-TLB-miss phases.
//!
//! Paper §5/§6.1: prioritization of page-table lines in the caches is
//! only applied "during phases of high TLB miss rates", detected with
//! existing hardware performance counters. This module is that counter
//! logic: a windowed TLB miss rate compared against a threshold.

/// Windowed TLB-miss-rate phase detector.
///
/// # Examples
///
/// ```
/// use flatwalk_tlb::PhaseDetector;
///
/// let mut d = PhaseDetector::new(100, 0.02);
/// // A miss-heavy window switches the phase on…
/// for _ in 0..100 { d.record(true); }
/// assert!(d.active());
/// // …and a hit-only window switches it back off.
/// for _ in 0..100 { d.record(false); }
/// assert!(!d.active());
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    window: u64,
    threshold: f64,
    seen: u64,
    misses: u64,
    active: bool,
    flips: u64,
}

impl PhaseDetector {
    /// Default window length (translations per evaluation).
    pub const DEFAULT_WINDOW: u64 = 4096;
    /// Default miss-rate threshold for declaring a high-miss phase.
    pub const DEFAULT_THRESHOLD: f64 = 0.02;

    /// Creates a detector evaluating every `window` translations against
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        PhaseDetector {
            window,
            threshold,
            seen: 0,
            misses: 0,
            active: false,
            flips: 0,
        }
    }

    /// Detector with the paper-calibrated defaults.
    pub fn default_config() -> Self {
        Self::new(Self::DEFAULT_WINDOW, Self::DEFAULT_THRESHOLD)
    }

    /// Records one translation; returns the (possibly updated) phase.
    pub fn record(&mut self, was_miss: bool) -> bool {
        self.seen += 1;
        if was_miss {
            self.misses += 1;
        }
        if self.seen >= self.window {
            let rate = self.misses as f64 / self.seen as f64;
            let next = rate >= self.threshold;
            if next != self.active {
                self.flips += 1;
                if flatwalk_obs::trace::phase_enabled() {
                    flatwalk_obs::trace::emit_phase(&flatwalk_obs::trace::PhaseRecord {
                        active: next,
                        flips: self.flips,
                        window: self.window,
                        miss_rate: rate,
                    });
                }
            }
            self.active = next;
            self.seen = 0;
            self.misses = 0;
        }
        self.active
    }

    /// Whether the current phase is a high-TLB-miss phase.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Phase transitions observed since construction (or the last
    /// [`reset_flips`](Self::reset_flips)).
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Zeroes the transition count. The detector's phase state (current
    /// window and activity) is untouched — resetting statistics must not
    /// change simulation behaviour.
    pub fn reset_flips(&mut self) {
        self.flips = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_inactive() {
        let d = PhaseDetector::default_config();
        assert!(!d.active());
    }

    #[test]
    fn activates_above_threshold_only() {
        let mut d = PhaseDetector::new(100, 0.05);
        // 4 misses in 100 → below 5 % threshold.
        for i in 0..100 {
            d.record(i < 4);
        }
        assert!(!d.active());
        // 6 misses in 100 → above.
        for i in 0..100 {
            d.record(i < 6);
        }
        assert!(d.active());
    }

    #[test]
    fn phase_holds_until_window_boundary() {
        let mut d = PhaseDetector::new(10, 0.5);
        for _ in 0..10 {
            d.record(true);
        }
        assert!(d.active());
        // Mid-window hits do not flip the phase yet.
        for _ in 0..5 {
            assert!(d.record(false));
        }
        for _ in 0..5 {
            d.record(false);
        }
        assert!(!d.active());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        PhaseDetector::new(0, 0.5);
    }

    #[test]
    fn flips_count_transitions_and_reset_keeps_phase_state() {
        let mut d = PhaseDetector::new(10, 0.5);
        for _ in 0..10 {
            d.record(true); // off → on
        }
        for _ in 0..10 {
            d.record(false); // on → off
        }
        for _ in 0..10 {
            d.record(true); // off → on
        }
        assert_eq!(d.flips(), 3);
        d.reset_flips();
        assert_eq!(d.flips(), 0);
        assert!(d.active(), "reset_flips must not disturb the phase");
    }
}
