//! The per-core TLB complex: split L1 arrays plus a unified L2.

use flatwalk_types::stats::HitMiss;
use flatwalk_types::{PageSize, PhysAddr, VirtAddr};

use crate::{Tlb, TlbConfig};

/// A unified set-associative TLB holding 4 KB and 2 MB translations in
/// the same array (Skylake-style L2 STLB; Table 1: 1536 entries,
/// 12-way, 9 cycles, "4 KB/2 MB").
#[derive(Debug, Clone)]
pub struct UnifiedTlb {
    name: &'static str,
    /// Slots in one contiguous slab, set-major (way-stride 1), with a
    /// per-set validity bitmask — same flat layout as [`Tlb`].
    slots: Box<[USlot]>,
    valid: Box<[u64]>,
    ways: usize,
    set_mask: usize,
    latency: u64,
    clock: u64,
    stats: HitMiss,
}

#[derive(Debug, Clone, Copy)]
struct USlot {
    vpn: u64,
    size: PageSize,
    frame: PhysAddr,
    stamp: u64,
}

impl USlot {
    /// Placeholder occupying ways whose validity bit is clear.
    const EMPTY: USlot = USlot {
        vpn: 0,
        size: PageSize::Size4K,
        frame: PhysAddr::new(0),
        stamp: 0,
    };
}

impl UnifiedTlb {
    /// Creates an empty unified TLB.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`TlbConfig::new`] rules).
    pub fn new(name: &'static str, entries: usize, ways: usize, latency: u64) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "degenerate TLB geometry"
        );
        assert!(
            ways <= 64,
            "at most 64 ways (validity is a per-set u64 bitmask)"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        UnifiedTlb {
            name,
            slots: vec![USlot::EMPTY; sets * ways].into_boxed_slice(),
            valid: vec![0u64; sets].into_boxed_slice(),
            ways,
            set_mask: sets - 1,
            latency,
            clock: 0,
            stats: HitMiss::default(),
        }
    }

    /// Reporting name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::default();
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & self.set_mask
    }

    /// Finds the way of (`vpn`, `size`) within `set`, if resident.
    #[inline]
    fn find_way(&self, set: usize, vpn: u64, size: PageSize) -> Option<usize> {
        let base = set * self.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let slot = &self.slots[base + way];
            if slot.size == size && slot.vpn == vpn {
                return Some(way);
            }
        }
        None
    }

    /// Looks `va` up under both size interpretations.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        self.clock += 1;
        let mut found = None;
        'sizes: for size in [PageSize::Size4K, PageSize::Size2M] {
            let vpn = va.page_number(size);
            let set = self.set_of(vpn);
            // Single pass: find the way and refresh its stamp in place.
            let base = set * self.ways;
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let slot = &mut self.slots[base + way];
                if slot.size == size && slot.vpn == vpn {
                    slot.stamp = self.clock;
                    found = Some((slot.frame, size));
                    break 'sizes;
                }
            }
        }
        self.stats.record(found.is_some());
        found
    }

    /// Installs a translation (1 GB translations are not held in the L2
    /// TLB, mirroring the modelled hardware — the call is a no-op).
    pub fn insert(&mut self, va: VirtAddr, frame: PhysAddr, size: PageSize) {
        if size == PageSize::Size1G {
            return;
        }
        self.clock += 1;
        let vpn = va.page_number(size);
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let slot = USlot {
            vpn,
            size,
            frame,
            stamp: self.clock,
        };
        if let Some(way) = self.find_way(set, vpn, size) {
            self.slots[base + way] = slot;
            return;
        }
        let ways_mask = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        let free = !self.valid[set] & ways_mask;
        if free != 0 {
            let way = free.trailing_zeros() as usize;
            self.valid[set] |= 1 << way;
            self.slots[base + way] = slot;
            return;
        }
        let victim = (0..self.ways)
            .min_by_key(|&way| self.slots[base + way].stamp)
            .expect("ways > 0");
        self.slots[base + victim] = slot;
    }

    /// Empties the TLB.
    pub fn flush(&mut self) {
        self.valid.fill(0);
    }

    /// Number of valid entries currently cached (shootdown accounting).
    pub fn occupancy(&self) -> u64 {
        self.valid.iter().map(|m| m.count_ones() as u64).sum()
    }
}

/// Outcome of a TLB-system lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// The translation, if any level hit: (page frame, size).
    pub translation: Option<(PhysAddr, PageSize)>,
    /// Cycles spent in the TLB arrays (L1; plus L2 when L1 missed).
    pub latency: u64,
}

/// Configuration of the whole per-core TLB complex.
#[derive(Debug, Clone)]
pub struct TlbSystemConfig {
    /// L1 array for 4 KB translations.
    pub l1_4k: TlbConfig,
    /// L1 array for 2 MB translations.
    pub l1_2m: TlbConfig,
    /// L1 array for 1 GB translations.
    pub l1_1g: TlbConfig,
    /// Unified L2 entries.
    pub l2_entries: usize,
    /// Unified L2 associativity.
    pub l2_ways: usize,
    /// Unified L2 latency.
    pub l2_latency: u64,
}

impl TlbSystemConfig {
    /// Table 1 server TLBs: L1 4 KB 64-entry 4-way + 2 MB 32-entry 4-way
    /// (1-cycle, parallel), unified L2 1536-entry 12-way 9-cycle, plus a
    /// small fully associative 1 GB array.
    pub fn server() -> Self {
        TlbSystemConfig {
            l1_4k: TlbConfig::new("L1TLB-4K", 64, 4, 1, PageSize::Size4K),
            l1_2m: TlbConfig::new("L1TLB-2M", 32, 4, 1, PageSize::Size2M),
            l1_1g: TlbConfig::new("L1TLB-1G", 4, 4, 1, PageSize::Size1G),
            l2_entries: 1536,
            l2_ways: 12,
            l2_latency: 9,
        }
    }

    /// Table 3 mobile TLBs: 48-entry fully associative L1 data TLB and a
    /// 1536-entry 6-way L2.
    pub fn mobile() -> Self {
        TlbSystemConfig {
            l1_4k: TlbConfig::new("L1TLB-4K", 48, 48, 1, PageSize::Size4K),
            l1_2m: TlbConfig::new("L1TLB-2M", 16, 16, 1, PageSize::Size2M),
            l1_1g: TlbConfig::new("L1TLB-1G", 4, 4, 1, PageSize::Size1G),
            l2_entries: 1536,
            l2_ways: 6,
            l2_latency: 8,
        }
    }
}

/// Per-TLB statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbSystemStats {
    /// L1 4 KB array.
    pub l1_4k: HitMiss,
    /// L1 2 MB array.
    pub l1_2m: HitMiss,
    /// L1 1 GB array.
    pub l1_1g: HitMiss,
    /// Unified L2.
    pub l2: HitMiss,
    /// Translation requests that missed every level (page walks).
    pub walks: u64,
    /// Total translation requests.
    pub translations: u64,
}

impl TlbSystemStats {
    /// Overall miss (walk) rate per translation.
    pub fn walk_rate(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.walks as f64 / self.translations as f64
        }
    }
}

/// The per-core TLB complex: parallel split L1 arrays backed by a
/// unified L2.
#[derive(Debug, Clone)]
pub struct TlbSystem {
    l1_4k: Tlb,
    l1_2m: Tlb,
    l1_1g: Tlb,
    l2: UnifiedTlb,
    walks: u64,
    translations: u64,
}

impl TlbSystem {
    /// Builds the complex from a configuration.
    pub fn new(cfg: TlbSystemConfig) -> Self {
        TlbSystem {
            l1_4k: Tlb::new(cfg.l1_4k),
            l1_2m: Tlb::new(cfg.l1_2m),
            l1_1g: Tlb::new(cfg.l1_1g),
            l2: UnifiedTlb::new("L2TLB", cfg.l2_entries, cfg.l2_ways, cfg.l2_latency),
            walks: 0,
            translations: 0,
        }
    }

    /// Looks up `va`: L1 arrays in parallel (1 cycle), then the unified
    /// L2. An L2 hit refills the appropriate L1 array. A full miss means
    /// the caller must walk and then call [`TlbSystem::fill`].
    pub fn lookup(&mut self, va: VirtAddr) -> TlbLookup {
        self.translations += 1;
        let l1_latency = self.l1_4k.config().latency;
        // Parallel L1 probes (record stats in each array, as hardware
        // probes all size classes).
        let hit = [
            self.l1_4k.lookup(va),
            self.l1_2m.lookup(va),
            self.l1_1g.lookup(va),
        ]
        .into_iter()
        .flatten()
        .next();
        if let Some(e) = hit {
            return TlbLookup {
                translation: Some((e.frame, e.size)),
                latency: l1_latency,
            };
        }
        let l2_latency = self.l2.latency();
        if let Some((frame, size)) = self.l2.lookup(va) {
            self.fill_l1(va, frame, size);
            return TlbLookup {
                translation: Some((frame, size)),
                latency: l1_latency + l2_latency,
            };
        }
        self.walks += 1;
        TlbLookup {
            translation: None,
            latency: l1_latency + l2_latency,
        }
    }

    fn fill_l1(&mut self, va: VirtAddr, frame: PhysAddr, size: PageSize) {
        match size {
            PageSize::Size4K => self.l1_4k.insert(va, frame, size),
            PageSize::Size2M => self.l1_2m.insert(va, frame, size),
            PageSize::Size1G => self.l1_1g.insert(va, frame, size),
        }
    }

    /// Installs a walked translation into L1 and L2.
    pub fn fill(&mut self, va: VirtAddr, frame: PhysAddr, size: PageSize) {
        self.fill_l1(va, frame, size);
        self.l2.insert(va, frame, size);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbSystemStats {
        TlbSystemStats {
            l1_4k: self.l1_4k.stats(),
            l1_2m: self.l1_2m.stats(),
            l1_1g: self.l1_1g.stats(),
            l2: self.l2.stats(),
            walks: self.walks,
            translations: self.translations,
        }
    }

    /// Clears statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1_4k.reset_stats();
        self.l1_2m.reset_stats();
        self.l1_1g.reset_stats();
        self.l2.reset_stats();
        self.walks = 0;
        self.translations = 0;
    }

    /// Empties every array.
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        self.l1_2m.flush();
        self.l1_1g.flush();
        self.l2.flush();
    }

    /// Models a TLB shootdown: flushes every array and returns how many
    /// valid translations were invalidated (the refill debt the cores
    /// will pay walking them back in).
    pub fn shootdown(&mut self) -> u64 {
        let flushed = self.l1_4k.occupancy()
            + self.l1_2m.occupancy()
            + self.l1_1g.occupancy()
            + self.l2.occupancy();
        self.flush();
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> TlbSystem {
        TlbSystem::new(TlbSystemConfig::server())
    }

    #[test]
    fn full_miss_then_fill_then_l1_hit() {
        let mut s = system();
        let va = VirtAddr::new(0x1234_5000);
        let miss = s.lookup(va);
        assert!(miss.translation.is_none());
        assert_eq!(miss.latency, 1 + 9);
        s.fill(va, PhysAddr::new(0x9_0000_0000), PageSize::Size4K);
        let hit = s.lookup(va);
        assert_eq!(hit.latency, 1);
        assert_eq!(
            hit.translation,
            Some((PhysAddr::new(0x9_0000_0000), PageSize::Size4K))
        );
        let st = s.stats();
        assert_eq!(st.walks, 1);
        assert_eq!(st.translations, 2);
        assert!((st.walk_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_hit_refills_l1() {
        let mut s = system();
        let target = VirtAddr::new(0x1000_0000);
        s.fill(target, PhysAddr::new(0x2000_0000), PageSize::Size4K);
        // Evict `target` from the small L1 by filling many other pages.
        for i in 1..=256u64 {
            s.fill(
                VirtAddr::new(0x1000_0000 + i * 4096),
                PhysAddr::new(0x2000_0000 + i * 4096),
                PageSize::Size4K,
            );
        }
        let r = s.lookup(target);
        assert!(r.translation.is_some());
        assert_eq!(r.latency, 10, "should have needed the L2");
        // Second access is an L1 hit again (refilled).
        let r2 = s.lookup(target);
        assert_eq!(r2.latency, 1);
    }

    #[test]
    fn two_meg_translations_use_their_own_l1() {
        let mut s = system();
        let va = VirtAddr::new(0x4000_0000);
        s.fill(va, PhysAddr::new(0x8000_0000), PageSize::Size2M);
        let r = s.lookup(VirtAddr::new(0x401A_BCDE));
        let (frame, size) = r.translation.unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(frame.raw(), 0x8000_0000);
        assert_eq!(s.stats().l1_2m.hits, 1);
    }

    #[test]
    fn one_gig_not_cached_in_l2() {
        let mut s = system();
        let va = VirtAddr::new(0x40_0000_0000);
        s.fill(va, PhysAddr::new(0x80_0000_0000), PageSize::Size1G);
        assert!(s.lookup(va).translation.is_some()); // L1-1G hit
                                                     // Force the 4-entry L1-1G to evict it.
        for i in 1..=8u64 {
            s.fill(
                VirtAddr::new(0x40_0000_0000 + (i << 30)),
                PhysAddr::new(0x80_0000_0000 + (i << 30)),
                PageSize::Size1G,
            );
        }
        let r = s.lookup(va);
        assert!(r.translation.is_none(), "1 GB entries bypass the L2 TLB");
    }

    #[test]
    fn unified_tlb_distinguishes_sizes() {
        let mut u = UnifiedTlb::new("u", 16, 4, 9);
        // A 2 MB entry must not answer a 4 KB-page probe of an unrelated
        // region whose 4K VPN happens to collide numerically.
        let va2m = VirtAddr::new(0x4000_0000);
        u.insert(va2m, PhysAddr::new(0x8000_0000), PageSize::Size2M);
        assert_eq!(
            u.lookup(VirtAddr::new(0x4000_0000)),
            Some((PhysAddr::new(0x8000_0000), PageSize::Size2M))
        );
        let other = VirtAddr::new(0x123_4567_8000);
        assert_eq!(u.lookup(other), None);
    }

    #[test]
    fn flush_clears_everything() {
        let mut s = system();
        let va = VirtAddr::new(0x7000);
        s.fill(va, PhysAddr::new(0x1000), PageSize::Size4K);
        s.flush();
        assert!(s.lookup(va).translation.is_none());
    }
}
