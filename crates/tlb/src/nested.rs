//! The nested TLB: guest-physical → host-physical translations used
//! during 2-D page walks (paper §4.1, Table 1: 16-entry fully
//! associative, 1 cycle; after Bhargava et al. [17]).

use flatwalk_types::stats::HitMiss;
use flatwalk_types::{PageSize, PhysAddr};

#[derive(Debug, Clone, Copy)]
struct NSlot {
    gfn: u64,
    size: PageSize,
    host_frame: PhysAddr,
    stamp: u64,
}

/// A small fully associative cache of gPA→hPA page translations.
///
/// # Examples
///
/// ```
/// use flatwalk_tlb::NestedTlb;
/// use flatwalk_types::{PageSize, PhysAddr};
///
/// let mut nt = NestedTlb::new(16, 1);
/// let gpa = PhysAddr::new(0x4000_2000);
/// assert!(nt.lookup(gpa).is_none());
/// nt.insert(gpa, PhysAddr::new(0x9000_2000 & !0xfff), PageSize::Size4K);
/// let (hpa, size) = nt.lookup(gpa).unwrap();
/// assert_eq!(hpa.raw(), 0x9000_2000);
/// assert_eq!(size, PageSize::Size4K);
/// ```
#[derive(Debug, Clone)]
pub struct NestedTlb {
    slots: Vec<Option<NSlot>>,
    latency: u64,
    clock: u64,
    stats: HitMiss,
}

impl NestedTlb {
    /// Creates an empty nested TLB with `entries` slots.
    pub fn new(entries: usize, latency: u64) -> Self {
        assert!(entries > 0, "nested TLB needs at least one entry");
        NestedTlb {
            slots: vec![None; entries],
            latency,
            clock: 0,
            stats: HitMiss::default(),
        }
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::default();
    }

    /// Translates a guest-physical address to host-physical, if cached;
    /// returns the host address and the granularity of the mapping.
    pub fn lookup(&mut self, gpa: PhysAddr) -> Option<(PhysAddr, PageSize)> {
        self.clock += 1;
        let clock = self.clock;
        let mut result = None;
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            let gfn = gpa.frame(size);
            if let Some(slot) = self
                .slots
                .iter_mut()
                .flatten()
                .find(|s| s.size == size && s.gfn == gfn)
            {
                slot.stamp = clock;
                result = Some((slot.host_frame.add(gpa.offset(size)), size));
                break;
            }
        }
        self.stats.record(result.is_some());
        result
    }

    /// Installs a gPA→hPA page translation.
    ///
    /// # Panics
    ///
    /// Panics if `host_frame` is not aligned to `size`.
    pub fn insert(&mut self, gpa: PhysAddr, host_frame: PhysAddr, size: PageSize) {
        assert_eq!(host_frame.offset(size), 0, "host frame must be aligned");
        self.clock += 1;
        let slot = NSlot {
            gfn: gpa.frame(size),
            size,
            host_frame,
            stamp: self.clock,
        };
        if let Some(existing) = self
            .slots
            .iter_mut()
            .flatten()
            .find(|s| s.size == slot.size && s.gfn == slot.gfn)
        {
            *existing = slot;
            return;
        }
        if let Some(empty) = self.slots.iter_mut().find(|s| s.is_none()) {
            *empty = Some(slot);
            return;
        }
        let victim = self
            .slots
            .iter_mut()
            .min_by_key(|s| s.as_ref().expect("full").stamp)
            .expect("entries > 0");
        *victim = Some(slot);
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.slots.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_sizes_coexist() {
        let mut nt = NestedTlb::new(4, 1);
        nt.insert(
            PhysAddr::new(0x20_0000),
            PhysAddr::new(0x40_0000),
            PageSize::Size2M,
        );
        nt.insert(
            PhysAddr::new(0x1000),
            PhysAddr::new(0x9000),
            PageSize::Size4K,
        );
        assert_eq!(
            nt.lookup(PhysAddr::new(0x21_2345)).unwrap().0.raw(),
            0x41_2345
        );
        assert_eq!(nt.lookup(PhysAddr::new(0x1abc)).unwrap().0.raw(), 0x9abc);
        assert_eq!(nt.stats().hits, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut nt = NestedTlb::new(2, 1);
        nt.insert(
            PhysAddr::new(0x1000),
            PhysAddr::new(0xa000),
            PageSize::Size4K,
        );
        nt.insert(
            PhysAddr::new(0x2000),
            PhysAddr::new(0xb000),
            PageSize::Size4K,
        );
        nt.lookup(PhysAddr::new(0x1000)); // refresh
        nt.insert(
            PhysAddr::new(0x3000),
            PhysAddr::new(0xc000),
            PageSize::Size4K,
        );
        assert!(nt.lookup(PhysAddr::new(0x1000)).is_some());
        assert!(nt.lookup(PhysAddr::new(0x2000)).is_none());
    }

    #[test]
    fn flush_and_reset() {
        let mut nt = NestedTlb::new(2, 1);
        nt.insert(
            PhysAddr::new(0x1000),
            PhysAddr::new(0xa000),
            PageSize::Size4K,
        );
        nt.flush();
        assert!(nt.lookup(PhysAddr::new(0x1000)).is_none());
        nt.reset_stats();
        assert_eq!(nt.stats().total(), 0);
    }
}
