//! Page-walk caches (Intel-style paging-structure caches, paper §3.3).
//!
//! A PSC of prefix width *w* maps the top *w* virtual-address index bits
//! to the physical address (and shape) of the page-table node the walk
//! would reach after translating those bits, letting the walker skip the
//! corresponding upper levels. Intel's organization has three depths —
//! "L4" (9 bits), "L3" (18 bits), and "L2" (27 bits) for a 4-level
//! table — all looked up in parallel in one cycle.
//!
//! Flattening composes naturally: after the walker reads the root entry
//! of a flattened L4+L3 table it has consumed 18 bits, so it inserts
//! into the 18-bit PSC; a later hit there jumps straight to the
//! flattened L2+L1 node, making the whole walk a single access (§3.3).

use flatwalk_pt::NodeShape;
use flatwalk_types::stats::HitMiss;
use flatwalk_types::{PhysAddr, VirtAddr};

/// Geometry of one paging-structure cache depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcDepthConfig {
    /// How many top VA index bits this depth matches (9, 18, 27, or 36).
    pub prefix_bits: u32,
    /// Number of (fully associative) entries.
    pub entries: usize,
}

/// Configuration of the whole PSC: one array per depth, parallel lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PwcConfig {
    /// The depths, in any order.
    pub depths: Vec<PwcDepthConfig>,
    /// Lookup latency (Table 1: 1 cycle, parallel).
    pub latency: u64,
    /// One past the highest index bit of the table (48 for a 4-level
    /// table whose L4 field is VA bits `[47:39]`, 57 for 5-level): a
    /// prefix of width `w` is matched against `va >> (top_bit - w)`.
    pub top_bit: u32,
}

impl PwcConfig {
    /// The paper's server PSC (Table 1): 4-entry "L4" (9-bit), 4-entry
    /// "L3" (18-bit), 24-entry "L2" (27-bit); 1-cycle parallel lookup.
    /// `top_bit` 48 suits 4-level tables.
    pub fn server() -> Self {
        PwcConfig {
            depths: vec![
                PwcDepthConfig {
                    prefix_bits: 9,
                    entries: 4,
                },
                PwcDepthConfig {
                    prefix_bits: 18,
                    entries: 4,
                },
                PwcDepthConfig {
                    prefix_bits: 27,
                    entries: 24,
                },
            ],
            latency: 1,
            top_bit: 48,
        }
    }

    /// Server PSC with a resized 18-bit ("L3") depth — the §7.1 PWC
    /// sensitivity sweep varies this from 1 to 16 entries.
    pub fn server_with_l3_entries(entries: usize) -> Self {
        let mut cfg = Self::server();
        for d in &mut cfg.depths {
            if d.prefix_bits == 18 {
                d.entries = entries;
            }
        }
        cfg
    }

    /// Server PSC with a resized 27-bit ("L2") depth (§7.1 notes ≈4096
    /// entries would be needed to match flattening).
    pub fn server_with_l2_entries(entries: usize) -> Self {
        let mut cfg = Self::server();
        for d in &mut cfg.depths {
            if d.prefix_bits == 27 {
                d.entries = entries;
            }
        }
        cfg
    }

    /// An approximation of the Table 3 mobile walk-cache. The Arm part
    /// holds 1 GB/2 MB *and* partial *and* full large-page translations
    /// in one 256-entry 4-way structure; only a fraction of it acts as
    /// the deepest walk cache at any time, so the model gives the
    /// walk-cache roles a modest slice per depth.
    pub fn mobile() -> Self {
        PwcConfig {
            depths: vec![
                PwcDepthConfig {
                    prefix_bits: 9,
                    entries: 8,
                },
                PwcDepthConfig {
                    prefix_bits: 18,
                    entries: 8,
                },
                PwcDepthConfig {
                    prefix_bits: 27,
                    entries: 32,
                },
            ],
            latency: 1,
            top_bit: 48,
        }
    }
}

impl PwcConfig {
    /// Redistributes this configuration's total entry budget across the
    /// step boundaries of `layout` (paper §3.3/§6.1: with fewer levels,
    /// "fewer PWCs are required... enabling each one to cache more
    /// entries").
    ///
    /// Every non-terminal walk boundary gets a depth; all boundaries
    /// except the deepest receive the base config's smallest array,
    /// and the deepest receives the remaining budget (mirroring Intel's
    /// skew toward the deepest cache).
    pub fn for_layout(&self, layout: &flatwalk_pt::Layout) -> PwcConfig {
        let total: usize = self.depths.iter().map(|d| d.entries).sum();
        let small = self.depths.iter().map(|d| d.entries).min().unwrap_or(4);
        // Boundaries: cumulative index bits after each group except the
        // last (a completed walk has no next node to cache).
        let mut boundaries: Vec<u32> = Vec::new();
        let mut cum = 0u32;
        for g in &layout.groups()[..layout.groups().len() - 1] {
            cum += g.depth as u32 * 9;
            boundaries.push(cum);
        }
        if boundaries.is_empty() {
            // Degenerate single-node table: keep one tiny depth so the
            // struct stays valid; it will simply never hit.
            boundaries.push(9);
        }
        let deepest = *boundaries.last().expect("non-empty");
        let shallow_total = small * (boundaries.len() - 1);
        let depths = boundaries
            .iter()
            .map(|&b| PwcDepthConfig {
                prefix_bits: b,
                entries: if b == deepest {
                    total.saturating_sub(shallow_total).max(small)
                } else {
                    small
                },
            })
            .collect();
        PwcConfig {
            depths,
            latency: self.latency,
            top_bit: 12 + layout.root_level().rank() as u32 * 9,
        }
    }
}

/// What a PSC hit provides: the node to continue the walk from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcHit {
    /// How many top index bits were matched.
    pub prefix_bits: u32,
    /// Base of the node to continue from.
    pub node_base: PhysAddr,
    /// Shape of that node.
    pub node_shape: NodeShape,
}

/// One depth's entries in parallel arrays: the fully-associative match
/// scans a dense `u64` prefix run instead of striding over fat slots.
/// Slots only empty wholesale (`flush`), so `0..used` is always the
/// exact set of live entries and scan order matches the old
/// first-to-last slot order.
#[derive(Debug, Clone)]
struct PwcDepth {
    cfg: PwcDepthConfig,
    prefixes: Vec<u64>,
    node_bases: Vec<PhysAddr>,
    node_shapes: Vec<NodeShape>,
    stamps: Vec<u64>,
    used: usize,
    stats: HitMiss,
}

/// The multi-depth paging-structure cache.
#[derive(Debug, Clone)]
pub struct Pwc {
    depths: Vec<PwcDepth>,
    latency: u64,
    top_bit: u32,
    clock: u64,
}

impl Pwc {
    /// Creates an empty PSC.
    pub fn new(cfg: PwcConfig) -> Self {
        let mut depths: Vec<PwcDepth> = cfg
            .depths
            .iter()
            .map(|d| PwcDepth {
                cfg: *d,
                prefixes: vec![0; d.entries],
                node_bases: vec![PhysAddr::new(0); d.entries],
                node_shapes: vec![NodeShape::Conventional; d.entries],
                stamps: vec![0; d.entries],
                used: 0,
                stats: HitMiss::default(),
            })
            .collect();
        // Deepest (widest prefix) first so `lookup` returns the best hit.
        depths.sort_by_key(|d| std::cmp::Reverse(d.cfg.prefix_bits));
        Pwc {
            depths,
            latency: cfg.latency,
            top_bit: cfg.top_bit,
            clock: 0,
        }
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    #[inline]
    fn prefix_of(&self, va: VirtAddr, bits: u32) -> u64 {
        (va.raw() >> (self.top_bit - bits)) & ((1u64 << bits) - 1)
    }

    /// Parallel lookup of all depths; returns the deepest hit.
    ///
    /// Statistics: the *walk-level* hit/miss is recorded on the deepest
    /// depth that hit (misses are recorded on every depth, matching
    /// per-array behaviour).
    pub fn lookup(&mut self, va: VirtAddr) -> Option<PwcHit> {
        self.clock += 1;
        let clock = self.clock;
        let mut result = None;
        for di in 0..self.depths.len() {
            let bits = self.depths[di].cfg.prefix_bits;
            let prefix = self.prefix_of(va, bits);
            let depth = &mut self.depths[di];
            let hit = depth.prefixes[..depth.used]
                .iter()
                .position(|&p| p == prefix);
            match hit {
                Some(i) if result.is_none() => {
                    depth.stamps[i] = clock;
                    depth.stats.hit();
                    result = Some(PwcHit {
                        prefix_bits: bits,
                        node_base: depth.node_bases[i],
                        node_shape: depth.node_shapes[i],
                    });
                }
                Some(_) => { /* shallower hit shadowed by a deeper one */ }
                None => depth.stats.miss(),
            }
        }
        result
    }

    /// Records that, after translating the top `prefix_bits` of `va`,
    /// the walk continues at `node_base` (of `node_shape`). No-op if no
    /// depth of that width exists.
    pub fn insert(
        &mut self,
        va: VirtAddr,
        prefix_bits: u32,
        node_base: PhysAddr,
        node_shape: NodeShape,
    ) {
        self.clock += 1;
        let clock = self.clock;
        let top_bit = self.top_bit;
        let Some(depth) = self
            .depths
            .iter_mut()
            .find(|d| d.cfg.prefix_bits == prefix_bits)
        else {
            return;
        };
        let prefix = (va.raw() >> (top_bit - prefix_bits)) & ((1u64 << prefix_bits) - 1);
        // Update in place, take the next free slot, or evict the LRU
        // entry (first minimum, matching the old full scan's order).
        let i = match depth.prefixes[..depth.used]
            .iter()
            .position(|&p| p == prefix)
        {
            Some(i) => i,
            None if depth.used < depth.cfg.entries => {
                depth.used += 1;
                depth.used - 1
            }
            None => {
                let mut victim = 0;
                for (j, &stamp) in depth.stamps[..depth.used].iter().enumerate() {
                    if stamp < depth.stamps[victim] {
                        victim = j;
                    }
                }
                victim
            }
        };
        depth.prefixes[i] = prefix;
        depth.node_bases[i] = node_base;
        depth.node_shapes[i] = node_shape;
        depth.stamps[i] = clock;
    }

    /// Per-depth statistics, widest prefix first: `(prefix_bits, tally)`.
    pub fn stats(&self) -> Vec<(u32, HitMiss)> {
        self.depths
            .iter()
            .map(|d| (d.cfg.prefix_bits, d.stats))
            .collect()
    }

    /// Clears statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        for d in &mut self.depths {
            d.stats = HitMiss::default();
        }
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for d in &mut self.depths {
            d.used = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pwc() -> Pwc {
        Pwc::new(PwcConfig::server())
    }

    #[test]
    fn deepest_hit_wins() {
        let mut p = pwc();
        let va = VirtAddr::new(0x7f12_3456_7000);
        p.insert(va, 9, PhysAddr::new(0x1000), NodeShape::Conventional);
        p.insert(va, 27, PhysAddr::new(0x3000), NodeShape::Conventional);
        let hit = p.lookup(va).unwrap();
        assert_eq!(hit.prefix_bits, 27);
        assert_eq!(hit.node_base.raw(), 0x3000);
    }

    #[test]
    fn prefix_match_requires_all_bits() {
        let mut p = pwc();
        let va = VirtAddr::new(0x7f12_3456_7000);
        p.insert(va, 27, PhysAddr::new(0x3000), NodeShape::Conventional);
        // Same top 18 bits, different L2 index → 27-bit depth misses.
        let near = VirtAddr::new(va.raw() ^ (1 << 21));
        assert!(p.lookup(near).is_none());
        // Same 27 bits, different L1 index → hits.
        let same_region = VirtAddr::new(va.raw() ^ (1 << 12));
        assert!(p.lookup(same_region).is_some());
    }

    #[test]
    fn eighteen_bit_depth_caches_flattened_roots() {
        let mut p = pwc();
        let va = VirtAddr::new(0x55_4000_0000);
        p.insert(va, 18, PhysAddr::new(0x20_0000), NodeShape::Flat2);
        let hit = p.lookup(va).unwrap();
        assert_eq!(hit.prefix_bits, 18);
        assert_eq!(hit.node_shape, NodeShape::Flat2);
        // Anywhere within the same 1 GB region (same 18 top bits) hits.
        let hit2 = p.lookup(VirtAddr::new(0x55_7fff_f000)).unwrap();
        assert_eq!(hit2.node_base.raw(), 0x20_0000);
    }

    #[test]
    fn lru_among_fa_entries() {
        let mut p = Pwc::new(PwcConfig {
            depths: vec![PwcDepthConfig {
                prefix_bits: 9,
                entries: 2,
            }],
            latency: 1,
            top_bit: 48,
        });
        let region = |i: u64| VirtAddr::new(i << 39);
        p.insert(region(1), 9, PhysAddr::new(0x1000), NodeShape::Conventional);
        p.insert(region(2), 9, PhysAddr::new(0x2000), NodeShape::Conventional);
        p.lookup(region(1)); // refresh 1
        p.insert(region(3), 9, PhysAddr::new(0x3000), NodeShape::Conventional);
        assert!(p.lookup(region(1)).is_some());
        assert!(p.lookup(region(2)).is_none());
        assert!(p.lookup(region(3)).is_some());
    }

    #[test]
    fn unknown_width_insert_is_noop() {
        let mut p = pwc();
        p.insert(
            VirtAddr::new(0),
            36,
            PhysAddr::new(0x1000),
            NodeShape::Conventional,
        );
        assert!(p.lookup(VirtAddr::new(0)).is_none());
    }

    #[test]
    fn for_layout_redistributes_budget() {
        use flatwalk_pt::Layout;
        let base = PwcConfig::server(); // 4 + 4 + 24 = 32 entries

        // Conventional 4-level: boundaries 9/18/27, deepest gets bulk.
        let conv = base.for_layout(&Layout::conventional4());
        let mut widths: Vec<(u32, usize)> = conv
            .depths
            .iter()
            .map(|d| (d.prefix_bits, d.entries))
            .collect();
        widths.sort_unstable();
        assert_eq!(widths, vec![(9, 4), (18, 4), (27, 24)]);
        assert_eq!(conv.top_bit, 48);

        // Fully flattened: a single 18-bit boundary holding everything.
        let flat = base.for_layout(&Layout::flat_l4l3_l2l1());
        assert_eq!(flat.depths.len(), 1);
        assert_eq!(flat.depths[0].prefix_bits, 18);
        assert_eq!(flat.depths[0].entries, 32);

        // L3+L2 flattened: boundaries at 9 and 27.
        let mid = base.for_layout(&Layout::flat_l3l2());
        let mut w: Vec<(u32, usize)> = mid
            .depths
            .iter()
            .map(|d| (d.prefix_bits, d.entries))
            .collect();
        w.sort_unstable();
        assert_eq!(w, vec![(9, 4), (27, 28)]);

        // Five-level flattened: 57-bit top, boundaries at 18 and 36.
        let five = base.for_layout(&Layout::flat5_l5l4_l3l2());
        assert_eq!(five.top_bit, 57);
        let mut w5: Vec<u32> = five.depths.iter().map(|d| d.prefix_bits).collect();
        w5.sort_unstable();
        assert_eq!(w5, vec![18, 36]);

        // Budget is conserved in every case.
        for cfg in [&conv, &flat, &mid, &five] {
            assert_eq!(cfg.depths.iter().map(|d| d.entries).sum::<usize>(), 32);
        }
    }

    #[test]
    fn stats_order_and_flush() {
        let mut p = pwc();
        let va = VirtAddr::new(0x1000_0000);
        p.insert(va, 9, PhysAddr::new(0x1000), NodeShape::Conventional);
        p.lookup(va);
        let stats = p.stats();
        assert_eq!(stats[0].0, 27);
        assert_eq!(stats[2].0, 9);
        assert_eq!(stats[2].1.hits, 1);
        p.flush();
        assert!(p.lookup(va).is_none());
    }
}
