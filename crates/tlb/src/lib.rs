//! Translation caching: TLBs, page-walk caches (paging-structure
//! caches), the nested TLB for virtualized walks, and high-TLB-miss
//! phase detection.
//!
//! These are the structures of paper Table 1/3 that sit between the
//! core and the page-table walker:
//!
//! * [`Tlb`] / [`UnifiedTlb`] / [`TlbSystem`] — split L1 TLB arrays per
//!   page size plus the unified L2 TLB.
//! * [`Pwc`] — Intel-style paging-structure caches, keyed on top VA
//!   index-bit prefixes (§3.3), flattened-aware.
//! * [`NestedTlb`] — gPA→hPA translations for 2-D walks (§4.1).
//! * [`PhaseDetector`] — the performance-counter logic that gates cache
//!   prioritization (§5, §6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nested;
mod phase;
mod pwc;
mod system;
mod tlb;

pub use nested::NestedTlb;
pub use phase::PhaseDetector;
pub use pwc::{Pwc, PwcConfig, PwcDepthConfig, PwcHit};
pub use system::{TlbLookup, TlbSystem, TlbSystemConfig, TlbSystemStats, UnifiedTlb};
pub use tlb::{Tlb, TlbConfig, TlbEntry};
