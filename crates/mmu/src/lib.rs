//! Timed page-table walking and the MMU facade.
//!
//! This crate replays functional walks (from `flatwalk-pt`) through the
//! translation caches (`flatwalk-tlb`) and the memory hierarchy
//! (`flatwalk-mem`):
//!
//! * [`PageWalker`] — the native walker with paging-structure caches
//!   (§3.3): a PSC hit skips upper levels; remaining entry reads go
//!   through the caches as [`flatwalk_types::AccessKind::PageTable`]
//!   accesses.
//! * [`NestedWalker`] — the 2-D walker for virtualized systems (§4):
//!   guest PSC + vPWC + nested TLB.
//! * [`Mmu`] — TLB lookup, walk on miss, TLB fill, the data access, and
//!   the high-TLB-miss phase detection that drives cache prioritization
//!   (§5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mmu;
mod nested;
mod walker;

pub use mmu::{AccessTiming, AddressSpace, Mmu, MmuStats, TranslationBackend};
pub use nested::{NestedTables, NestedWalker, NestedWalkerStats};
pub use walker::{PageWalker, StepHits, WalkTiming, WalkerStats};
