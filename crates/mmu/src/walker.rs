//! The timed native page-table walker.
//!
//! The walker replays the functional walk (from `flatwalk-pt`) through
//! the paging-structure caches and the cache hierarchy: a PSC hit lets
//! it skip the upper levels (paper §3.3), and every remaining entry read
//! is a 64 B access issued to the memory hierarchy with
//! [`AccessKind::PageTable`].

use flatwalk_mem::{HitLevel, MemoryHierarchy};
use flatwalk_obs::trace::{self, WalkRecord, WalkStepRecord};
use flatwalk_pt::{resolve, resolve_from_with, FrameStore, PageTable, Walk, WalkError};
use flatwalk_tlb::{Pwc, PwcConfig};
use flatwalk_types::{AccessKind, OwnerId, PageSize, PhysAddr, VirtAddr};

/// Where page-walk entry reads were served, by hierarchy level.
///
/// This is the per-level breakdown behind the paper's "every walk's a
/// hit" claim: under FPT+PTP the mass should sit in `l1`/`l2`, with
/// `dram` near zero after warmup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepHits {
    /// Entry reads served by the private L1.
    pub l1: u64,
    /// Entry reads served by the private L2.
    pub l2: u64,
    /// Entry reads served by the shared L3.
    pub l3: u64,
    /// Entry reads that went all the way to DRAM.
    pub dram: u64,
}

impl StepHits {
    /// Records one entry read served at `level`.
    pub fn record(&mut self, level: HitLevel) {
        match level {
            HitLevel::L1 => self.l1 += 1,
            HitLevel::L2 => self.l2 += 1,
            HitLevel::L3 => self.l3 += 1,
            HitLevel::Dram => self.dram += 1,
        }
    }

    /// Total entry reads recorded.
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.l3 + self.dram
    }
}

/// Trace label for a hierarchy hit level.
pub(crate) fn level_label(level: HitLevel) -> &'static str {
    match level {
        HitLevel::L1 => "L1",
        HitLevel::L2 => "L2",
        HitLevel::L3 => "L3",
        HitLevel::Dram => "DRAM",
    }
}

/// Timing and result of one completed page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkTiming {
    /// The translated physical address (offset included).
    pub pa: PhysAddr,
    /// Granularity of the translation.
    pub size: PageSize,
    /// Memory-system accesses the walk performed (the paper's
    /// "memory requests per page walk", Fig. 1/10).
    pub accesses: u64,
    /// Total walk latency in cycles (PSC lookup + serial entry reads).
    pub latency: u64,
}

/// Cumulative walker statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkerStats {
    /// Completed walks.
    pub walks: u64,
    /// Total memory accesses across all walks.
    pub accesses: u64,
    /// Total walk latency across all walks.
    pub latency: u64,
    /// Per-walk latency distribution (log-linear HDR-style buckets).
    pub latency_histogram: flatwalk_types::stats::LatencyHistogram,
    /// Where the walks' entry reads were served.
    pub step_hits: StepHits,
}

impl WalkerStats {
    /// Mean memory accesses per walk (0 when no walks happened).
    pub fn accesses_per_walk(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.accesses as f64 / self.walks as f64
        }
    }

    /// Mean walk latency in cycles (0 when no walks happened).
    pub fn latency_per_walk(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.latency as f64 / self.walks as f64
        }
    }

    /// Records one completed walk.
    pub fn record(&mut self, t: &WalkTiming) {
        self.walks += 1;
        self.accesses += t.accesses;
        self.latency += t.latency;
        self.latency_histogram.record(t.latency);
    }

    /// Median walk latency (bucket upper bound; 0 when no walks).
    pub fn latency_p50(&self) -> u64 {
        self.latency_histogram.p50()
    }

    /// 90th-percentile walk latency (bucket upper bound).
    pub fn latency_p90(&self) -> u64 {
        self.latency_histogram.p90()
    }

    /// 99th-percentile walk latency (bucket upper bound).
    pub fn latency_p99(&self) -> u64 {
        self.latency_histogram.p99()
    }

    /// 99.9th-percentile walk latency (bucket upper bound).
    pub fn latency_p999(&self) -> u64 {
        self.latency_histogram.p999()
    }
}

/// A hardware page-table walker with paging-structure caches.
#[derive(Debug, Clone)]
pub struct PageWalker {
    pwc: Pwc,
    stats: WalkerStats,
}

impl PageWalker {
    /// Creates a walker with the given PSC configuration.
    pub fn new(pwc: PwcConfig) -> Self {
        PageWalker {
            pwc: Pwc::new(pwc),
            stats: WalkerStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> WalkerStats {
        self.stats
    }

    /// Clears statistics (PSC contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = WalkerStats::default();
        self.pwc.reset_stats();
    }

    /// Empties the paging-structure caches (context switch without
    /// PCID-style tagging).
    pub fn flush(&mut self) {
        self.pwc.flush();
    }

    /// PSC hit/miss statistics per depth (widest prefix first).
    pub fn pwc_stats(&self) -> Vec<(u32, flatwalk_types::stats::HitMiss)> {
        self.pwc.stats()
    }

    /// Walks `table` for `va`, issuing entry reads through `hier`.
    ///
    /// When walk tracing is off, the walk is *fused*: each step the
    /// monomorphized functional walker decodes is immediately issued to
    /// the hierarchy and used to train the PSC, with no intermediate
    /// step list. A PSC hit short-circuits the functional walk too —
    /// the suffix below the hit node is walked directly, skipping the
    /// upper-level entry lookups that replay would have discarded
    /// anyway. Tables are immutable during a run (cells run against a
    /// frozen address space), so a trained PSC entry can never disagree
    /// with the table. Timing, hit/miss statistics, and PSC training
    /// are identical to the resolve-then-replay path.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkError`] from the functional walk (absent entry,
    /// malformed table).
    pub fn walk(
        &mut self,
        store: &FrameStore,
        table: &PageTable,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<WalkTiming, WalkError> {
        self.walk_one(store, table, va, hier, owner, trace::walks_enabled())
    }

    /// One walk with the trace decision already made — the span kernels
    /// in `mmu.rs` hoist the gate out of their per-miss loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn walk_one(
        &mut self,
        store: &FrameStore,
        table: &PageTable,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
        tracing: bool,
    ) -> Result<WalkTiming, WalkError> {
        if tracing {
            // Tracing reports how many steps the PSC skipped, which only
            // the full functional walk knows.
            let walk = resolve(store, table, va)?;
            let timing = self.replay(&walk, va, hier, owner);
            self.stats.record(&timing);
            return Ok(timing);
        }

        let pwc = &mut self.pwc;
        let stats = &mut self.stats;
        let mut latency = pwc.latency();
        let (node_base, node_shape, pos_top, base_bits) = match pwc.lookup(va) {
            Some(hit) => {
                // The hit prefix always lands on a step boundary of this
                // walk (identical VA prefix ⇒ identical upper steps), so
                // the decode position below it is top minus the consumed
                // groups. A rank underflow would mean a PSC/table
                // mismatch; fall back to the full walk as `replay` does.
                let rank = table
                    .top_level
                    .rank()
                    .wrapping_sub((hit.prefix_bits / 9) as u8);
                match flatwalk_types::Level::from_rank(rank) {
                    Some(pos_top) => (hit.node_base, hit.node_shape, pos_top, hit.prefix_bits),
                    None => (table.root, table.root_shape, table.top_level, 0),
                }
            }
            None => (table.root, table.root_shape, table.top_level, 0),
        };

        let mut accesses = 0u64;
        let mut cum = 0u32;
        let (pa, size) =
            resolve_from_with(store, node_base, node_shape, pos_top, va, &mut |step| {
                // Each non-root step trains the PSC: the prefix consumed
                // so far maps to the node this step consults.
                if accesses > 0 {
                    pwc.insert(
                        va,
                        base_bits + cum,
                        step.node_base,
                        flatwalk_pt::NodeShape::from_depth(step.depth).expect("valid step depth"),
                    );
                }
                cum += step.index_bits();
                let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
                latency += out.latency;
                accesses += 1;
                stats.step_hits.record(out.level);
                Ok(())
            })?;

        #[cfg(debug_assertions)]
        if base_bits > 0 {
            let full = resolve(store, table, va).expect("prefix was present");
            debug_assert_eq!(
                (full.pa, full.size),
                (pa, size),
                "PSC short-circuit must agree with the full walk"
            );
        }

        let timing = WalkTiming {
            pa,
            size,
            accesses,
            latency,
        };
        stats.record(&timing);
        Ok(timing)
    }

    /// Replays a functional walk through the PSC and hierarchy.
    pub(crate) fn replay(
        &mut self,
        walk: &Walk,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> WalkTiming {
        // Cumulative index bits consumed after each step (inline, no
        // per-walk allocation).
        let cum = walk.steps.cum_index_bits();

        let mut latency = self.pwc.latency();
        let mut first_step = 0usize;
        if let Some(hit) = self.pwc.lookup(va) {
            // Skip every step fully covered by the matched prefix. The
            // prefix corresponds to a step boundary in any consistent
            // table; if it does not (stale organization), ignore the hit.
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < walk.steps.len() {
                    debug_assert_eq!(
                        walk.steps[i + 1].node_base,
                        hit.node_base,
                        "PSC must agree with the table"
                    );
                    first_step = i + 1;
                }
            }
        }

        let tracing = trace::walks_enabled();
        let mut trace_steps: Vec<WalkStepRecord> = Vec::new();

        let mut accesses = 0u64;
        for step in &walk.steps[first_step..] {
            let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;
            self.stats.step_hits.record(out.level);
            if tracing {
                trace_steps.push(WalkStepRecord {
                    depth: step.depth,
                    level: level_label(out.level),
                });
            }
        }

        // Train the PSC: each executed non-terminal step boundary maps
        // the consumed prefix to the next node.
        for i in first_step..walk.steps.len().saturating_sub(1) {
            let next = &walk.steps[i + 1];
            self.pwc.insert(
                va,
                cum[i],
                next.node_base,
                flatwalk_pt::NodeShape::from_depth(next.depth).expect("valid step depth"),
            );
        }

        if tracing {
            trace::emit_walk(&WalkRecord {
                va: va.raw(),
                accesses,
                latency,
                psc_skipped: first_step as u8,
                flattened: trace_steps.iter().any(|s| s.depth > 1),
                steps: &trace_steps,
            });
        }

        WalkTiming {
            pa: walk.pa,
            size: walk.size,
            accesses,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, Layout, Mapper};

    fn build(layout: Layout) -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
        for page in 0..64u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + page * 4096),
                PhysAddr::new(0x9_0000_0000 + page * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    #[test]
    fn conventional_walk_warms_to_single_access() {
        let (store, m) = build(Layout::conventional4());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = PageWalker::new(PwcConfig::server());

        let cold = w
            .walk(
                &store,
                m.table(),
                VirtAddr::new(0x5000_0000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(cold.accesses, 4, "cold walk reads all four levels");
        assert_eq!(cold.pa.raw(), 0x9_0000_0000);

        // A different page in the same 2 MB region: the 27-bit PSC entry
        // skips L4/L3/L2 → single access.
        let warm = w
            .walk(
                &store,
                m.table(),
                VirtAddr::new(0x5000_1000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(warm.accesses, 1);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn flattened_walk_single_access_after_warmup() {
        let (store, m) = build(Layout::flat_l4l3_l2l1());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = PageWalker::new(PwcConfig::server());

        let cold = w
            .walk(
                &store,
                m.table(),
                VirtAddr::new(0x5000_0000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(cold.accesses, 2, "flattened cold walk is two accesses");

        // Any VA within the same 1 GB region (18-bit prefix) now takes a
        // single access — the paper's headline mechanism (§3.3).
        let warm = w
            .walk(
                &store,
                m.table(),
                VirtAddr::new(0x5000_3000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(warm.accesses, 1);
    }

    #[test]
    fn walk_latency_reflects_cache_hits() {
        let (store, m) = build(Layout::flat_l4l3_l2l1());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = PageWalker::new(PwcConfig::server());
        let va = VirtAddr::new(0x5000_0000);
        let cold = w
            .walk(&store, m.table(), va, &mut hier, OwnerId::SINGLE)
            .unwrap();
        // Second walk of the *same* VA: single access AND an L1 cache hit.
        let hot = w
            .walk(&store, m.table(), va, &mut hier, OwnerId::SINGLE)
            .unwrap();
        assert_eq!(hot.accesses, 1);
        assert_eq!(hot.latency, 1 + 4, "PSC lookup + L1 hit");
        assert!(cold.latency >= 2 * 200, "cold walk paid DRAM twice");
    }

    #[test]
    fn stats_accumulate() {
        let (store, m) = build(Layout::conventional4());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = PageWalker::new(PwcConfig::server());
        for page in 0..8u64 {
            w.walk(
                &store,
                m.table(),
                VirtAddr::new(0x5000_0000 + page * 4096),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        }
        let s = w.stats();
        assert_eq!(s.walks, 8);
        // First walk 4 accesses, subsequent 7 are single.
        assert_eq!(s.accesses, 4 + 7);
        assert!(s.accesses_per_walk() < 1.5);
        assert!(s.latency_per_walk() > 0.0);
    }

    #[test]
    fn unmapped_va_is_an_error() {
        let (store, m) = build(Layout::conventional4());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = PageWalker::new(PwcConfig::server());
        assert!(w
            .walk(
                &store,
                m.table(),
                VirtAddr::new(0x9999_0000_0000),
                &mut hier,
                OwnerId::SINGLE
            )
            .is_err());
    }
}
